//! # origins-of-memes
//!
//! A Rust reproduction of *"On the Origins of Memes by Means of Fringe Web
//! Communities"* (Zannettou et al., IMC 2018).
//!
//! This facade crate re-exports the workspace crates under short names.
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```no_run
//! use origins_of_memes::prelude::*;
//!
//! // Simulate a small Web ecosystem, then run the paper's 7-step
//! // pipeline end to end.
//! let dataset = SimConfig::tiny(7).generate();
//! let report = Pipeline::new(PipelineConfig::default()).run(&dataset).unwrap();
//! println!("{} annotated clusters", report.annotated_clusters().len());
//! ```

#![forbid(unsafe_code)]

pub use meme_annotate as annotate;
pub use meme_cluster as cluster;
pub use meme_core as core;
pub use meme_hawkes as hawkes;
pub use meme_imaging as imaging;
pub use meme_index as index;
pub use meme_metrics as metrics;
pub use meme_phash as phash;
pub use meme_serve as serve;
pub use meme_simweb as simweb;
pub use meme_stats as stats;

pub mod observability;

/// Convenience prelude importing the types most applications need.
pub mod prelude {
    pub use meme_core::metric::{ClusterDistance, MetricWeights};
    pub use meme_core::pipeline::{Pipeline, PipelineConfig};
    pub use meme_hawkes::{HawkesModel, InfluenceEstimator};
    pub use meme_phash::{PHash, PerceptualHasher};
    pub use meme_simweb::{SimConfig, SimScale};
}
