//! Schema validation for exported metrics JSON (DESIGN.md §7).
//!
//! Shared by `memes validate-metrics` (the CI smoke check) and the
//! integration tests, so the schema the docs promise is enforced in
//! exactly one place. Accepts both a bare [`meme_metrics::Registry`]
//! export and the `BENCH_*.json` wrapper form, which embeds the
//! registry under a top-level `"metrics"` key.

use serde::Value;
use std::fmt;

/// Why a metrics JSON document was rejected. Two variants because the
/// caller's remedies differ: [`MetricsSchemaError::Parse`] means the
/// file is not JSON at all (wrong file, truncated write), while
/// [`MetricsSchemaError::Schema`] means it parsed but breaks the
/// DESIGN.md §7 contract (version drift, malformed section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsSchemaError {
    /// The document is not valid JSON.
    Parse(String),
    /// The document parsed but violates the schema; the message names
    /// the offending section and field.
    Schema(String),
}

impl fmt::Display for MetricsSchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "not valid JSON: {e}"),
            Self::Schema(e) => write!(f, "schema violation: {e}"),
        }
    }
}

impl std::error::Error for MetricsSchemaError {}

// The checks below build their messages with `format!` / `&'static str`
// and `?`-convert; both land in the `Schema` variant.
impl From<String> for MetricsSchemaError {
    fn from(msg: String) -> Self {
        Self::Schema(msg)
    }
}

impl From<&str> for MetricsSchemaError {
    fn from(msg: &str) -> Self {
        Self::Schema(msg.to_string())
    }
}

/// Validate a metrics JSON document against the DESIGN.md §7 schema.
///
/// Checks, in order:
/// * the document parses and is an object;
/// * a wrapper form (`"metrics"` key, no `"schema_version"`) is
///   unwrapped first;
/// * `schema_version` equals [`meme_metrics::SCHEMA_VERSION`];
/// * `spans` / `counters` / `gauges` / `histograms` are objects;
/// * every span has non-negative `calls` / `total_secs` / `min_secs` /
///   `max_secs`;
/// * every counter is a non-negative integer;
/// * every gauge is a number or `null` (non-finite values export as
///   `null`);
/// * every histogram has `counts.len() == bounds.len() + 1`, strictly
///   ascending bounds, and bucket counts summing to `count`.
pub fn validate_metrics_json(text: &str) -> Result<(), MetricsSchemaError> {
    let doc: Value =
        serde_json::from_str(text).map_err(|e| MetricsSchemaError::Parse(e.to_string()))?;
    let root = doc.as_object().ok_or("top level is not an object")?;
    let root = match (get(root, "schema_version"), get(root, "metrics")) {
        (None, Some(inner)) => inner
            .as_object()
            .ok_or("wrapper `metrics` key is not an object")?,
        _ => root,
    };

    let version = get(root, "schema_version")
        .and_then(as_u64)
        .ok_or("missing integer `schema_version`")?;
    if version != meme_metrics::SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {}",
            meme_metrics::SCHEMA_VERSION
        )
        .into());
    }

    let section = |name: &str| {
        get(root, name)
            .and_then(Value::as_object)
            .ok_or_else(|| format!("missing object `{name}`"))
    };

    for (name, span) in section("spans")? {
        let span = span
            .as_object()
            .ok_or_else(|| format!("span `{name}`: not an object"))?;
        for field in ["calls", "total_secs", "min_secs", "max_secs"] {
            let v = get(span, field)
                .and_then(as_f64)
                .ok_or_else(|| format!("span `{name}`: missing number `{field}`"))?;
            if v < 0.0 {
                return Err(format!("span `{name}`: negative `{field}`").into());
            }
        }
    }

    for (name, v) in section("counters")? {
        if as_u64(v).is_none() {
            return Err(format!("counter `{name}`: not a non-negative integer").into());
        }
    }

    for (name, v) in section("gauges")? {
        if !matches!(v, Value::Null) && as_f64(v).is_none() {
            return Err(format!("gauge `{name}`: not a number or null").into());
        }
    }

    for (name, h) in section("histograms")? {
        let h = h
            .as_object()
            .ok_or_else(|| format!("histogram `{name}`: not an object"))?;
        let get_array = |field: &str| {
            get(h, field)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("histogram `{name}`: missing array `{field}`"))
        };
        let bounds = get_array("bounds")?;
        let counts = get_array("counts")?;
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram `{name}`: {} counts for {} bounds (want bounds + 1)",
                counts.len(),
                bounds.len()
            )
            .into());
        }
        let bound_vals: Vec<f64> = bounds
            .iter()
            .map(|b| as_f64(b).ok_or_else(|| format!("histogram `{name}`: non-numeric bound")))
            .collect::<Result<_, _>>()?;
        if bound_vals.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!("histogram `{name}`: bounds not strictly ascending").into());
        }
        let total = get(h, "count")
            .and_then(as_u64)
            .ok_or_else(|| format!("histogram `{name}`: missing integer `count`"))?;
        let summed = counts
            .iter()
            .map(|c| as_u64(c).ok_or_else(|| format!("histogram `{name}`: non-integer bucket")))
            .sum::<Result<u64, _>>()?;
        if summed != total {
            return Err(format!(
                "histogram `{name}`: bucket counts sum to {summed}, `count` says {total}"
            )
            .into());
        }
        if get(h, "sum").and_then(as_f64).is_none() {
            return Err(format!("histogram `{name}`: missing number `sum`").into());
        }
    }

    Ok(())
}

/// Look up an object field (the vendored value model keeps objects as
/// ordered pair lists).
fn get<'v>(obj: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_metrics::{Metrics, Registry, ITERATION_BUCKETS};
    use std::sync::Arc;

    fn sample_registry_json() -> String {
        let registry = Arc::new(Registry::new());
        let metrics = Metrics::from_registry(Arc::clone(&registry));
        metrics.add("hash.images", 100);
        metrics.gauge("hash.images_per_sec", 12_500.0);
        metrics.gauge("bad.value", f64::NAN); // exports as null
        metrics.observe("hawkes.em_iterations", &ITERATION_BUCKETS, 12.0);
        metrics.span("pipeline").finish();
        registry.to_json()
    }

    #[test]
    fn real_export_validates() {
        validate_metrics_json(&sample_registry_json()).unwrap();
    }

    #[test]
    fn wrapped_export_validates() {
        let wrapped = format!(
            "{{\"bench\":\"pipeline\",\"metrics\":{}}}",
            sample_registry_json()
        );
        validate_metrics_json(&wrapped).unwrap();
    }

    #[test]
    fn rejects_garbage_and_bad_schemas() {
        // The two variants separate "wrong file" from "contract drift".
        assert!(matches!(
            validate_metrics_json("not json"),
            Err(MetricsSchemaError::Parse(_))
        ));
        assert!(matches!(
            validate_metrics_json("[1,2,3]"),
            Err(MetricsSchemaError::Schema(_))
        ));
        assert!(validate_metrics_json("{}").is_err());
        let wrong_version = r#"{"schema_version": 999, "spans": {}, "counters": {},
                                "gauges": {}, "histograms": {}}"#;
        assert!(validate_metrics_json(wrong_version).is_err());
        let bad_histogram = r#"{"schema_version": 1, "spans": {}, "counters": {},
            "gauges": {}, "histograms": {
                "h": {"bounds": [1.0, 2.0], "counts": [1, 2], "count": 3, "sum": 4.0}
            }}"#;
        let err = validate_metrics_json(bad_histogram).unwrap_err();
        assert!(matches!(err, MetricsSchemaError::Schema(_)));
        assert!(err.to_string().contains("counts"), "{err}");
        let miscounted = r#"{"schema_version": 1, "spans": {}, "counters": {},
            "gauges": {}, "histograms": {
                "h": {"bounds": [1.0], "counts": [1, 2], "count": 5, "sum": 4.0}
            }}"#;
        assert!(validate_metrics_json(miscounted).is_err());
        let negative_span = r#"{"schema_version": 1, "spans": {
                "s": {"calls": 1, "total_secs": -0.5, "min_secs": 0.0, "max_secs": 0.0}
            }, "counters": {}, "gauges": {}, "histograms": {}}"#;
        assert!(validate_metrics_json(negative_span).is_err());
    }
}
