//! `memes` — command-line front end for the origins-of-memes pipeline.
//!
//! ```text
//! memes simulate --scale small --seed 7 --out dataset.json
//! memes run      --scale small --seed 7 --out run.json [--train-filter]
//!                [--checkpoint ckpt.json] [--metrics-out BENCH_run.json]
//!                [--retries N] [--quarantine q.jsonl] [--chaos PRESET]
//! memes resume   --scale small --seed 7 --checkpoint ckpt.json [--out run.json]
//!                [--metrics-out BENCH_run.json] [--retries N]
//!                [--quarantine q.jsonl] [--chaos PRESET]
//! memes influence --scale small --seed 7
//! memes graph    --scale small --seed 7 --out fig7.dot
//! memes fsck     CKPT [--scale small --seed 7 --train-filter]
//! memes quarantine ls FILE
//! memes quarantine replay FILE --scale small --seed 7
//! memes validate-metrics BENCH_run.json
//! memes serve    --artifact run.json [--addr 127.0.0.1:0] [--workers N]
//!                [--reload] [--max-conns N] [--read-timeout-ms MS]
//!                [--max-line-bytes N] [--scale small --seed 7]
//! memes lookup   HASH (--artifact run.json | --addr HOST:PORT)
//! ```
//!
//! Every subcommand regenerates the (deterministic) dataset from its
//! seed, so no intermediate file is ever required; `--out` writes the
//! artifact for external tooling. `run --checkpoint` snapshots progress
//! after every stage, and `resume` picks a killed run up from the last
//! completed stage (the checkpoint is validated against the dataset and
//! configuration before being honoured; a torn or stale current
//! generation automatically falls back to the previous one when it is
//! intact).
//!
//! All runs execute under supervision (DESIGN.md §11): stages are
//! retried with deterministic backoff (`--retries N`, default 2 retries
//! after the first attempt), panics are contained into typed errors,
//! and poison items are diverted to the `--quarantine` dead-letter file
//! instead of sinking the run. `--chaos PRESET` injects execution
//! faults for testing: `panic-once`, `stage-flake`, `flaky-items`,
//! `poison-items`, `write-blackout`, or `torn-final`.
//!
//! `memes fsck CKPT` classifies a checkpoint file as clean, torn,
//! stale, or (when `--scale`/`--seed` describe the expected run)
//! mismatched — and reports the previous generation (`CKPT.prev`) when
//! present. `memes quarantine ls FILE` lists a dead-letter file;
//! `memes quarantine replay FILE` re-processes the quarantined items
//! against a clean pipeline and reports which have recovered.
//!
//! `memes serve` loads a completed run artifact (`--out` JSON or a
//! completed checkpoint) into an immutable snapshot and answers
//! line-delimited JSON lookups over TCP (DESIGN.md §12). Binding port 0
//! picks a free port; the chosen address is printed to stdout as
//! `serving on HOST:PORT` so scripts and tests can discover it.
//! `--reload` lets clients hot-swap a new artifact in without dropping
//! connections. The connection lifecycle is bounded: at most
//! `--max-conns` concurrent clients (excess accepts are shed with
//! `{"error":"overloaded"}`), each request line must finish within
//! `--read-timeout-ms` (`{"error":"read timeout"}`, then close) and
//! stay under `--max-line-bytes` (typed rejection, then close). When
//! `--scale`/`--seed` describe the run that produced
//! the artifact, the dataset is regenerated and Step-7 influence
//! profiles are served alongside each hit. `memes lookup HASH` answers
//! one query — in process with `--artifact`, or against a running
//! server with `--addr` — and exits 0 on a hit, 1 on a miss.
//!
//! `--metrics-out PATH` (on `run` and `resume`) attaches a metrics
//! registry to the pipeline, additionally runs Step-7 influence
//! estimation under it, and writes the registry JSON (DESIGN.md §7) to
//! PATH. `validate-metrics FILE` checks such a file against the schema
//! and exits non-zero on any violation — the CI smoke check.
//!
//! Exit codes follow the workspace convention shared with `memes-lint`
//! ([`Exit`]): `0` clean, `1` violations (the validated artifact failed
//! its check — an invalid metrics file, a defective checkpoint, a
//! malformed quarantine file, a replay with still-failing items), `2`
//! operational failure (unreadable/unwritable files, bad usage, a
//! pipeline run that did not complete).

use meme_analysis::Exit;
use origins_of_memes::core::graph::{ClusterGraph, GraphConfig};
use origins_of_memes::core::metric::ClusterDistance;
use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig, ScreenshotFilterMode};
use origins_of_memes::core::quarantine::{read_quarantine, summarize, QuarantineError};
use origins_of_memes::core::runner::{
    dataset_fingerprint, fsck_file, DiskMedium, FsckClass, RunnerOutcome, StageId,
};
use origins_of_memes::core::supervise::{
    FaultyMedium, SpecFaults, StagePolicy, SupervisedRunner, SupervisionReport,
};
use origins_of_memes::hawkes::InfluenceEstimator;
use origins_of_memes::metrics::{Metrics, Registry};
use origins_of_memes::observability::validate_metrics_json;
use origins_of_memes::phash::{ImageHasher, PHash, PerceptualHasher};
use origins_of_memes::serve::{
    load_output, protocol, ServeScratch, Server, ServerConfig, Snapshot, SnapshotStore,
    DEFAULT_THETA,
};
use origins_of_memes::simweb::{Community, Dataset, ExecFaultSpec, SimConfig, SimScale};
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    command: String,
    positionals: Vec<String>,
    scale: SimScale,
    seed: u64,
    /// Whether --scale or --seed was passed explicitly (fsck only
    /// verifies the dataset fingerprint when the caller described one).
    explicit_dataset: bool,
    out: Option<String>,
    train_filter: bool,
    checkpoint: Option<String>,
    metrics_out: Option<String>,
    retries: u32,
    quarantine: Option<String>,
    chaos: Option<String>,
    artifact: Option<String>,
    addr: Option<String>,
    workers: usize,
    reload: bool,
    max_conns: usize,
    read_timeout_ms: u64,
    max_line_bytes: usize,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().collect();
    let command = argv.get(1).cloned().ok_or_else(usage)?;
    let mut args = Args {
        command,
        positionals: Vec::new(),
        scale: SimScale::Small,
        seed: 1,
        explicit_dataset: false,
        out: None,
        train_filter: false,
        checkpoint: None,
        metrics_out: None,
        retries: 2,
        quarantine: None,
        chaos: None,
        artifact: None,
        addr: None,
        workers: 2,
        reload: false,
        max_conns: ServerConfig::default().max_conns,
        read_timeout_ms: ServerConfig::default().read_timeout_ms,
        max_line_bytes: ServerConfig::default().max_line_bytes,
    };
    if args.command == "validate-metrics" {
        // Takes one positional FILE argument instead of flags; it is
        // stashed in `out` for `main` to pick up.
        args.out = Some(
            argv.get(2)
                .cloned()
                .ok_or("validate-metrics needs a FILE argument")?,
        );
        return Ok(args);
    }
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                args.scale = match argv.get(i).map(String::as_str) {
                    Some("tiny") => SimScale::Tiny,
                    Some("small") => SimScale::Small,
                    Some("default") => SimScale::Default,
                    other => return Err(format!("unknown scale {other:?}")),
                };
                args.explicit_dataset = true;
            }
            "--seed" => {
                i += 1;
                args.seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?;
                args.explicit_dataset = true;
            }
            "--out" => {
                i += 1;
                args.out = Some(argv.get(i).cloned().ok_or("--out needs a path")?);
            }
            "--checkpoint" => {
                i += 1;
                args.checkpoint = Some(argv.get(i).cloned().ok_or("--checkpoint needs a path")?);
            }
            "--metrics-out" => {
                i += 1;
                args.metrics_out = Some(argv.get(i).cloned().ok_or("--metrics-out needs a path")?);
            }
            "--retries" => {
                i += 1;
                args.retries = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--retries needs an integer")?;
            }
            "--quarantine" => {
                i += 1;
                args.quarantine = Some(argv.get(i).cloned().ok_or("--quarantine needs a path")?);
            }
            "--chaos" => {
                i += 1;
                args.chaos = Some(argv.get(i).cloned().ok_or("--chaos needs a preset name")?);
            }
            "--artifact" => {
                i += 1;
                args.artifact = Some(argv.get(i).cloned().ok_or("--artifact needs a path")?);
            }
            "--addr" => {
                i += 1;
                args.addr = Some(argv.get(i).cloned().ok_or("--addr needs HOST:PORT")?);
            }
            "--workers" => {
                i += 1;
                args.workers = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--workers needs an integer")?;
            }
            "--max-conns" => {
                i += 1;
                args.max_conns = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--max-conns needs a positive integer")?;
            }
            "--read-timeout-ms" => {
                i += 1;
                args.read_timeout_ms = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--read-timeout-ms needs a positive integer")?;
            }
            "--max-line-bytes" => {
                i += 1;
                args.max_line_bytes = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--max-line-bytes needs a positive integer")?;
            }
            "--reload" => args.reload = true,
            "--train-filter" => args.train_filter = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            positional => args.positionals.push(positional.to_string()),
        }
        i += 1;
    }
    if args.command == "resume" && args.checkpoint.is_none() {
        return Err("resume needs --checkpoint PATH".to_string());
    }
    if args.command == "fsck" && args.positionals.is_empty() {
        return Err("fsck needs a CHECKPOINT argument".to_string());
    }
    if args.command == "quarantine" {
        match args.positionals.first().map(String::as_str) {
            Some("ls") | Some("replay") if args.positionals.len() == 2 => {}
            _ => return Err("quarantine needs `ls FILE` or `replay FILE`".to_string()),
        }
    }
    if args.command == "serve" && args.artifact.is_none() {
        return Err("serve needs --artifact PATH".to_string());
    }
    if args.command == "lookup" {
        if args.positionals.len() != 1 {
            return Err("lookup needs a HASH argument".to_string());
        }
        match (&args.artifact, &args.addr) {
            (Some(_), None) | (None, Some(_)) => {}
            _ => {
                return Err(
                    "lookup needs exactly one of --artifact PATH or --addr HOST:PORT".to_string(),
                )
            }
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: memes <simulate|run|resume|influence|graph> \
     [--scale tiny|small|default] [--seed N] [--out PATH] \
     [--checkpoint PATH] [--metrics-out PATH] [--train-filter] \
     [--retries N] [--quarantine PATH] [--chaos PRESET]\n\
     \u{20}      memes fsck CHECKPOINT [--scale S --seed N --train-filter]\n\
     \u{20}      memes quarantine <ls|replay> FILE [--scale S --seed N]\n\
     \u{20}      memes validate-metrics FILE\n\
     \u{20}      memes serve --artifact PATH [--addr HOST:PORT] [--workers N] \
     [--reload] [--max-conns N] [--read-timeout-ms MS] [--max-line-bytes N] \
     [--scale S --seed N]\n\
     \u{20}      memes lookup HASH (--artifact PATH | --addr HOST:PORT)"
        .to_string()
}

/// Resolve a `--chaos` preset name to an execution-fault schedule.
fn chaos_spec(preset: &str, seed: u64) -> Result<ExecFaultSpec, String> {
    match preset {
        "panic-once" => Ok(ExecFaultSpec::panic_once_everywhere(seed)),
        "stage-flake" => Ok(ExecFaultSpec::transient_stage(seed, "*", 1)),
        "flaky-items" => Ok(ExecFaultSpec::flaky_items(seed, "hash", 0.05)),
        "poison-items" => Ok(ExecFaultSpec::poison_items(seed, "hash", 0.03)),
        "write-blackout" => Ok(ExecFaultSpec::write_blackout(seed, 2)),
        // 5 stages → 5 checkpoint temp-file writes; tear the last one.
        "torn-final" => Ok(ExecFaultSpec::torn_write(seed, 4, 0.5)),
        other => Err(format!(
            "unknown chaos preset `{other}` (try panic-once, stage-flake, flaky-items, \
             poison-items, write-blackout, torn-final)"
        )),
    }
}

fn pipeline_config(args: &Args) -> PipelineConfig {
    PipelineConfig {
        screenshot_filter: if args.train_filter {
            ScreenshotFilterMode::Train {
                corpus_scale: 0.01,
                config: Default::default(),
            }
        } else {
            ScreenshotFilterMode::Oracle
        },
        ..PipelineConfig::default()
    }
}

fn generate_dataset(args: &Args) -> Dataset {
    let dataset = SimConfig::new(args.scale, args.seed).generate();
    eprintln!(
        "dataset: {} image posts, {} memes (scale {:?}, seed {})",
        dataset.posts.len(),
        dataset.universe.len(),
        args.scale,
        args.seed
    );
    dataset
}

/// Narrate what supervision had to do (silent when it did nothing).
fn print_supervision(report: &SupervisionReport) {
    for r in &report.retries {
        eprintln!(
            "supervised: stage `{}` retried {}x ({} backoff ticks)",
            r.stage, r.retries, r.backoff_ticks
        );
    }
    if report.panics_contained > 0 {
        eprintln!("supervised: {} panic(s) contained", report.panics_contained);
    }
    if report.checkpoint_write_retries > 0 {
        eprintln!(
            "supervised: {} checkpoint write(s) retried",
            report.checkpoint_write_retries
        );
    }
    if report.quarantined_items > 0 {
        eprintln!(
            "supervised: {} item(s) quarantined",
            report.quarantined_items
        );
    }
    if report.rolled_back {
        eprintln!("supervised: resumed from previous checkpoint generation");
    }
}

/// `memes fsck CKPT` — classify a checkpoint file (and its previous
/// generation when present). Exit 0 clean, 1 defective, 2 unreadable.
fn cmd_fsck(args: &Args) -> ExitCode {
    let path = std::path::Path::new(&args.positionals[0]);
    // Only verify dataset/config identity when the caller described the
    // expected run; a bare `memes fsck ckpt` checks integrity alone.
    let expectation = args.explicit_dataset.then(|| {
        let dataset = generate_dataset(args);
        (dataset_fingerprint(&dataset), pipeline_config(args))
    });
    let expect = expectation.as_ref().map(|(fp, cfg)| (*fp, cfg));
    let report = match fsck_file(&DiskMedium, path, expect) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fsck: cannot read {}: {e}", path.display());
            return Exit::Operational.into();
        }
    };
    let stages: Vec<&str> = report.completed.iter().map(|s| s.name()).collect();
    println!(
        "{}: {} — {} (completed: {})",
        path.display(),
        report.class.name(),
        report.detail,
        if stages.is_empty() {
            "none".to_string()
        } else {
            stages.join(", ")
        }
    );
    let prev = origins_of_memes::core::runner::prev_checkpoint_path(path);
    if prev.exists() {
        match fsck_file(&DiskMedium, &prev, expect) {
            Ok(p) => println!("{}: {} — {}", prev.display(), p.class.name(), p.detail),
            Err(e) => println!("{}: unreadable ({e})", prev.display()),
        }
    }
    if report.class == FsckClass::Clean {
        Exit::Clean.into()
    } else {
        Exit::Violations.into()
    }
}

/// `memes quarantine ls FILE` — list a dead-letter file with a
/// per-stage summary. Exit 0 parsed, 1 malformed, 2 unreadable.
fn cmd_quarantine_ls(path: &str) -> ExitCode {
    let entries = match read_quarantine(std::path::Path::new(path)) {
        Ok(entries) => entries,
        Err(e @ QuarantineError::Io { .. }) => {
            eprintln!("quarantine: {e}");
            return Exit::Operational.into();
        }
        Err(e @ QuarantineError::Malformed { .. }) => {
            eprintln!("quarantine: {e}");
            return Exit::Violations.into();
        }
    };
    for e in &entries {
        println!("{} post {}: {}", e.stage, e.item, e.reason);
    }
    let summary: Vec<String> = summarize(&entries)
        .into_iter()
        .map(|(stage, n)| format!("{stage}: {n}"))
        .collect();
    eprintln!(
        "{} quarantined item(s){}",
        entries.len(),
        if summary.is_empty() {
            String::new()
        } else {
            format!(" ({})", summary.join(", "))
        }
    );
    Exit::Clean.into()
}

/// `memes quarantine replay FILE` — re-process quarantined items
/// against a clean (fault-free) pipeline. Hash-stage items are
/// re-hashed directly; associate-stage items are resolved through a
/// clean end-to-end run. Exit 0 when every item recovered, 1 when any
/// still fails, 2 on operational errors.
fn cmd_quarantine_replay(args: &Args, path: &str) -> ExitCode {
    let entries = match read_quarantine(std::path::Path::new(path)) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("quarantine: {e}");
            return Exit::Operational.into();
        }
    };
    if entries.is_empty() {
        eprintln!("quarantine: {path} is empty — nothing to replay");
        return Exit::Clean.into();
    }
    let dataset = generate_dataset(args);
    let mut still_failing = 0usize;
    let hasher = PerceptualHasher::new();
    // The associate stage needs full pipeline context; run it once,
    // clean, and resolve every associate-stage entry against it.
    let needs_full_run = entries.iter().any(|e| e.stage != StageId::Hash);
    let clean_output = if needs_full_run {
        match Pipeline::new(pipeline_config(args)).run(&dataset) {
            Ok(output) => Some(output),
            Err(e) => {
                eprintln!("replay: clean pipeline run failed: {e}");
                return Exit::Operational.into();
            }
        }
    } else {
        None
    };
    for e in &entries {
        if e.item >= dataset.posts.len() {
            println!(
                "{} post {}: STILL FAILING (post index out of range for this dataset)",
                e.stage, e.item
            );
            still_failing += 1;
            continue;
        }
        match e.stage {
            StageId::Hash => {
                let hash = hasher.hash(&dataset.render_post_image(&dataset.posts[e.item]));
                println!(
                    "{} post {}: recovered (rehashed to {hash})",
                    e.stage, e.item
                );
            }
            _ => {
                let output = clean_output.as_ref().expect("full run for non-hash stages");
                let assoc = output.occurrences.get(e.item).and_then(|o| *o);
                match assoc {
                    Some(cluster) => println!(
                        "{} post {}: recovered (associates to cluster {cluster})",
                        e.stage, e.item
                    ),
                    None => println!(
                        "{} post {}: recovered (processed clean; no cluster association)",
                        e.stage, e.item
                    ),
                }
            }
        }
    }
    if still_failing > 0 {
        eprintln!(
            "replay: {still_failing}/{} item(s) still failing",
            entries.len()
        );
        Exit::Violations.into()
    } else {
        eprintln!("replay: all {} item(s) recovered", entries.len());
        Exit::Clean.into()
    }
}

/// `memes serve --artifact PATH` — load a completed run artifact and
/// answer lookups over TCP until killed. Exit 2 on any startup failure;
/// a healthy server never returns.
fn cmd_serve(args: &Args) -> ExitCode {
    let artifact = args
        .artifact
        .as_deref()
        .expect("parse_args guarantees --artifact");
    let output = match load_output(std::path::Path::new(artifact)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serve: cannot load {artifact}: {e}");
            return Exit::Operational.into();
        }
    };
    // Influence profiles need the dataset's event streams, which the
    // artifact does not carry; compute them only when the caller
    // described the producing run with --scale/--seed.
    let influence = if args.explicit_dataset {
        let dataset = generate_dataset(args);
        let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
        let (influence, skipped) = output.estimate_influence_robust(&dataset, &estimator, 0);
        if !skipped.is_empty() {
            eprintln!("influence: {} cluster(s) skipped", skipped.len());
        }
        Some(influence)
    } else {
        None
    };
    let snapshot = match Snapshot::build(&output, influence.as_ref(), DEFAULT_THETA, 0) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: rejected artifact {artifact}: {e}");
            return Exit::Operational.into();
        }
    };
    let store = Arc::new(SnapshotStore::new(snapshot));
    let config = ServerConfig {
        addr: args
            .addr
            .clone()
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        workers: args.workers,
        allow_reload: args.reload,
        max_conns: args.max_conns,
        read_timeout_ms: args.read_timeout_ms,
        max_line_bytes: args.max_line_bytes,
        ..ServerConfig::default()
    };
    let server = match Server::start(store, config, Metrics::disabled()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot start: {e}");
            return Exit::Operational.into();
        }
    };
    // Stdout carries the bound address (port 0 picks a free one) so a
    // parent process can connect; everything else narrates on stderr.
    println!("serving on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "serve: {} meme(s) from {artifact} (influence: {}, reload: {})",
        server.store().load().len(),
        if influence.is_some() { "yes" } else { "no" },
        if args.reload { "enabled" } else { "disabled" },
    );
    loop {
        std::thread::park(); // serve until killed
    }
}

/// `memes lookup HASH` — answer one query, either in process from an
/// artifact or against a running server. Exit 0 hit, 1 miss, 2 on
/// operational errors (bad hash, unreachable server, unloadable
/// artifact).
fn cmd_lookup(args: &Args) -> ExitCode {
    let raw = &args.positionals[0];
    let hash: PHash = match raw.parse() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("lookup: bad hash {raw:?}: {e}");
            return Exit::Operational.into();
        }
    };
    if let Some(addr) = &args.addr {
        return lookup_remote(addr, hash);
    }
    let artifact = args
        .artifact
        .as_deref()
        .expect("parse_args guarantees --artifact");
    let output = match load_output(std::path::Path::new(artifact)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("lookup: cannot load {artifact}: {e}");
            return Exit::Operational.into();
        }
    };
    let snapshot = match Snapshot::build(&output, None, DEFAULT_THETA, 1) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lookup: rejected artifact {artifact}: {e}");
            return Exit::Operational.into();
        }
    };
    let mut scratch = ServeScratch::new();
    let mut buf = String::new();
    // Same wire format as the server, so scripts can treat both modes
    // identically.
    match snapshot.lookup(hash, &mut scratch) {
        Some(hit) => {
            protocol::render_hit(&mut buf, hash, &hit, &snapshot);
            println!("{buf}");
            Exit::Clean.into()
        }
        None => {
            protocol::render_miss(&mut buf, hash, snapshot.generation());
            println!("{buf}");
            Exit::Violations.into()
        }
    }
}

/// One lookup over the wire protocol against a running `memes serve`.
fn lookup_remote(addr: &str, hash: PHash) -> ExitCode {
    let mut stream = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lookup: cannot connect to {addr}: {e}");
            return Exit::Operational.into();
        }
    };
    let _ = stream.set_nodelay(true); // one-line round trip; avoid Nagle

    if let Err(e) = writeln!(stream, "{{\"hash\":\"{hash}\"}}") {
        eprintln!("lookup: cannot send to {addr}: {e}");
        return Exit::Operational.into();
    }
    let mut line = String::new();
    if let Err(e) = BufReader::new(&stream).read_line(&mut line) {
        eprintln!("lookup: cannot read from {addr}: {e}");
        return Exit::Operational.into();
    }
    let line = line.trim_end();
    if line.is_empty() {
        eprintln!("lookup: {addr} closed the connection without answering");
        return Exit::Operational.into();
    }
    println!("{line}");
    // The response decides the exit code: found:true hit, found:false
    // miss, anything else (an error line) operational.
    let found = serde_json::from_str::<serde::Value>(line)
        .ok()
        .as_ref()
        .and_then(serde::Value::as_object)
        .and_then(|o| {
            o.iter()
                .find(|(k, _)| k == "found")
                .map(|(_, v)| matches!(v, serde::Value::Bool(true)))
        });
    match found {
        Some(true) => Exit::Clean.into(),
        Some(false) => Exit::Violations.into(),
        None => Exit::Operational.into(),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            if e != usage() {
                eprintln!("{}", usage());
            }
            return Exit::Operational.into();
        }
    };
    if args.command == "validate-metrics" {
        let path = args.out.as_deref().expect("parse_args guarantees FILE");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return Exit::Operational.into();
            }
        };
        return match validate_metrics_json(&text) {
            Ok(()) => {
                eprintln!(
                    "{path}: valid metrics JSON (schema v{})",
                    origins_of_memes::metrics::SCHEMA_VERSION
                );
                Exit::Clean.into()
            }
            Err(e) => {
                eprintln!("{path}: invalid metrics JSON: {e}");
                Exit::Violations.into()
            }
        };
    }
    if args.command == "fsck" {
        return cmd_fsck(&args);
    }
    if args.command == "quarantine" {
        let file = args.positionals[1].clone();
        return match args.positionals[0].as_str() {
            "ls" => cmd_quarantine_ls(&file),
            _ => cmd_quarantine_replay(&args, &file),
        };
    }
    if args.command == "serve" {
        return cmd_serve(&args);
    }
    if args.command == "lookup" {
        return cmd_lookup(&args);
    }
    if !matches!(
        args.command.as_str(),
        "simulate" | "run" | "resume" | "influence" | "graph"
    ) {
        eprintln!("unknown command {}", args.command);
        eprintln!("{}", usage());
        return Exit::Operational.into();
    }
    let dataset = generate_dataset(&args);

    match args.command.as_str() {
        "simulate" => {
            if let Some(path) = &args.out {
                let json = serde_json::to_string(&dataset).expect("dataset serializes");
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write {path}: {e}");
                    return Exit::Operational.into();
                }
                eprintln!("wrote {path}");
            } else {
                eprintln!("(pass --out to save the dataset as JSON)");
            }
            Exit::Clean.into()
        }
        cmd @ ("run" | "resume" | "influence" | "graph") => {
            let config = pipeline_config(&args);
            let registry = args
                .metrics_out
                .as_ref()
                .map(|_| std::sync::Arc::new(Registry::new()));
            let metrics = match &registry {
                Some(r) => Metrics::from_registry(Arc::clone(r)),
                None => Metrics::disabled(),
            };
            let policy = StagePolicy {
                max_attempts: args.retries + 1,
                save_attempts: args.retries + 1,
                seed: args.seed,
                ..StagePolicy::default()
            };
            let mut runner = SupervisedRunner::new(Pipeline::new(config))
                .with_metrics(metrics.clone())
                .with_policy(policy);
            if let Some(path) = &args.checkpoint {
                runner = runner.with_checkpoint(path);
            }
            if let Some(path) = &args.quarantine {
                runner = runner.with_quarantine(path);
            }
            if let Some(preset) = &args.chaos {
                let spec = match chaos_spec(preset, args.seed) {
                    Ok(spec) => spec,
                    Err(e) => {
                        eprintln!("{e}");
                        return Exit::Operational.into();
                    }
                };
                eprintln!("chaos: injecting preset `{preset}` (seed {})", args.seed);
                runner = runner
                    .with_medium(Arc::new(FaultyMedium::new(spec.clone())))
                    .with_exec_faults(Arc::new(SpecFaults(spec)));
            }
            let result = if cmd == "resume" {
                runner.resume(&dataset)
            } else {
                runner.run(&dataset)
            };
            let output = match result {
                Ok(run) => {
                    print_supervision(&run.report);
                    match run.outcome {
                        RunnerOutcome::Complete(o) => *o,
                        RunnerOutcome::Halted { after } => {
                            eprintln!("pipeline halted after stage `{after}`");
                            return Exit::Operational.into();
                        }
                    }
                }
                Err(e) => {
                    eprintln!("pipeline failed: {e}");
                    return Exit::Operational.into();
                }
            };
            eprintln!(
                "pipeline: {} clusters ({} annotated), {} matched posts",
                output.clustering.n_clusters(),
                output.annotated_clusters().len(),
                output.occurrences.iter().flatten().count()
            );
            for (kind, count) in output.degradation_summary() {
                eprintln!("degraded: {kind} x{count}");
            }
            match cmd {
                "run" | "resume" => {
                    if let Some(path) = &args.out {
                        if let Err(e) = std::fs::write(path, output.to_json()) {
                            eprintln!("cannot write {path}: {e}");
                            return Exit::Operational.into();
                        }
                        eprintln!("wrote {path}");
                    }
                    if let (Some(path), Some(registry)) = (&args.metrics_out, &registry) {
                        // Step 7 under the same registry, so the export
                        // carries the Hawkes EM iteration counts too.
                        let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
                        let (_, skipped) = output
                            .estimate_influence_instrumented(&dataset, &estimator, 0, &metrics);
                        if !skipped.is_empty() {
                            eprintln!("influence: {} cluster(s) skipped", skipped.len());
                        }
                        if let Err(e) = std::fs::write(path, registry.to_json()) {
                            eprintln!("cannot write {path}: {e}");
                            return Exit::Operational.into();
                        }
                        eprintln!("wrote {path}");
                    }
                }
                "influence" => {
                    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
                    let (influence, skipped) =
                        output.estimate_influence_robust(&dataset, &estimator, 0);
                    if !skipped.is_empty() {
                        eprintln!(
                            "influence: {} cluster(s) skipped (failed Hawkes fits)",
                            skipped.len()
                        );
                        for d in &skipped {
                            eprintln!("  {d}");
                        }
                    }
                    let pct = influence.total.percent_of_destination();
                    println!("percent of destination events caused by source:");
                    print!("{:>9}", "src\\dst");
                    for c in Community::ALL {
                        print!("{:>9}", c.name());
                    }
                    println!();
                    for (src, row) in pct.iter().enumerate() {
                        print!("{:>9}", Community::ALL[src].name());
                        for v in row {
                            print!("{v:>8.1}%");
                        }
                        println!();
                    }
                    let ext = influence.total.total_external_normalized();
                    println!("external efficiency per source:");
                    for c in Community::ALL {
                        println!("  {:<8} {:>7.2}%", c.name(), ext[c.index()]);
                    }
                }
                "graph" => {
                    let (descriptors, labels) = output.annotated_descriptors();
                    let graph = ClusterGraph::build(
                        &descriptors,
                        &labels,
                        &ClusterDistance::default(),
                        &GraphConfig {
                            kappa: 0.45,
                            min_degree: 1,
                        },
                    );
                    eprintln!(
                        "graph: {} nodes, {} edges, {} components, purity {:.2}",
                        graph.node_count(),
                        graph.edge_count(),
                        graph.n_components,
                        graph.component_purity()
                    );
                    match &args.out {
                        Some(path) => {
                            if let Err(e) = std::fs::write(path, graph.to_dot()) {
                                eprintln!("cannot write {path}: {e}");
                                return Exit::Operational.into();
                            }
                            eprintln!("wrote {path}");
                        }
                        None => println!("{}", graph.to_dot()),
                    }
                }
                _ => unreachable!(),
            }
            Exit::Clean.into()
        }
        _ => unreachable!("command validated before dataset generation"),
    }
}
