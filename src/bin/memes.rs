//! `memes` — command-line front end for the origins-of-memes pipeline.
//!
//! ```text
//! memes simulate --scale small --seed 7 --out dataset.json
//! memes run      --scale small --seed 7 --out run.json [--train-filter]
//!                [--checkpoint ckpt.json] [--metrics-out BENCH_run.json]
//! memes resume   --scale small --seed 7 --checkpoint ckpt.json [--out run.json]
//!                [--metrics-out BENCH_run.json]
//! memes influence --scale small --seed 7
//! memes graph    --scale small --seed 7 --out fig7.dot
//! memes validate-metrics BENCH_run.json
//! ```
//!
//! Every subcommand regenerates the (deterministic) dataset from its
//! seed, so no intermediate file is ever required; `--out` writes the
//! artifact for external tooling. `run --checkpoint` snapshots progress
//! after every stage, and `resume` picks a killed run up from the last
//! completed stage (the checkpoint is validated against the dataset and
//! configuration before being honoured).
//!
//! `--metrics-out PATH` (on `run` and `resume`) attaches a metrics
//! registry to the pipeline, additionally runs Step-7 influence
//! estimation under it, and writes the registry JSON (DESIGN.md §7) to
//! PATH. `validate-metrics FILE` checks such a file against the schema
//! and exits non-zero on any violation — the CI smoke check.
//!
//! Exit codes follow the workspace convention shared with `memes-lint`
//! ([`Exit`]): `0` clean, `1` violations (the validated artifact failed
//! its check), `2` operational failure (unreadable/unwritable files,
//! bad usage, a pipeline run that did not complete).

use meme_analysis::Exit;
use origins_of_memes::core::graph::{ClusterGraph, GraphConfig};
use origins_of_memes::core::metric::ClusterDistance;
use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig, ScreenshotFilterMode};
use origins_of_memes::core::runner::{PipelineRunner, RunnerOutcome};
use origins_of_memes::hawkes::InfluenceEstimator;
use origins_of_memes::metrics::{Metrics, Registry};
use origins_of_memes::observability::validate_metrics_json;
use origins_of_memes::simweb::{Community, SimConfig, SimScale};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    command: String,
    scale: SimScale,
    seed: u64,
    out: Option<String>,
    train_filter: bool,
    checkpoint: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().collect();
    let command = argv.get(1).cloned().ok_or_else(usage)?;
    let mut args = Args {
        command,
        scale: SimScale::Small,
        seed: 1,
        out: None,
        train_filter: false,
        checkpoint: None,
        metrics_out: None,
    };
    if args.command == "validate-metrics" {
        // Takes one positional FILE argument instead of flags; it is
        // stashed in `out` for `main` to pick up.
        args.out = Some(
            argv.get(2)
                .cloned()
                .ok_or("validate-metrics needs a FILE argument")?,
        );
        return Ok(args);
    }
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                args.scale = match argv.get(i).map(String::as_str) {
                    Some("tiny") => SimScale::Tiny,
                    Some("small") => SimScale::Small,
                    Some("default") => SimScale::Default,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--seed" => {
                i += 1;
                args.seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--out" => {
                i += 1;
                args.out = Some(argv.get(i).cloned().ok_or("--out needs a path")?);
            }
            "--checkpoint" => {
                i += 1;
                args.checkpoint = Some(argv.get(i).cloned().ok_or("--checkpoint needs a path")?);
            }
            "--metrics-out" => {
                i += 1;
                args.metrics_out = Some(argv.get(i).cloned().ok_or("--metrics-out needs a path")?);
            }
            "--train-filter" => args.train_filter = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if args.command == "resume" && args.checkpoint.is_none() {
        return Err("resume needs --checkpoint PATH".to_string());
    }
    Ok(args)
}

fn usage() -> String {
    "usage: memes <simulate|run|resume|influence|graph> \
     [--scale tiny|small|default] [--seed N] [--out PATH] \
     [--checkpoint PATH] [--metrics-out PATH] [--train-filter]\n\
     \u{20}      memes validate-metrics FILE"
        .to_string()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            if e != usage() {
                eprintln!("{}", usage());
            }
            return Exit::Operational.into();
        }
    };
    if args.command == "validate-metrics" {
        let path = args.out.as_deref().expect("parse_args guarantees FILE");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return Exit::Operational.into();
            }
        };
        return match validate_metrics_json(&text) {
            Ok(()) => {
                eprintln!(
                    "{path}: valid metrics JSON (schema v{})",
                    origins_of_memes::metrics::SCHEMA_VERSION
                );
                Exit::Clean.into()
            }
            Err(e) => {
                eprintln!("{path}: invalid metrics JSON: {e}");
                Exit::Violations.into()
            }
        };
    }
    if !matches!(
        args.command.as_str(),
        "simulate" | "run" | "resume" | "influence" | "graph"
    ) {
        eprintln!("unknown command {}", args.command);
        eprintln!("{}", usage());
        return Exit::Operational.into();
    }
    let dataset = SimConfig::new(args.scale, args.seed).generate();
    eprintln!(
        "dataset: {} image posts, {} memes (scale {:?}, seed {})",
        dataset.posts.len(),
        dataset.universe.len(),
        args.scale,
        args.seed
    );

    match args.command.as_str() {
        "simulate" => {
            if let Some(path) = &args.out {
                let json = serde_json::to_string(&dataset).expect("dataset serializes");
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write {path}: {e}");
                    return Exit::Operational.into();
                }
                eprintln!("wrote {path}");
            } else {
                eprintln!("(pass --out to save the dataset as JSON)");
            }
            Exit::Clean.into()
        }
        cmd @ ("run" | "resume" | "influence" | "graph") => {
            let config = PipelineConfig {
                screenshot_filter: if args.train_filter {
                    ScreenshotFilterMode::Train {
                        corpus_scale: 0.01,
                        config: Default::default(),
                    }
                } else {
                    ScreenshotFilterMode::Oracle
                },
                ..PipelineConfig::default()
            };
            let registry = args
                .metrics_out
                .as_ref()
                .map(|_| std::sync::Arc::new(Registry::new()));
            let metrics = match &registry {
                Some(r) => Metrics::from_registry(Arc::clone(r)),
                None => Metrics::disabled(),
            };
            let mut runner =
                PipelineRunner::new(Pipeline::new(config)).with_metrics(metrics.clone());
            if let Some(path) = &args.checkpoint {
                runner = runner.with_checkpoint(path);
            }
            let result = if cmd == "resume" {
                runner.resume(&dataset)
            } else {
                runner.run(&dataset)
            };
            let output = match result {
                Ok(RunnerOutcome::Complete(o)) => *o,
                Ok(RunnerOutcome::Halted { after }) => {
                    eprintln!("pipeline halted after stage `{after}`");
                    return Exit::Operational.into();
                }
                Err(e) => {
                    eprintln!("pipeline failed: {e}");
                    return Exit::Operational.into();
                }
            };
            eprintln!(
                "pipeline: {} clusters ({} annotated), {} matched posts",
                output.clustering.n_clusters(),
                output.annotated_clusters().len(),
                output.occurrences.iter().flatten().count()
            );
            for (kind, count) in output.degradation_summary() {
                eprintln!("degraded: {kind} x{count}");
            }
            match cmd {
                "run" | "resume" => {
                    if let Some(path) = &args.out {
                        if let Err(e) = std::fs::write(path, output.to_json()) {
                            eprintln!("cannot write {path}: {e}");
                            return Exit::Operational.into();
                        }
                        eprintln!("wrote {path}");
                    }
                    if let (Some(path), Some(registry)) = (&args.metrics_out, &registry) {
                        // Step 7 under the same registry, so the export
                        // carries the Hawkes EM iteration counts too.
                        let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
                        let (_, skipped) = output
                            .estimate_influence_instrumented(&dataset, &estimator, 0, &metrics);
                        if !skipped.is_empty() {
                            eprintln!("influence: {} cluster(s) skipped", skipped.len());
                        }
                        if let Err(e) = std::fs::write(path, registry.to_json()) {
                            eprintln!("cannot write {path}: {e}");
                            return Exit::Operational.into();
                        }
                        eprintln!("wrote {path}");
                    }
                }
                "influence" => {
                    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
                    let (influence, skipped) =
                        output.estimate_influence_robust(&dataset, &estimator, 0);
                    if !skipped.is_empty() {
                        eprintln!(
                            "influence: {} cluster(s) skipped (failed Hawkes fits)",
                            skipped.len()
                        );
                        for d in &skipped {
                            eprintln!("  {d}");
                        }
                    }
                    let pct = influence.total.percent_of_destination();
                    println!("percent of destination events caused by source:");
                    print!("{:>9}", "src\\dst");
                    for c in Community::ALL {
                        print!("{:>9}", c.name());
                    }
                    println!();
                    for (src, row) in pct.iter().enumerate() {
                        print!("{:>9}", Community::ALL[src].name());
                        for v in row {
                            print!("{v:>8.1}%");
                        }
                        println!();
                    }
                    let ext = influence.total.total_external_normalized();
                    println!("external efficiency per source:");
                    for c in Community::ALL {
                        println!("  {:<8} {:>7.2}%", c.name(), ext[c.index()]);
                    }
                }
                "graph" => {
                    let (descriptors, labels) = output.annotated_descriptors();
                    let graph = ClusterGraph::build(
                        &descriptors,
                        &labels,
                        &ClusterDistance::default(),
                        &GraphConfig {
                            kappa: 0.45,
                            min_degree: 1,
                        },
                    );
                    eprintln!(
                        "graph: {} nodes, {} edges, {} components, purity {:.2}",
                        graph.node_count(),
                        graph.edge_count(),
                        graph.n_components,
                        graph.component_purity()
                    );
                    match &args.out {
                        Some(path) => {
                            if let Err(e) = std::fs::write(path, graph.to_dot()) {
                                eprintln!("cannot write {path}: {e}");
                                return Exit::Operational.into();
                            }
                            eprintln!("wrote {path}");
                        }
                        None => println!("{}", graph.to_dot()),
                    }
                }
                _ => unreachable!(),
            }
            Exit::Clean.into()
        }
        _ => unreachable!("command validated before dataset generation"),
    }
}
