//! `memes` — command-line front end for the origins-of-memes pipeline.
//!
//! ```text
//! memes simulate --scale small --seed 7 --out dataset.json
//! memes run      --scale small --seed 7 --out run.json [--train-filter]
//! memes influence --scale small --seed 7
//! memes graph    --scale small --seed 7 --out fig7.dot
//! ```
//!
//! Every subcommand regenerates the (deterministic) dataset from its
//! seed, so no intermediate file is ever required; `--out` writes the
//! artifact for external tooling.

use origins_of_memes::core::graph::{ClusterGraph, GraphConfig};
use origins_of_memes::core::metric::ClusterDistance;
use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig, ScreenshotFilterMode};
use origins_of_memes::hawkes::InfluenceEstimator;
use origins_of_memes::simweb::{Community, SimConfig, SimScale};
use std::process::ExitCode;

struct Args {
    command: String,
    scale: SimScale,
    seed: u64,
    out: Option<String>,
    train_filter: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().collect();
    let command = argv.get(1).cloned().ok_or_else(usage)?;
    let mut args = Args {
        command,
        scale: SimScale::Small,
        seed: 1,
        out: None,
        train_filter: false,
    };
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                args.scale = match argv.get(i).map(String::as_str) {
                    Some("tiny") => SimScale::Tiny,
                    Some("small") => SimScale::Small,
                    Some("default") => SimScale::Default,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--seed" => {
                i += 1;
                args.seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--out" => {
                i += 1;
                args.out = Some(argv.get(i).cloned().ok_or("--out needs a path")?);
            }
            "--train-filter" => args.train_filter = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn usage() -> String {
    "usage: memes <simulate|run|influence|graph> \
     [--scale tiny|small|default] [--seed N] [--out PATH] [--train-filter]"
        .to_string()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            if e != usage() {
                eprintln!("{}", usage());
            }
            return ExitCode::FAILURE;
        }
    };
    if !matches!(
        args.command.as_str(),
        "simulate" | "run" | "influence" | "graph"
    ) {
        eprintln!("unknown command {}", args.command);
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let dataset = SimConfig::new(args.scale, args.seed).generate();
    eprintln!(
        "dataset: {} image posts, {} memes (scale {:?}, seed {})",
        dataset.posts.len(),
        dataset.universe.len(),
        args.scale,
        args.seed
    );

    match args.command.as_str() {
        "simulate" => {
            if let Some(path) = &args.out {
                let json = serde_json::to_string(&dataset).expect("dataset serializes");
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            } else {
                eprintln!("(pass --out to save the dataset as JSON)");
            }
            ExitCode::SUCCESS
        }
        cmd @ ("run" | "influence" | "graph") => {
            let config = PipelineConfig {
                screenshot_filter: if args.train_filter {
                    ScreenshotFilterMode::Train {
                        corpus_scale: 0.01,
                        config: Default::default(),
                    }
                } else {
                    ScreenshotFilterMode::Oracle
                },
                ..PipelineConfig::default()
            };
            let output = match Pipeline::new(config).run(&dataset) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("pipeline failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "pipeline: {} clusters ({} annotated), {} matched posts",
                output.clustering.n_clusters(),
                output.annotated_clusters().len(),
                output.occurrences.iter().flatten().count()
            );
            match cmd {
                "run" => {
                    if let Some(path) = &args.out {
                        if let Err(e) = std::fs::write(path, output.to_json()) {
                            eprintln!("cannot write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        eprintln!("wrote {path}");
                    }
                }
                "influence" => {
                    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
                    let influence = match output.estimate_influence(&dataset, &estimator, 0) {
                        Ok(i) => i,
                        Err(e) => {
                            eprintln!("influence estimation failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    let pct = influence.total.percent_of_destination();
                    println!("percent of destination events caused by source:");
                    print!("{:>9}", "src\\dst");
                    for c in Community::ALL {
                        print!("{:>9}", c.name());
                    }
                    println!();
                    for (src, row) in pct.iter().enumerate() {
                        print!("{:>9}", Community::ALL[src].name());
                        for v in row {
                            print!("{v:>8.1}%");
                        }
                        println!();
                    }
                    let ext = influence.total.total_external_normalized();
                    println!("external efficiency per source:");
                    for c in Community::ALL {
                        println!("  {:<8} {:>7.2}%", c.name(), ext[c.index()]);
                    }
                }
                "graph" => {
                    let (descriptors, labels) = output.annotated_descriptors();
                    let graph = ClusterGraph::build(
                        &descriptors,
                        &labels,
                        &ClusterDistance::default(),
                        &GraphConfig {
                            kappa: 0.45,
                            min_degree: 1,
                        },
                    );
                    eprintln!(
                        "graph: {} nodes, {} edges, {} components, purity {:.2}",
                        graph.node_count(),
                        graph.edge_count(),
                        graph.n_components,
                        graph.component_purity()
                    );
                    match &args.out {
                        Some(path) => {
                            if let Err(e) = std::fs::write(path, graph.to_dot()) {
                                eprintln!("cannot write {path}: {e}");
                                return ExitCode::FAILURE;
                            }
                            eprintln!("wrote {path}");
                        }
                        None => println!("{}", graph.to_dot()),
                    }
                }
                _ => unreachable!(),
            }
            ExitCode::SUCCESS
        }
        _ => unreachable!("command validated before dataset generation"),
    }
}
