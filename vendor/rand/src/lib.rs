//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements exactly the slice of the `rand` 0.10 API the
//! workspace uses: the [`Rng`]/[`RngExt`] traits, [`SeedableRng`],
//! [`rngs::StdRng`] (a xoshiro256++ generator seeded through
//! SplitMix64), the [`distr::Distribution`] trait, and
//! [`seq::SliceRandom`]. Streams differ from upstream `rand` (the
//! algorithms are not the same), but every consumer in this workspace
//! only relies on determinism-given-a-seed and statistical quality,
//! both of which hold.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker trait mirroring `rand::Rng`; blanket-implemented for every
/// [`RngCore`] so generic bounds written against upstream keep working.
pub trait Rng: RngCore {}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Types producible uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types drawable uniformly from a range. The single blanket
/// [`SampleRange`] impl below unifies the inference variable with the
/// range's element type, exactly as upstream `rand` does — per-type
/// range impls would leave `0.0..1.0` literals ambiguous.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                // Lemire-style widening multiply over a 64-bit draw: the
                // spans used in this workspace are far below 2^64, so the
                // modulo bias is at most 2^-64 per draw — negligible.
                let span = (end as i128 - start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let u = <$t as Standard>::random_from(rng);
                start + u * (end - start)
            }
            fn sample_inclusive<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                // Hitting `end` exactly has measure zero; a half-open
                // draw is indistinguishable for float workloads.
                Self::sample_half_open(start, end, rng)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// Convenience methods over any [`Rng`], mirroring `rand`'s `RngExt`.
pub trait RngExt: Rng {
    /// A uniform draw of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniform draw from a range.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::random_from(self) < p
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state-initialized with SplitMix64 — small, fast, and
    /// passes BigCrush. Not the same stream as upstream `StdRng`
    /// (ChaCha12), but every consumer only needs seeded determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard
            // explicit for future seeding paths.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions, mirroring `rand::distr`.
pub mod distr {
    use super::Rng;

    /// A type that can produce samples of `T` given entropy.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Sequence utilities, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngExt};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&z));
        }
        // Every value of a small range is hit.
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_unit_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice in order"
        );
    }
}
