//! Offline stand-in for `crossbeam`.
//!
//! The workspace only uses `crossbeam::thread::scope`, which predates
//! `std::thread::scope`; this shim adapts the std API to the crossbeam
//! calling convention (spawn closures receive a `&Scope` argument, and
//! `scope` returns a `Result` instead of resuming panics).

#![forbid(unsafe_code)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to spawn closures, wrapping
    /// [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic
        /// payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the
        /// scope (crossbeam convention; callers here ignore it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope whose spawned threads all finish before
    /// this returns. A panic on any unjoined thread (or in `f`) is
    /// reported as `Err` rather than resumed, matching crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_mutate() {
        let mut data = vec![0u64; 16];
        thread::scope(|s| {
            for (i, chunk) in data.chunks_mut(4).enumerate() {
                s.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 4 + j) as u64;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(data, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn join_returns_values() {
        let out = thread::scope(|s| {
            let hs: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * 2)).collect();
            hs.into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<i32>>()
        })
        .unwrap();
        assert_eq!(out, vec![0, 2, 4, 6]);
    }

    #[test]
    fn panics_surface_as_err() {
        let res = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
