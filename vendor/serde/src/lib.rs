//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored
//! crate replaces `serde` with a radically simpler model that covers
//! everything the workspace needs: types serialize into a [`Value`]
//! tree (the JSON data model) and deserialize back out of it. The
//! companion `serde_derive` proc-macro generates [`Serialize`] /
//! [`Deserialize`] impls for plain structs and enums, and the vendored
//! `serde_json` crate renders [`Value`] to and from JSON text.
//!
//! Deliberate simplifications relative to upstream:
//!
//! * no zero-copy deserialization (no `'de` lifetime) — everything is
//!   owned, which is fine for checkpoint/report files;
//! * non-finite floats serialize as `null` and deserialize back as
//!   `f64::NAN` (upstream `serde_json` errors instead); the
//!   fault-injection tests rely on corrupt values surviving a
//!   checkpoint round-trip;
//! * enums use the externally-tagged representation only (the upstream
//!   default, and the only one this workspace uses).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact — pHashes are full-range `u64`).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered, duplicate keys never produced.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// A new error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    /// "expected X while deserializing Y" helper.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Look up a required object field.
pub fn field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::msg(format!("missing field `{name}`")))
}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialize out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Written for a non-finite float (JSON has no NaN literal).
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string. Only interpretive labels (e.g. kappa
    /// strength names) use `&'static str` fields, so the leak is a few
    /// bytes per loaded report — acceptable for a CLI process.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", v.kind()))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg("expected a single-character string")),
        }
    }
}

// --- container impls -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v.kind()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::msg(format!("expected an array of length {N}, got {n}")))
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort serialized elements so output is deterministic across
        // hasher states (important for checkpoint-equality tests).
        let mut vals: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        vals.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(vals)
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v.kind()))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v.kind()))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::expected("array", v.kind()))?;
                let expected = [$($idx),+].len();
                if a.len() != expected {
                    return Err(DeError::msg(format!(
                        "expected a {expected}-tuple, got {} elements", a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn nan_round_trips_via_null() {
        let v = f64::NAN.to_value();
        // The JSON layer writes F64(NaN) as null; simulate that here.
        let back = f64::from_value(&Value::Null).unwrap();
        assert!(back.is_nan());
        assert!(matches!(v, Value::F64(x) if x.is_nan()));
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![Some(1u32), None, Some(3)];
        assert_eq!(Vec::<Option<u32>>::from_value(&xs.to_value()).unwrap(), xs);
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let set: HashSet<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        assert_eq!(HashSet::<String>::from_value(&set.to_value()).unwrap(), set);
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u64::from_value(&Value::String("x".into())).is_err());
        assert!(<[f64; 2]>::from_value(&vec![1.0].to_value()).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(field(&[], "missing").is_err());
    }
}
