//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls for the
//! vendored value-model serde. Implemented directly on
//! `proc_macro::TokenStream` (no `syn`/`quote` — crates.io is
//! unreachable in this environment): the item is parsed by walking
//! token trees and the impl is emitted as a source string.
//!
//! Supported shapes — exactly what the workspace uses:
//! * structs with named fields, newtype structs (transparent), tuple
//!   structs, unit structs;
//! * enums with unit, newtype, tuple, and struct variants, in the
//!   externally-tagged representation (`"Variant"` for unit,
//!   `{"Variant": payload}` otherwise).
//!
//! Generic types and `#[serde(...)]` attributes are rejected with a
//! compile error rather than silently mishandled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// --- item model ------------------------------------------------------

enum Fields {
    /// `struct S;` / `Variant,`
    Unit,
    /// `(T1, T2, ...)` — the count is all codegen needs.
    Tuple(usize),
    /// `{ a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// --- token-tree parsing ----------------------------------------------

/// Skip outer attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected an item name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic types (deriving for `{name}`)"
            ));
        }
    }

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(match tokens.get(i) {
            None => Fields::Unit, // `struct S;` — the `;` may be absent in derive input
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            other => {
                return Err(format!(
                    "unexpected tokens after `struct {name}`: {other:?}"
                ))
            }
        }),
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body for `{name}`, found {other:?}")),
        },
        other => return Err(format!("cannot derive serde traits for `{other}` items")),
    };

    Ok(Item { name, shape })
}

/// Parse `a: T, b: U, ...` returning field names. Commas inside angle
/// brackets (`Option<Vec<T>>`) are not separators, so angle depth is
/// tracked while skipping type tokens.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tok) = tokens.get(i) else { break };
        let name = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Count the fields of a tuple struct / tuple variant: top-level commas
/// (outside angle brackets) plus one, with a trailing comma allowed.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for (idx, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && idx + 1 < tokens.len() =>
            {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tok) = tokens.get(i) else { break };
        let name = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator.
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// --- codegen ---------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        // Newtype structs are transparent, matching upstream serde.
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String({vname:?}.to_string())"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(f0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => format!(
            "match __v {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 other => Err(::serde::DeError::expected(\"null\", other.kind())),\n\
             }}"
        ),
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", __v.kind()))?;\n\
                 if __a.len() != {n} {{\n\
                     return Err(::serde::DeError::msg(format!(\"expected {n} elements for {name}, got {{}}\", __a.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(__obj, {f:?})?)?")
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", __v.kind()))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let __a = __inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", __inner.kind()))?;\n\
                                     if __a.len() != {n} {{\n\
                                         return Err(::serde::DeError::msg(format!(\"expected {n} elements for {name}::{vname}, got {{}}\", __a.len())));\n\
                                     }}\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}",
                                elems.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::Deserialize::from_value(::serde::field(__obj, {f:?})?)?")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let __obj = __inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", __inner.kind()))?;\n\
                                     Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {}\n\
                         other => Err(::serde::DeError::msg(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::DeError::msg(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::expected(\"a variant tag\", other.kind())),\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
