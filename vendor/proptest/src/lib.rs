//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`any`], `prop::collection::vec`, the
//! [`proptest!`] macro with `#![proptest_config(...)]` and both
//! `pat in strategy` and `ident: ty` parameters, plus the
//! `prop_assert*`/`prop_assume` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case reports its inputs via the assert
//!   message and the deterministic per-test seed reproduces it;
//! * no persistence of regression files (`*.proptest-regressions` is
//!   ignored);
//! * cases default to 64 instead of 256 to keep `cargo test` fast.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
pub struct TestRng(StdRng);

impl TestRng {
    /// An RNG for one (test, case) pair: seeded from the test name and
    /// case index so failures reproduce run-to-run.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Per-block configuration, set with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produce a dependent strategy from each value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! range_incl_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_incl_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// Types with a canonical "anything" strategy, used by [`any`] and by
/// `ident: ty` parameters in [`proptest!`].
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )*};
}

arbitrary_via_random!(u8, u16, u32, u64, usize, i64, bool, f32, f64);

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<u32>() as i32
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The `prop::` namespace (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::RngExt;
        use std::ops::Range;

        /// Element counts accepted by [`vec`]: a fixed length or a
        /// half-open range.
        pub struct SizeRange(Range<usize>);

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange(n..n + 1)
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange(r)
            }
        }

        /// Strategy for `Vec`s with element strategy `S`.
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.start + 1 >= self.size.end {
                    self.size.start
                } else {
                    rng.random_range(self.size.clone())
                };
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// A `Vec` strategy: `size` is a fixed `usize` or `Range<usize>`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into().0,
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property test; failure fails the case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` targeting the case loop in [`proptest!`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr,) => {
        $crate::prop_assume!($cond)
    };
}

/// The property-test entry point. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions whose
/// parameters are `pat in strategy` or `ident: ty`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Internal: munch test functions one at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    u64::from(__case),
                );
                $crate::__proptest_bindings!{ __rng; $($params)* }
                $body
            }
        }
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
}

/// Internal: turn `pat in strategy, ident: ty, ...` parameter lists
/// into `let` bindings drawing from `$rng`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident; ) => {};
    ($rng:ident; , $($rest:tt)*) => {
        $crate::__proptest_bindings!{ $rng; $($rest)* }
    };
    ($rng:ident; $($rest:tt)*) => {
        $crate::__proptest_pat!{ $rng; [] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_pat {
    // `pat in strategy` — switch to expression accumulation.
    ($rng:ident; [$($pat:tt)*] in $($rest:tt)*) => {
        $crate::__proptest_expr!{ $rng; [$($pat)*] [] $($rest)* }
    };
    // `ident: ty` — switch to type accumulation.
    ($rng:ident; [$($pat:tt)*] : $($rest:tt)*) => {
        $crate::__proptest_ty!{ $rng; [$($pat)*] [] $($rest)* }
    };
    ($rng:ident; [$($pat:tt)*] $t:tt $($rest:tt)*) => {
        $crate::__proptest_pat!{ $rng; [$($pat)* $t] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_expr {
    ($rng:ident; [$($pat:tt)*] [$($e:tt)*] , $($rest:tt)*) => {
        let $($pat)* = $crate::Strategy::generate(&($($e)*), &mut $rng);
        $crate::__proptest_bindings!{ $rng; $($rest)* }
    };
    ($rng:ident; [$($pat:tt)*] [$($e:tt)*] $t:tt $($rest:tt)*) => {
        $crate::__proptest_expr!{ $rng; [$($pat)*] [$($e)* $t] $($rest)* }
    };
    ($rng:ident; [$($pat:tt)*] [$($e:tt)*]) => {
        let $($pat)* = $crate::Strategy::generate(&($($e)*), &mut $rng);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_ty {
    ($rng:ident; [$($pat:tt)*] [$($ty:tt)*] , $($rest:tt)*) => {
        let $($pat)*: $($ty)* = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bindings!{ $rng; $($rest)* }
    };
    ($rng:ident; [$($pat:tt)*] [$($ty:tt)*] $t:tt $($rest:tt)*) => {
        $crate::__proptest_ty!{ $rng; [$($pat)*] [$($ty)* $t] $($rest)* }
    };
    ($rng:ident; [$($pat:tt)*] [$($ty:tt)*]) => {
        let $($pat)*: $($ty)* = $crate::Arbitrary::arbitrary(&mut $rng);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (0u64..1000, 0.0f64..1.0);
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::for_case("sizes", 0);
        let fixed = prop::collection::vec(0u8..10, 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
        let ranged = prop::collection::vec(0u8..10, 2..5);
        for _ in 0..100 {
            let len = ranged.generate(&mut rng).len();
            assert!((2..5).contains(&len));
        }
    }

    #[test]
    fn flat_map_chains_dependent_strategies() {
        let s = (1usize..10).prop_flat_map(|n| prop::collection::vec(0usize..n, n));
        let mut rng = TestRng::for_case("fm", 1);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 10);
            let n = v.len();
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_both_param_forms(x in 1u64..100, seed: u64, mut v in prop::collection::vec(0i64..5, 0..4)) {
            prop_assert!((1..100).contains(&x));
            v.push(seed as i64 % 5);
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn assume_skips_cases(a in 0u64..10, b in 0u64..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}
