//! Offline stand-in for `criterion`.
//!
//! Exposes the criterion API surface the workspace's benches use
//! (`Criterion`, benchmark groups, `iter`/`iter_batched`,
//! `BenchmarkId`, `Throughput`, the `criterion_group!`/
//! `criterion_main!` macros) backed by a minimal wall-clock timer: a
//! few warm-up runs, then `sample_size` timed runs, reporting the
//! median to stdout. No statistics, plots, or baselines — enough to
//! run `cargo bench` and compare orders of magnitude offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration workload size (reported as a rate).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IdLike, f: F) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.render()),
            self.sample_size,
            f,
        );
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.render()),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

/// Things accepted as a benchmark id by [`BenchmarkGroup::bench_function`].
pub trait IdLike {
    /// Display form of the id.
    fn render(self) -> String;
}

impl IdLike for &str {
    fn render(self) -> String {
        self.to_string()
    }
}

impl IdLike for String {
    fn render(self) -> String {
        self
    }
}

impl IdLike for BenchmarkId {
    fn render(self) -> String {
        self.text
    }
}

/// Per-iteration workload size. Accepted and ignored.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Controls batch sizing for [`Bencher::iter_batched`]. Ignored — every
/// batch is one routine call.
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// Passed to bench closures; times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    /// Time `routine` on inputs built by `setup` (setup is untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size + 2),
    };
    // Warm-up (discarded).
    for _ in 0..2.min(sample_size) {
        f(&mut b);
    }
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("bench {label:<50} (no samples — closure never called iter)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let (lo, hi) = (b.samples[0], b.samples[b.samples.len() - 1]);
    println!(
        "bench {label:<50} median {:>12?}   range [{lo:?} .. {hi:?}]   n={}",
        median,
        b.samples.len()
    );
}

/// Collect bench functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 2 warm-ups + 3 samples.
        assert_eq!(runs, 5);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4usize, |b, &n| {
            b.iter_batched(
                || vec![1u64; n],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
