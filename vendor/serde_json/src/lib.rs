//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde::Value` model to JSON text and parses it
//! back. Follows upstream `serde_json` behavior where the workspace
//! depends on it (integer-vs-float distinction, stable key order, full
//! `u64` precision for pHashes) with one deliberate divergence:
//! non-finite floats serialize as `null` instead of erroring, so
//! fault-injected NaN scores survive a checkpoint write.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// --- writer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{x:?}` is Rust's shortest round-trippable float
                // form; ensure a `.0` so integral floats re-parse as
                // floats, matching upstream serde_json.
                let s = format!("{x:?}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        let back: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(back, u64::MAX);
        let back: i64 = from_str("-42").unwrap();
        assert_eq!(back, -42);
        let back: f64 = from_str("2.5e3").unwrap();
        assert_eq!(back, 2500.0);
        let back: bool = from_str("true").unwrap();
        assert!(back);
    }

    #[test]
    fn floats_keep_float_shape() {
        // Integral floats must not collapse to integers in the text.
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let back: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(back, 0.1);
    }

    #[test]
    fn non_finite_floats_become_null_and_back_nan() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}已".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let back: Vec<Vec<u32>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let opt: Vec<Option<f64>> = vec![Some(1.5), None];
        let back: Vec<Option<f64>> = from_str(&to_string(&opt).unwrap()).unwrap();
        assert_eq!(back, opt);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u64, f64)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
