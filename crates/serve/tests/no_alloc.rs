//! Steady-state allocation audit for the in-process lookup path.
//!
//! The serving-layer contract extends the index crate's: once a
//! worker's [`ServeScratch`] has warmed up, [`Snapshot::lookup`] plus a
//! [`SnapshotStore::load`] per micro-batch perform **zero heap
//! allocations** — the snapshot is immutable, the hit is `Copy`, the
//! store load is one `Arc` clone, and record resolution is a slice
//! index. Same counting-allocator audit as
//! `crates/index/tests/no_alloc.rs`, and the same single-test rule (a
//! concurrent test's allocations would pollute the counting window).

use meme_core::pipeline::{Pipeline, PipelineConfig};
use meme_index::IndexEngine;
use meme_phash::PHash;
use meme_serve::{ServeScratch, Snapshot, SnapshotStore, DEFAULT_THETA};
use meme_simweb::SimConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation counter. Deallocations
/// are not counted — the assertion is about *new* heap traffic.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// The workspace lib crates `#![forbid(unsafe_code)]`; integration tests
// are separate crates, and a global allocator shim is exactly the kind
// of boundary where the unsafety is contained and auditable.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_lookups_do_not_allocate() {
    let dataset = SimConfig::tiny(17).generate();
    let output = Pipeline::new(PipelineConfig::fast()).run(&dataset).unwrap();
    let store = SnapshotStore::new(Snapshot::build(&output, None, DEFAULT_THETA, 0).unwrap());
    {
        let snap = store.load();
        assert!(!snap.is_empty(), "tiny run produced no annotated clusters");
        // θ = 8 keeps the fallback on MIH; the BK-tree backend's
        // recursive descent is not part of the zero-alloc contract.
        assert_eq!(snap.engine(), IndexEngine::Mih);
    }

    // Query mix: exact medoids (hits at distance 0), near-misses one
    // bit away, and far probes (mostly misses) — enough variety to
    // drive every scratch buffer to its high-water mark during warmup.
    let queries: Vec<PHash> = {
        let snap = store.load();
        snap.records()
            .iter()
            .enumerate()
            .flat_map(|(i, r)| {
                [
                    r.medoid,
                    PHash(r.medoid.0 ^ (1 << (i % 64))),
                    PHash(r.medoid.0 ^ 0xAAAA_AAAA_AAAA_AAAA),
                ]
            })
            .collect()
    };

    let mut scratch = ServeScratch::new();
    let mut hits = 0u64;
    for &q in &queries {
        let snap = store.load();
        if snap.lookup(q, &mut scratch).is_some() {
            hits += 1;
        }
    }
    assert!(hits > 0, "warmup found no hits; the workload is broken");

    let before = allocations();
    for &q in &queries {
        // One store load per query is the worst case; workers batch it.
        let snap = store.load();
        let hit = snap.lookup(q, &mut scratch);
        if let Some(h) = hit {
            // Resolving the record and influence row is also free.
            assert!(snap.record(h.slot).is_some());
            let _ = snap.influence_row(h.slot);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state serve lookups must not touch the heap"
    );
}
