//! Lookup determinism under concurrency and hot swaps.
//!
//! The serving layer's correctness claim is that a lookup's answer is a
//! pure function of (query, snapshot generation): reader-thread count
//! must not matter (the snapshot is immutable and the tie-break is
//! total), and a swap must be atomic — every reader sees either the old
//! generation or the new one, never a blend.

use meme_core::pipeline::{Pipeline, PipelineConfig, PipelineOutput};
use meme_phash::PHash;
use meme_serve::{ServeScratch, Snapshot, SnapshotStore, DEFAULT_THETA};
use meme_simweb::SimConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

fn tiny_output() -> &'static PipelineOutput {
    static OUT: OnceLock<PipelineOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        let dataset = SimConfig::tiny(17).generate();
        Pipeline::new(PipelineConfig::fast()).run(&dataset).unwrap()
    })
}

/// The query mix every scenario answers: exact medoids, single-bit
/// perturbations, and far probes.
fn queries(snap: &Snapshot) -> Vec<PHash> {
    snap.records()
        .iter()
        .enumerate()
        .flat_map(|(i, r)| {
            [
                r.medoid,
                PHash(r.medoid.0 ^ (1 << (i % 64))),
                PHash(r.medoid.0 ^ 0x5555_5555_5555_5555),
            ]
        })
        .collect()
}

/// One lookup rendered to its full observable answer.
fn answer(snap: &Snapshot, q: PHash, scratch: &mut ServeScratch) -> String {
    match snap.lookup(q, scratch) {
        Some(h) => {
            let rec = snap.record(h.slot).unwrap();
            format!(
                "{q} -> cluster {} entry {} ({}) at {}",
                h.cluster, h.entry_id, rec.name, h.distance
            )
        }
        None => format!("{q} -> miss"),
    }
}

/// Answer every query on `threads` reader threads, in query order.
fn run_readers(snap: &Arc<Snapshot>, qs: &[PHash], threads: usize) -> Vec<String> {
    let mut slots: Vec<Option<String>> = vec![None; qs.len()];
    std::thread::scope(|scope| {
        for (t, chunk) in slots.chunks_mut(qs.len().div_ceil(threads)).enumerate() {
            let snap = Arc::clone(snap);
            let offset = t * qs.len().div_ceil(threads);
            scope.spawn(move || {
                let mut scratch = ServeScratch::new();
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(answer(&snap, qs[offset + i], &mut scratch));
                }
            });
        }
    });
    slots.into_iter().flatten().collect()
}

#[test]
fn lookups_are_byte_identical_across_reader_thread_counts() {
    let snap = Arc::new(Snapshot::build(tiny_output(), None, DEFAULT_THETA, 1).unwrap());
    assert!(!snap.is_empty());
    let qs = queries(&snap);
    let serial = run_readers(&snap, &qs, 1);
    assert!(serial.iter().any(|a| !a.ends_with("miss")));
    for threads in [2, 8] {
        let parallel = run_readers(&snap, &qs, threads);
        assert_eq!(
            serial, parallel,
            "answers must be byte-identical on {threads} reader threads"
        );
    }
}

#[test]
fn lookups_are_byte_identical_across_a_hot_swap() {
    let output = tiny_output();
    let store = Arc::new(SnapshotStore::new(
        Snapshot::build(output, None, DEFAULT_THETA, 0).unwrap(),
    ));
    let qs = queries(&store.load());

    // Reference answers per generation, computed serially. The swapped
    // snapshot is built from the same artifact, so answers may only
    // differ in generation — which `answer` does not render; byte
    // identity across the swap is exactly the claim.
    let mut scratch = ServeScratch::new();
    let reference: Vec<String> = {
        let snap = store.load();
        qs.iter().map(|&q| answer(&snap, q, &mut scratch)).collect()
    };

    // Readers hammer the store while the main thread swaps mid-run.
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = Arc::clone(&store);
            let stop = &stop;
            let qs = &qs;
            let reference = &reference;
            handles.push(scope.spawn(move || {
                let mut scratch = ServeScratch::new();
                let mut rounds = 0u64;
                let mut generations_seen = std::collections::BTreeSet::new();
                while !stop.load(Ordering::Relaxed) {
                    // Pin one generation per round, as workers do per
                    // micro-batch.
                    let snap = store.load();
                    generations_seen.insert(snap.generation());
                    for (i, &q) in qs.iter().enumerate() {
                        let got = answer(&snap, q, &mut scratch);
                        assert_eq!(reference[i], got, "generation {}", snap.generation());
                    }
                    rounds += 1;
                }
                (rounds, generations_seen)
            }));
        }

        // Let readers run, swap twice, let them run some more.
        for _ in 0..2 {
            std::thread::sleep(std::time::Duration::from_millis(30));
            store.swap(Snapshot::build(output, None, DEFAULT_THETA, 0).unwrap());
        }
        std::thread::sleep(std::time::Duration::from_millis(30));
        stop.store(true, Ordering::Relaxed);

        let mut total_rounds = 0;
        for h in handles {
            let (rounds, gens) = h.join().unwrap();
            total_rounds += rounds;
            assert!(
                gens.iter().all(|g| (1..=3).contains(g)),
                "reader saw an impossible generation: {gens:?}"
            );
        }
        assert!(total_rounds > 0);
    });
    assert_eq!(store.generation(), 3);
}
