//! The immutable lookup snapshot: a completed run artifact recast as a
//! read-optimized index.
//!
//! A [`Snapshot`] holds exactly what the lookup path needs and nothing
//! the pipeline needed to produce it: the annotated clusters' medoid
//! hashes collapsed through [`HashGroups`] and indexed by a
//! [`FallbackIndex`] (MIH at the production θ = 8), a per-cluster
//! [`MemeRecord`] table naming the representative KYM entry, and —
//! when the loader supplied one — the per-cluster influence profile
//! from Step 7. Snapshots are built once, never mutated, and shared
//! across reader threads behind an `Arc` (see
//! [`SnapshotStore`](crate::SnapshotStore)).
//!
//! The steady-state query path is allocation-free by contract: each
//! worker owns a [`ServeScratch`] whose buffers grow to the workload's
//! high-water mark during warmup, and [`Snapshot::lookup`] returns a
//! `Copy` [`LookupHit`] of indices into the snapshot's tables
//! (`crates/serve/tests/no_alloc.rs` enforces this with a counting
//! global allocator, the same audit the index crate runs).

use crate::error::ServeError;
use meme_core::pipeline::{PipelineError, PipelineOutput};
use meme_hawkes::{ClusterInfluence, InfluenceMatrix};
use meme_index::{FallbackIndex, HammingIndex, HashGroups, IndexEngine, QueryScratch};
use meme_phash::PHash;

/// The paper's Step-6 association threshold: a query image belongs to a
/// meme when its pHash is within Hamming distance 8 of the cluster
/// medoid.
pub const DEFAULT_THETA: u32 = 8;

/// One annotated cluster, denormalized for serving.
#[derive(Debug, Clone, PartialEq)]
pub struct MemeRecord {
    /// The cluster id in the source run (position in the medoid list).
    pub cluster: usize,
    /// The cluster's medoid hash.
    pub medoid: PHash,
    /// The representative KYM entry's id.
    pub entry_id: usize,
    /// The representative KYM entry's name ("Smug Frog", …).
    pub name: String,
    /// The representative entry's category display name ("Memes", …).
    pub category: &'static str,
}

/// Reusable per-worker working memory for [`Snapshot::lookup`].
///
/// One per reader thread; never shared. After warmup the buffers sit at
/// the workload's high-water mark and lookups allocate nothing.
#[derive(Debug, Default)]
pub struct ServeScratch {
    /// The index engine's probe/verify scratch.
    pub query: QueryScratch,
    /// Matched unique-hash slots (reused output buffer).
    pub matches: Vec<usize>,
}

impl ServeScratch {
    /// Fresh, empty working memory.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A successful lookup: indices into the snapshot's tables plus the
/// match distance. `Copy`, so returning one allocates nothing; resolve
/// it through [`Snapshot::record`] / [`Snapshot::influence_row`] when
/// the caller needs names or profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupHit {
    /// Position in [`Snapshot::records`] (annotated-cluster order).
    pub slot: usize,
    /// The matched cluster's id in the source run.
    pub cluster: usize,
    /// The representative KYM entry's id.
    pub entry_id: usize,
    /// Hamming distance from the query to the matched medoid.
    pub distance: u32,
}

/// An immutable, shareable lookup structure over one completed run.
#[derive(Debug)]
pub struct Snapshot {
    /// Which swap generation this snapshot belongs to (1 for the first
    /// load; bumped by [`SnapshotStore::swap`](crate::SnapshotStore)).
    generation: u64,
    /// Association threshold the index was built for.
    theta: u32,
    /// Annotated clusters, in ascending cluster order.
    records: Vec<MemeRecord>,
    /// Duplicate-collapsed medoid hashes: identical medoids (distinct
    /// clusters can share one) are indexed once and expanded through
    /// the owner lists.
    groups: HashGroups,
    /// Radius-query engine over `groups.unique()`.
    index: FallbackIndex,
    /// Per-record influence profile (Step 7), when the loader computed
    /// one. `influence[slot]` pairs with `records[slot]`.
    influence: Option<Vec<InfluenceMatrix>>,
}

impl Snapshot {
    /// Build a snapshot from a completed run.
    ///
    /// `influence`, when given, must come from
    /// [`PipelineOutput::estimate_influence_robust`] (or `estimate`) on
    /// the same artifact, so its per-cluster matrices line up with
    /// [`PipelineOutput::annotated_clusters`] order.
    ///
    /// Shapes a pipeline run never produces — annotations pointing past
    /// the medoid table, representative ids past the KYM site — are
    /// rejected with a typed error rather than panicking, because
    /// artifacts arrive from disk and may be corrupt or stale.
    pub fn build(
        output: &PipelineOutput,
        influence: Option<&ClusterInfluence>,
        theta: u32,
        generation: u64,
    ) -> Result<Snapshot, ServeError> {
        let mut records = Vec::new();
        for ann in output.annotations.iter().filter(|a| a.is_annotated()) {
            let Some(entry_id) = ann.representative else {
                continue; // is_annotated() implies Some; tolerate a mangled artifact
            };
            let entry = output.site.get(entry_id).ok_or_else(|| {
                PipelineError::CheckpointCorrupt(format!(
                    "cluster {} has representative entry {entry_id}, but the site has only {} entries",
                    ann.cluster,
                    output.site.len()
                ))
            })?;
            let medoid = *output.medoid_hashes.get(ann.cluster).ok_or_else(|| {
                PipelineError::CheckpointCorrupt(format!(
                    "annotation names cluster {}, but there are only {} medoids",
                    ann.cluster,
                    output.medoid_hashes.len()
                ))
            })?;
            records.push(MemeRecord {
                cluster: ann.cluster,
                medoid,
                entry_id,
                name: entry.name.clone(),
                category: entry.category.name(),
            });
        }
        let influence = match influence {
            Some(ci) => {
                if ci.per_cluster.len() != records.len() {
                    return Err(ServeError::InfluenceShape {
                        rows: ci.per_cluster.len(),
                        annotated: records.len(),
                    });
                }
                Some(ci.per_cluster.clone())
            }
            None => None,
        };
        let medoids: Vec<PHash> = records.iter().map(|r| r.medoid).collect();
        let groups = HashGroups::new(&medoids);
        let index = FallbackIndex::build(groups.unique().to_vec(), theta);
        Ok(Snapshot {
            generation,
            theta,
            records,
            groups,
            index,
            influence,
        })
    }

    /// The swap generation this snapshot was installed as.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Re-stamp the generation (used by the store on swap).
    pub(crate) fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// The association threshold queries run at.
    pub fn theta(&self) -> u32 {
        self.theta
    }

    /// Number of servable memes (annotated clusters).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the run had no annotated clusters.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The engine the medoid index settled on (MIH at production θ).
    pub fn engine(&self) -> IndexEngine {
        self.index.engine()
    }

    /// All records, in ascending cluster order.
    pub fn records(&self) -> &[MemeRecord] {
        &self.records
    }

    /// The record behind a [`LookupHit`].
    pub fn record(&self, slot: usize) -> Option<&MemeRecord> {
        self.records.get(slot)
    }

    /// The Step-7 influence profile behind a [`LookupHit`], when the
    /// loader supplied influence data.
    pub fn influence_row(&self, slot: usize) -> Option<&InfluenceMatrix> {
        self.influence.as_ref().and_then(|rows| rows.get(slot))
    }

    /// Match `query` against the annotated medoids at the snapshot's θ.
    ///
    /// Returns the nearest annotated cluster within θ, or `None` when
    /// no medoid is close enough. Deterministic tie-break: smallest
    /// distance first, then smallest cluster id — independent of engine
    /// and thread count. Steady-state calls allocate nothing.
    // lint:hotpath(steady-state per-query lookup; allocation belongs in the caller-provided scratch)
    pub fn lookup(&self, query: PHash, scratch: &mut ServeScratch) -> Option<LookupHit> {
        self.index
            .radius_query_into(query, self.theta, &mut scratch.query, &mut scratch.matches);
        let mut best: Option<(u32, usize)> = None; // (distance, slot)
        for &u in &scratch.matches {
            let d = query.distance(self.index.hash_at(u));
            // Owner lists are ascending, so the first owner is the
            // smallest record slot (= smallest cluster id) sharing this
            // medoid hash — the deterministic tie-break within a hash.
            let Some(&slot) = self.groups.owners(u).first() else {
                continue; // unreachable: every unique hash has an owner
            };
            let slot = slot as usize;
            let better = match best {
                None => true,
                Some((bd, bs)) => (d, slot) < (bd, bs),
            };
            if better {
                best = Some((d, slot));
            }
        }
        let (distance, slot) = best?;
        let rec = self.records.get(slot)?;
        Some(LookupHit {
            slot,
            cluster: rec.cluster,
            entry_id: rec.entry_id,
            distance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_output() -> PipelineOutput {
        crate::testutil::tiny_output().clone()
    }

    #[test]
    fn build_covers_every_annotated_cluster() {
        let output = tiny_output();
        let snap = Snapshot::build(&output, None, DEFAULT_THETA, 1).unwrap();
        assert_eq!(snap.len(), output.annotated_clusters().len());
        assert_eq!(snap.generation(), 1);
        let mut scratch = ServeScratch::new();
        // Every medoid must find its own cluster at distance 0.
        for rec in snap.records() {
            let hit = snap.lookup(rec.medoid, &mut scratch).unwrap();
            assert_eq!(hit.distance, 0);
            let found = snap.record(hit.slot).unwrap();
            assert_eq!(found.medoid, rec.medoid);
            // Identical medoids collapse to the smallest cluster id.
            assert!(found.cluster <= rec.cluster);
        }
    }

    #[test]
    fn lookup_misses_far_hashes() {
        let output = tiny_output();
        let snap = Snapshot::build(&output, None, DEFAULT_THETA, 1).unwrap();
        let mut scratch = ServeScratch::new();
        // A hash ~32 bits from everything (alternating pattern xored
        // against the first medoid) should not be within θ = 8.
        let far = PHash(snap.records()[0].medoid.0 ^ 0xAAAA_AAAA_AAAA_AAAA);
        let hit = snap.lookup(far, &mut scratch);
        if let Some(h) = hit {
            assert!(h.distance <= DEFAULT_THETA);
        }
    }

    #[test]
    fn lookup_prefers_nearest_then_smallest_cluster() {
        let output = tiny_output();
        let snap = Snapshot::build(&output, None, DEFAULT_THETA, 1).unwrap();
        let mut scratch = ServeScratch::new();
        for rec in snap.records() {
            // One bit away from a medoid must match at distance <= 1:
            // either the perturbed medoid itself, or another medoid that
            // is even closer (distance 0 means a duplicate one bit away).
            let near = PHash(rec.medoid.0 ^ 1);
            let hit = snap.lookup(near, &mut scratch).unwrap();
            assert!(hit.distance <= 1);
        }
    }

    #[test]
    fn corrupt_annotation_cluster_is_typed() {
        let mut output = tiny_output();
        if let Some(ann) = output.annotations.iter_mut().find(|a| a.is_annotated()) {
            ann.cluster = 10_000;
        } else {
            return; // tiny run with no annotations: nothing to corrupt
        }
        let err = Snapshot::build(&output, None, DEFAULT_THETA, 1).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Pipeline(PipelineError::CheckpointCorrupt(_))
        ));
    }

    #[test]
    fn corrupt_representative_entry_is_typed() {
        let mut output = tiny_output();
        if let Some(ann) = output.annotations.iter_mut().find(|a| a.is_annotated()) {
            ann.representative = Some(10_000);
        } else {
            return;
        }
        let err = Snapshot::build(&output, None, DEFAULT_THETA, 1).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Pipeline(PipelineError::CheckpointCorrupt(_))
        ));
    }

    #[test]
    fn influence_shape_mismatch_is_typed() {
        let output = tiny_output();
        if output.annotated_clusters().is_empty() {
            return;
        }
        let bogus = ClusterInfluence {
            per_cluster: vec![],
            total: InfluenceMatrix::zeros(5),
        };
        // Zero rows for a run with annotated clusters: rejected.
        let err = Snapshot::build(&output, Some(&bogus), DEFAULT_THETA, 1).unwrap_err();
        assert!(matches!(err, ServeError::InfluenceShape { .. }));
    }
}
