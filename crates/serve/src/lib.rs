//! Hot-swappable meme-lookup serving layer (DESIGN.md §12).
//!
//! The pipeline (`meme-core`) is a batch program: it turns a crawl into
//! a run artifact and exits. This crate is the other half of the
//! paper's workflow — *using* the processed corpus: given an image's
//! pHash, which meme is it, which Know Your Meme entry names it, and
//! what does its influence profile look like? (The association rule is
//! the paper's Step 6: nearest annotated medoid within Hamming
//! distance θ = 8.)
//!
//! Layers, bottom up:
//!
//! - [`artifact`]: load a completed run from disk — `PipelineOutput`
//!   JSON or a v2 checkpoint envelope, sniffed by magic.
//! - [`Snapshot`]: the artifact recast as an immutable read-optimized
//!   index (duplicate-collapsed medoids behind the workspace's
//!   [`FallbackIndex`](meme_index::FallbackIndex), denormalized
//!   [`MemeRecord`] table, optional influence rows). In-process lookups
//!   are allocation-free in steady state given a per-thread
//!   [`ServeScratch`].
//! - [`SnapshotStore`]: epoch-swapped publication — reload a new
//!   artifact under live traffic; readers pin a generation per batch
//!   and never pause.
//! - [`BatchQueue`] + [`ConnRegistry`] + [`Server`]: the micro-batching
//!   TCP front end speaking a line-delimited JSON [`protocol`], with a
//!   production-hardened connection lifecycle — admission caps, bounded
//!   request lines, per-line read deadlines, typed load shedding, and a
//!   graceful drain that joins every thread (DESIGN.md §12).
//!
//! The `memes serve` / `memes lookup` subcommands and the
//! `serve-load` closed-loop benchmark (`BENCH_serve.json`) sit on top
//! of these pieces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod batch;
pub mod error;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod snapshot;
pub mod store;

pub use artifact::load_output;
pub use batch::{BatchQueue, Push};
pub use error::ServeError;
pub use registry::ConnRegistry;
pub use server::{Server, ServerConfig};
pub use snapshot::{LookupHit, MemeRecord, ServeScratch, Snapshot, DEFAULT_THETA};
pub use store::SnapshotStore;

#[cfg(test)]
pub(crate) mod testutil {
    use meme_core::pipeline::{Pipeline, PipelineConfig, PipelineOutput};
    use meme_simweb::SimConfig;
    use std::sync::OnceLock;

    /// One shared tiny run for the whole unit-test binary: the pipeline
    /// dominates test wall time, so every module borrows this output
    /// (cloning when a test needs to corrupt it).
    pub fn tiny_output() -> &'static PipelineOutput {
        static OUT: OnceLock<PipelineOutput> = OnceLock::new();
        OUT.get_or_init(|| {
            let dataset = SimConfig::tiny(17).generate();
            Pipeline::new(PipelineConfig::fast()).run(&dataset).unwrap()
        })
    }
}
