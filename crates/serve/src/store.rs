//! Epoch-swapped snapshot publication.
//!
//! Readers call [`SnapshotStore::load`] once per request (or once per
//! micro-batch) and get an `Arc<Snapshot>` pinning one consistent
//! generation for as long as they hold it; a reload calls
//! [`SnapshotStore::swap`], which installs the new snapshot for all
//! *future* loads without pausing in-flight readers — traffic never
//! stops, and a reader never observes a half-swapped state. The
//! generation counter is the epoch: every installed snapshot gets the
//! next one, and the `serve.snapshot_generation` gauge exposes it.
//!
//! The store is a `RwLock<Arc<Snapshot>>` rather than a bare atomic
//! pointer: the lock is held only for the `Arc` clone (load) or the
//! pointer replacement (swap), both allocation-free and nanoseconds
//! long, and the std-only implementation stays `forbid(unsafe_code)`.

use crate::snapshot::Snapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// A shared, hot-swappable handle to the current [`Snapshot`].
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
    generation: AtomicU64,
}

impl SnapshotStore {
    /// Install `snapshot` as generation 1.
    pub fn new(snapshot: Snapshot) -> Self {
        Self {
            current: RwLock::new(Arc::new(snapshot.with_generation(1))),
            generation: AtomicU64::new(1),
        }
    }

    /// The current snapshot. Cheap (one `Arc` clone, no allocation)
    /// and never blocked by a concurrent swap for longer than the
    /// pointer replacement itself.
    pub fn load(&self) -> Arc<Snapshot> {
        // A poisoned lock would mean a reader or swapper panicked while
        // holding it; the guarded value is still a valid Arc, so keep
        // serving rather than propagating the panic.
        let guard = self.current.read().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(&guard)
    }

    /// Install `snapshot` as the next generation and return the handle
    /// now being served. In-flight readers keep their old `Arc`; the
    /// old snapshot is freed when the last of them drops it.
    pub fn swap(&self, snapshot: Snapshot) -> Arc<Snapshot> {
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let fresh = Arc::new(snapshot.with_generation(generation));
        let mut guard = self.current.write().unwrap_or_else(PoisonError::into_inner);
        *guard = Arc::clone(&fresh);
        fresh
    }

    /// The generation currently being served.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{ServeScratch, DEFAULT_THETA};

    #[test]
    fn swap_bumps_generation_and_keeps_old_readers_alive() {
        let output = crate::testutil::tiny_output();
        let store = SnapshotStore::new(Snapshot::build(output, None, DEFAULT_THETA, 0).unwrap());
        assert_eq!(store.generation(), 1);
        let old = store.load();
        assert_eq!(old.generation(), 1);

        let fresh = store.swap(Snapshot::build(output, None, DEFAULT_THETA, 0).unwrap());
        assert_eq!(fresh.generation(), 2);
        assert_eq!(store.generation(), 2);
        assert_eq!(store.load().generation(), 2);

        // The pre-swap reader still holds a fully valid generation-1
        // snapshot and can keep answering queries from it.
        assert_eq!(old.generation(), 1);
        let mut scratch = ServeScratch::new();
        for rec in old.records() {
            assert!(old.lookup(rec.medoid, &mut scratch).is_some());
        }
    }
}
