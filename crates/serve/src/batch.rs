//! The micro-batching admission queue.
//!
//! Connection readers push accepted requests here; worker threads drain
//! them in *micro-batches* of up to `batch_max` items. Batching is what
//! amortizes the per-request constant costs — one [`SnapshotStore`]
//! load, one metrics flush — over every request that arrived while the
//! worker was busy, without adding artificial latency: a worker never
//! waits for a batch to fill, it takes whatever is queued (at least
//! one) the moment it becomes free. Under light load batches are size
//! 1 and latency is unaffected; under heavy load batches grow toward
//! `batch_max` and throughput rises. The observed batch-size histogram
//! (`serve.batch_size`) makes the regime visible.
//!
//! The queue is **bounded**: when arrivals outpace the worker pool the
//! depth stops at `capacity` and [`BatchQueue::try_push`] reports
//! [`Push::Full`] instead of queueing unboundedly. The caller turns
//! that into backpressure — the server answers `{"error":"overloaded"}`
//! and counts `serve.shed` — so overload degrades into typed rejections
//! with bounded memory, never into an ever-growing latency cliff.
//!
//! [`SnapshotStore`]: crate::SnapshotStore

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Outcome of a [`BatchQueue::try_push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Push {
    /// The item was enqueued and a worker will answer it.
    Accepted,
    /// The queue is at capacity; the item was rejected (backpressure —
    /// the caller sheds the request with a typed response).
    Full,
    /// The queue has been closed for shutdown; the item was rejected.
    Closed,
}

/// A blocking bounded MPMC queue with batched draining and shutdown.
#[derive(Debug)]
pub struct BatchQueue<T> {
    inner: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Default for BatchQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BatchQueue<T> {
    /// An open, empty, effectively unbounded queue.
    pub fn new() -> Self {
        Self::bounded(usize::MAX)
    }

    /// An open, empty queue holding at most `capacity` items (at least
    /// one; a zero capacity could never admit anything).
    pub fn bounded(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// This queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue one item. Arrivals during shutdown get [`Push::Closed`];
    /// arrivals past `capacity` get [`Push::Full`] — in both cases the
    /// item is dropped, never silently queued forever.
    pub fn try_push(&self, item: T) -> Push {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return Push::Closed;
        }
        if state.items.len() >= self.capacity {
            return Push::Full;
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Push::Accepted
    }

    /// Block until at least one item is available (or the queue closes),
    /// then move up to `max` items into `out` (cleared first). Returns
    /// the number drained; `0` means the queue is closed **and** empty —
    /// the worker's signal to exit.
    pub fn drain_into(&self, max: usize, out: &mut Vec<T>) -> usize {
        out.clear();
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max.max(1));
                out.extend(state.items.drain(..take));
                // More items may remain for a sibling worker.
                if !state.items.is_empty() {
                    self.ready.notify_one();
                }
                return out.len();
            }
            if state.closed {
                return 0;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue: wake every blocked worker; already-queued items
    /// are still drained, new pushes are rejected.
    pub fn close(&self) {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Items currently queued (racy; for metrics and tests).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// Whether the queue is currently empty (racy; for tests).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn drains_in_batches_up_to_max() {
        let q = BatchQueue::new();
        for i in 0..10 {
            assert_eq!(q.try_push(i), Push::Accepted);
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(4, &mut out), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.drain_into(100, &mut out), 6);
        assert_eq!(out, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn close_wakes_workers_and_rejects_pushes() {
        let q: Arc<BatchQueue<u32>> = Arc::new(BatchQueue::new());
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut total = 0;
                loop {
                    let n = q.drain_into(8, &mut out);
                    if n == 0 {
                        return total;
                    }
                    total += n;
                }
            })
        };
        for i in 0..5 {
            assert_eq!(q.try_push(i), Push::Accepted);
        }
        q.close();
        assert_eq!(
            q.try_push(99),
            Push::Closed,
            "pushes after close must be rejected"
        );
        assert_eq!(worker.join().unwrap(), 5);
    }

    #[test]
    fn bounded_queue_rejects_overflow_and_recovers_after_drain() {
        let q = BatchQueue::bounded(2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.try_push(1u32), Push::Accepted);
        assert_eq!(q.try_push(2), Push::Accepted);
        assert_eq!(q.try_push(3), Push::Full, "third push must shed");
        assert_eq!(q.len(), 2, "rejected items are not queued");

        let mut out = Vec::new();
        assert_eq!(q.drain_into(1, &mut out), 1);
        assert_eq!(q.try_push(4), Push::Accepted, "room frees after a drain");
        assert_eq!(q.drain_into(10, &mut out), 2);
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BatchQueue::bounded(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(7u32), Push::Accepted);
        assert_eq!(q.try_push(8), Push::Full);
    }

    #[test]
    fn zero_max_still_makes_progress() {
        let q = BatchQueue::new();
        q.try_push(7u32);
        let mut out = Vec::new();
        assert_eq!(q.drain_into(0, &mut out), 1);
    }
}
