//! The micro-batching admission queue.
//!
//! Connection readers push accepted requests here; worker threads drain
//! them in *micro-batches* of up to `batch_max` items. Batching is what
//! amortizes the per-request constant costs — one [`SnapshotStore`]
//! load, one metrics flush — over every request that arrived while the
//! worker was busy, without adding artificial latency: a worker never
//! waits for a batch to fill, it takes whatever is queued (at least
//! one) the moment it becomes free. Under light load batches are size
//! 1 and latency is unaffected; under heavy load batches grow toward
//! `batch_max` and throughput rises. The observed batch-size histogram
//! (`serve.batch_size`) makes the regime visible.
//!
//! [`SnapshotStore`]: crate::SnapshotStore

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// A blocking MPMC queue with batched draining and shutdown.
#[derive(Debug)]
pub struct BatchQueue<T> {
    inner: Mutex<QueueState<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Default for BatchQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BatchQueue<T> {
    /// An open, empty queue.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue one item. Returns `false` (dropping the item) when the
    /// queue has been closed — arrivals during shutdown are rejected,
    /// not silently queued forever.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Block until at least one item is available (or the queue closes),
    /// then move up to `max` items into `out` (cleared first). Returns
    /// the number drained; `0` means the queue is closed **and** empty —
    /// the worker's signal to exit.
    pub fn drain_into(&self, max: usize, out: &mut Vec<T>) -> usize {
        out.clear();
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !state.items.is_empty() {
                let take = state.items.len().min(max.max(1));
                out.extend(state.items.drain(..take));
                // More items may remain for a sibling worker.
                if !state.items.is_empty() {
                    self.ready.notify_one();
                }
                return out.len();
            }
            if state.closed {
                return 0;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue: wake every blocked worker; already-queued items
    /// are still drained, new pushes are rejected.
    pub fn close(&self) {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Items currently queued (racy; for metrics and tests).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// Whether the queue is currently empty (racy; for tests).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn drains_in_batches_up_to_max() {
        let q = BatchQueue::new();
        for i in 0..10 {
            assert!(q.push(i));
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(4, &mut out), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.drain_into(100, &mut out), 6);
        assert_eq!(out, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn close_wakes_workers_and_rejects_pushes() {
        let q: Arc<BatchQueue<u32>> = Arc::new(BatchQueue::new());
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut total = 0;
                loop {
                    let n = q.drain_into(8, &mut out);
                    if n == 0 {
                        return total;
                    }
                    total += n;
                }
            })
        };
        for i in 0..5 {
            assert!(q.push(i));
        }
        q.close();
        assert!(!q.push(99), "pushes after close must be rejected");
        assert_eq!(worker.join().unwrap(), 5);
    }

    #[test]
    fn zero_max_still_makes_progress() {
        let q = BatchQueue::new();
        q.push(7u32);
        let mut out = Vec::new();
        assert_eq!(q.drain_into(0, &mut out), 1);
    }
}
