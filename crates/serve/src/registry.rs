//! The connection registry: every reader thread is tracked and joined.
//!
//! PR 7's server detached its connection readers — fine for
//! well-behaved benchmark clients, fatal for production traffic: an
//! idle or slow client pinned a thread forever, nothing bounded the
//! number of live threads, and `Server::shutdown` left readers behind.
//! The registry closes all three holes:
//!
//! * **Admission cap.** [`ConnRegistry::admit`] reaps finished
//!   connections, then either registers the new one or refuses it when
//!   `max_conns` readers are already live — the acceptor turns a
//!   refusal into a typed `{"error":"overloaded"}` shed.
//! * **Tracked handles.** Every reader's `JoinHandle` *and* a clone of
//!   its `TcpStream` live in the registry until the connection is
//!   reaped or drained, so live threads are countable and joinable.
//! * **Prompt drain.** [`ConnRegistry::drain_all`] shuts the sockets down
//!   (`Shutdown::Both` unblocks a reader parked in `read` immediately —
//!   no waiting out a timeout) and joins every reader. After it
//!   returns, no reader thread exists.
//!
//! Readers mark themselves finished through a [`ConnTicket`] drop
//! guard, so even a panicking reader is reaped (and its handle joined)
//! rather than leaking a registry slot.

use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// One tracked connection: the reader's handle, a stream clone for
/// shutdown, and the done flag its ticket raises on exit.
#[derive(Debug)]
struct ConnSlot {
    id: u64,
    stream: TcpStream,
    done: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Held by the reader for its whole life; dropping it ends the
/// connection. The drop shuts the socket down — the registry slot keeps
/// its own `TcpStream` clone alive until reap, so without an explicit
/// shutdown the peer would never see EOF — and raises the done flag so
/// the slot is reaped (joined and removed) on the next admission or
/// drain.
#[derive(Debug)]
pub struct ConnTicket {
    stream: TcpStream,
    done: Arc<AtomicBool>,
}

impl Drop for ConnTicket {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        self.done.store(true, Ordering::Release);
    }
}

/// Registry of live connection reader threads.
#[derive(Debug, Default)]
pub struct ConnRegistry {
    inner: Mutex<RegistryState>,
}

#[derive(Debug, Default)]
struct RegistryState {
    slots: Vec<ConnSlot>,
    next_id: u64,
}

/// A successful admission: the ticket to hand the reader thread, and
/// the slot id to attach its `JoinHandle` to once spawned.
#[derive(Debug)]
pub struct Admission {
    /// Slot id for [`ConnRegistry::attach`].
    pub id: u64,
    /// Drop guard the reader owns for its lifetime.
    pub ticket: ConnTicket,
}

impl ConnRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reap finished connections, then admit `stream` if fewer than
    /// `max_conns` are live. `None` means the connection must be shed.
    ///
    /// The registered clone is used only for
    /// [`drain_all`](Self::drain_all)'s socket shutdown; the caller
    /// keeps the original for I/O.
    pub fn admit(&self, stream: &TcpStream, max_conns: usize) -> Option<Admission> {
        // One clone for the slot (drain_all's shutdown), one for the
        // ticket (close-on-exit). A stream we cannot clone is a stream
        // we could never unblock at drain time; refuse it.
        let (Ok(slot_clone), Ok(ticket_clone)) = (stream.try_clone(), stream.try_clone()) else {
            return None;
        };
        let (admission, finished) = {
            let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            let finished = take_finished(&mut state);
            if state.slots.len() >= max_conns.max(1) {
                (None, finished)
            } else {
                state.next_id += 1;
                let id = state.next_id;
                let done = Arc::new(AtomicBool::new(false));
                state.slots.push(ConnSlot {
                    id,
                    stream: slot_clone,
                    done: Arc::clone(&done),
                    handle: None,
                });
                (
                    Some(Admission {
                        id,
                        ticket: ConnTicket {
                            stream: ticket_clone,
                            done,
                        },
                    }),
                    finished,
                )
            }
        };
        join_finished(finished);
        admission
    }

    /// Attach the reader's `JoinHandle` to its slot. A slot already
    /// reaped (the reader finished before the acceptor got here) just
    /// drops the handle — the thread is already done.
    pub fn attach(&self, id: u64, handle: JoinHandle<()>) {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = state.slots.iter_mut().find(|s| s.id == id) {
            slot.handle = Some(handle);
        }
    }

    /// Live (not yet finished) connections, after reaping.
    pub fn active(&self) -> usize {
        let (live, finished) = {
            let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            let finished = take_finished(&mut state);
            (state.slots.len(), finished)
        };
        join_finished(finished);
        live
    }

    /// Shut every registered socket down and join every reader thread.
    /// After this returns no reader thread spawned through the registry
    /// is alive. Idempotent; new admissions remain possible (callers
    /// stop the acceptor first).
    pub fn drain_all(&self) {
        // Take the slots out under the lock, join outside it: a reader
        // exiting concurrently only touches its ticket's AtomicBool.
        let slots = {
            let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut state.slots)
        };
        for slot in slots {
            // Unblocks a reader parked in read()/write() right now.
            let _ = slot.stream.shutdown(Shutdown::Both);
            if let Some(handle) = slot.handle {
                let _ = handle.join();
            }
        }
    }
}

/// Remove every slot whose reader has finished, returning the removed
/// slots so the caller can join them *outside* the registry lock (even
/// a done thread's join does unwind bookkeeping; nothing blocking ever
/// runs under the lock).
fn take_finished(state: &mut RegistryState) -> Vec<ConnSlot> {
    let mut finished = Vec::new();
    let mut i = 0;
    while i < state.slots.len() {
        if state.slots[i].done.load(Ordering::Acquire) {
            finished.push(state.slots.swap_remove(i));
        } else {
            i += 1;
        }
    }
    finished
}

/// Join reaped readers; their tickets are already dropped, so every
/// join returns immediately.
fn join_finished(finished: Vec<ConnSlot>) {
    for slot in finished {
        if let Some(handle) = slot.handle {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    /// A loopback socket pair for registry bookkeeping tests.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        (client, server_side)
    }

    #[test]
    fn admission_cap_refuses_and_reaping_frees_slots() {
        let reg = ConnRegistry::new();
        let (_c1, s1) = pair();
        let (_c2, s2) = pair();

        let first = reg.admit(&s1, 1).expect("first connection fits");
        assert_eq!(reg.active(), 1);
        assert!(reg.admit(&s2, 1).is_none(), "cap of 1 refuses the second");

        // The reader finishing (ticket drop) frees the slot.
        drop(first.ticket);
        assert_eq!(reg.active(), 0);
        let second = reg.admit(&s2, 1).expect("slot freed after reap");
        drop(second.ticket);
    }

    #[test]
    fn drain_unblocks_and_joins_a_parked_reader() {
        let reg = Arc::new(ConnRegistry::new());
        let (mut client, server_side) = pair();
        let admission = reg.admit(&server_side, 8).expect("admit");
        let handle = std::thread::spawn(move || {
            let _ticket = admission.ticket;
            // Park in a blocking read with no timeout; only the
            // registry's socket shutdown can unblock this.
            let mut buf = [0u8; 16];
            use std::io::Read;
            let mut stream = server_side;
            while let Ok(n) = stream.read(&mut buf) {
                if n == 0 {
                    return;
                }
            }
        });
        reg.attach(admission.id, handle);
        assert_eq!(reg.active(), 1);

        reg.drain_all();
        assert_eq!(reg.active(), 0, "drain joins every reader");
        // The peer observes the shutdown as EOF/reset rather than a
        // silent hang.
        let _ = client.write_all(b"x");
    }

    #[test]
    fn ticket_drop_sends_eof_despite_the_slot_clone() {
        use std::io::Read;
        let reg = ConnRegistry::new();
        let (mut client, server_side) = pair();
        let admission = reg.admit(&server_side, 4).expect("admit");
        // The slot still holds a live clone; only the ticket's shutdown
        // can make the peer see the connection end.
        drop(server_side);
        drop(admission.ticket);
        let mut buf = [0u8; 8];
        assert_eq!(client.read(&mut buf).unwrap_or(0), 0, "peer sees EOF");
    }

    #[test]
    fn attach_after_finish_is_harmless() {
        let reg = ConnRegistry::new();
        let (_c, s) = pair();
        let admission = reg.admit(&s, 4).expect("admit");
        let id = admission.id;
        let handle = std::thread::spawn(move || drop(admission.ticket));
        // Let the reader finish (and possibly get reaped) first.
        while reg.active() != 0 {
            std::thread::yield_now();
        }
        reg.attach(id, handle); // slot may be gone; must not panic
        reg.drain_all();
    }
}
