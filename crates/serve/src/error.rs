//! The serving layer's error taxonomy.

use meme_core::pipeline::PipelineError;
use meme_core::runner::CheckpointDefect;
use std::fmt;

/// Why the serving layer could not load an artifact, answer a request,
/// or keep a server running. Follows the workspace error convention
/// (DESIGN.md §6): callers match on variants to decide
/// retry-vs-report-vs-abort, and the CLI maps variants onto the shared
/// exit-code contract.
#[derive(Debug)]
pub enum ServeError {
    /// An artifact or socket could not be read or written.
    Io {
        /// What was being accessed.
        target: String,
        /// The underlying OS error, rendered.
        detail: String,
    },
    /// The artifact file is a checkpoint envelope, but a defective one.
    Checkpoint(CheckpointDefect),
    /// The artifact decoded, but its contents are inconsistent (the
    /// same defects [`PipelineError::CheckpointCorrupt`] guards
    /// against: out-of-range cluster ids, dangling entry ids, …).
    Pipeline(PipelineError),
    /// The artifact file is neither a `PipelineOutput` JSON export nor
    /// a checkpoint envelope.
    UnrecognizedArtifact {
        /// The file that failed to parse either way.
        path: String,
        /// Why the JSON interpretation failed.
        detail: String,
    },
    /// A client sent a line the protocol cannot interpret.
    Protocol {
        /// What was wrong with the request.
        detail: String,
    },
    /// An influence table was supplied whose row count does not match
    /// the artifact's annotated-cluster count.
    InfluenceShape {
        /// Rows supplied.
        rows: usize,
        /// Annotated clusters in the artifact.
        annotated: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { target, detail } => write!(f, "cannot access {target}: {detail}"),
            Self::Checkpoint(d) => write!(f, "artifact checkpoint is defective: {d}"),
            Self::Pipeline(e) => write!(f, "artifact is inconsistent: {e}"),
            Self::UnrecognizedArtifact { path, detail } => write!(
                f,
                "{path} is neither a run artifact (JSON) nor a checkpoint envelope: {detail}"
            ),
            Self::Protocol { detail } => write!(f, "bad request: {detail}"),
            Self::InfluenceShape { rows, annotated } => write!(
                f,
                "influence table has {rows} rows for {annotated} annotated clusters"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        Self::Pipeline(e)
    }
}

impl From<CheckpointDefect> for ServeError {
    fn from(d: CheckpointDefect) -> Self {
        Self::Checkpoint(d)
    }
}
