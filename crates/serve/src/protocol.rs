//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order —
//! dependency-free and scriptable with `nc`. Requests:
//!
//! ```text
//! {"hash": "55352b0b8d8b5b53"}                  → lookup (shorthand)
//! {"op": "lookup", "hash": "55352b0b8d8b5b53"}  → lookup
//! {"op": "stats"}                               → server statistics
//! {"op": "reload", "artifact": "run.json"}      → hot-swap (when enabled)
//! ```
//!
//! The hash may also be a raw integer (`{"hash": 6139362340362762115}`).
//! Responses are single-line JSON objects; lookups carry `found`,
//! `cluster`, `distance`, the representative entry (`meme`, `entry`,
//! `category`), the per-cluster `influence` matrix when the snapshot
//! has one, and the snapshot `generation` that answered. Malformed
//! lines get `{"error": …}` and the connection stays open — one bad
//! request must not sink a pipelined batch.
//!
//! Responses are rendered into a caller-owned `String`, so workers
//! reuse one buffer across a whole micro-batch.

use crate::error::ServeError;
use crate::snapshot::{LookupHit, Snapshot};
use meme_phash::PHash;
use serde::Value;
use std::fmt::Write as _;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Match one hash against the annotated medoids.
    Lookup {
        /// The query hash.
        hash: PHash,
    },
    /// Report generation / meme count / query count.
    Stats,
    /// Load a new artifact and swap it in.
    Reload {
        /// Path to the artifact file, resolved server-side.
        artifact: String,
    },
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let doc: Value = serde_json::from_str(line).map_err(|e| ServeError::Protocol {
        detail: format!("not a JSON object: {e}"),
    })?;
    let obj = doc.as_object().ok_or_else(|| ServeError::Protocol {
        detail: "request is not a JSON object".to_string(),
    })?;
    let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let op = match field("op") {
        Some(v) => v.as_str().ok_or_else(|| ServeError::Protocol {
            detail: "`op` is not a string".to_string(),
        })?,
        None => "lookup",
    };
    match op {
        "lookup" => {
            let hash = field("hash").ok_or_else(|| ServeError::Protocol {
                detail: "lookup needs a `hash`".to_string(),
            })?;
            let hash = parse_hash(hash)?;
            Ok(Request::Lookup { hash })
        }
        "stats" => Ok(Request::Stats),
        "reload" => {
            let artifact =
                field("artifact")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ServeError::Protocol {
                        detail: "reload needs a string `artifact` path".to_string(),
                    })?;
            Ok(Request::Reload {
                artifact: artifact.to_string(),
            })
        }
        other => Err(ServeError::Protocol {
            detail: format!("unknown op `{other}`"),
        }),
    }
}

/// A hash is either 16 hex digits (the paper's rendering) or a raw
/// non-negative integer.
fn parse_hash(v: &Value) -> Result<PHash, ServeError> {
    match v {
        Value::String(s) => s.parse().map_err(|e| ServeError::Protocol {
            detail: format!("bad hash {s:?}: {e}"),
        }),
        Value::U64(bits) => Ok(PHash(*bits)),
        _ => Err(ServeError::Protocol {
            detail: "`hash` must be a hex string or non-negative integer".to_string(),
        }),
    }
}

/// Append a minimally escaped JSON string literal (KYM names are plain
/// text, but the protocol must never emit an unparseable line).
fn push_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Render a hit response into `buf` (cleared first).
pub fn render_hit(buf: &mut String, query: PHash, hit: &LookupHit, snapshot: &Snapshot) {
    buf.clear();
    let _ = write!(
        buf,
        "{{\"found\":true,\"hash\":\"{query}\",\"cluster\":{},\"distance\":{},\"entry\":{},",
        hit.cluster, hit.distance, hit.entry_id
    );
    let (name, category) = match snapshot.record(hit.slot) {
        Some(r) => (r.name.as_str(), r.category),
        None => ("", ""),
    };
    buf.push_str("\"meme\":");
    push_json_str(buf, name);
    buf.push_str(",\"category\":");
    push_json_str(buf, category);
    if let Some(m) = snapshot.influence_row(hit.slot) {
        buf.push_str(",\"influence\":[");
        for src in 0..m.k() {
            if src > 0 {
                buf.push(',');
            }
            buf.push('[');
            for dst in 0..m.k() {
                if dst > 0 {
                    buf.push(',');
                }
                let _ = write!(buf, "{}", m.count(src, dst));
            }
            buf.push(']');
        }
        buf.push(']');
    }
    let _ = write!(buf, ",\"generation\":{}}}", snapshot.generation());
}

/// Render a miss response into `buf` (cleared first).
pub fn render_miss(buf: &mut String, query: PHash, generation: u64) {
    buf.clear();
    let _ = write!(
        buf,
        "{{\"found\":false,\"hash\":\"{query}\",\"generation\":{generation}}}"
    );
}

/// Render a stats response into `buf` (cleared first).
pub fn render_stats(buf: &mut String, generation: u64, memes: usize, queries: u64) {
    buf.clear();
    let _ = write!(
        buf,
        "{{\"generation\":{generation},\"memes\":{memes},\"queries\":{queries}}}"
    );
}

/// Render a reload acknowledgement into `buf` (cleared first).
pub fn render_reloaded(buf: &mut String, generation: u64, memes: usize) {
    buf.clear();
    let _ = write!(
        buf,
        "{{\"reloaded\":true,\"generation\":{generation},\"memes\":{memes}}}"
    );
}

/// Render an error response into `buf` (cleared first).
pub fn render_error(buf: &mut String, detail: &str) {
    buf.clear();
    buf.push_str("{\"error\":");
    push_json_str(buf, detail);
    buf.push('}');
}

/// The load-shedding rejection, byte-for-byte: sent at accept time when
/// the connection cap is reached and at admission time when the batch
/// queue is full. Clients key on the exact string.
pub const OVERLOADED: &str = "{\"error\":\"overloaded\"}";

/// The idle/slow-read rejection, byte-for-byte: sent when a connection
/// produces no complete request line within its read budget (an idle
/// holder or a slow-loris trickle), after which the connection closes.
pub const READ_TIMEOUT: &str = "{\"error\":\"read timeout\"}";

/// Render the typed shed response into `buf` (cleared first).
pub fn render_overloaded(buf: &mut String) {
    buf.clear();
    buf.push_str(OVERLOADED);
}

/// Render the typed read-timeout response into `buf` (cleared first).
pub fn render_timeout(buf: &mut String) {
    buf.clear();
    buf.push_str(READ_TIMEOUT);
}

/// Render the typed oversized-line rejection into `buf` (cleared
/// first): the request line exceeded `max_line_bytes` before a newline
/// arrived, and the connection closes without ever buffering the rest.
pub fn render_line_too_long(buf: &mut String, max_line_bytes: usize) {
    buf.clear();
    let _ = write!(
        buf,
        "{{\"error\":\"request line exceeds {max_line_bytes} bytes\"}}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_request_forms() {
        assert_eq!(
            parse_request("{\"hash\": \"55352b0b8d8b5b53\"}").unwrap(),
            Request::Lookup {
                hash: "55352b0b8d8b5b53".parse().unwrap()
            }
        );
        assert_eq!(
            parse_request("{\"op\": \"lookup\", \"hash\": 7}").unwrap(),
            Request::Lookup { hash: PHash(7) }
        );
        assert_eq!(
            parse_request("{\"op\": \"stats\"}").unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request("{\"op\": \"reload\", \"artifact\": \"run.json\"}").unwrap(),
            Request::Reload {
                artifact: "run.json".to_string()
            }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            "[1]",
            "{}",
            "{\"hash\": \"zz\"}",
            "{\"hash\": -3}",
            "{\"op\": \"evict\"}",
            "{\"op\": \"reload\"}",
            "{\"op\": 9}",
        ] {
            assert!(
                matches!(parse_request(bad), Err(ServeError::Protocol { .. })),
                "{bad} should be a protocol error"
            );
        }
    }

    #[test]
    fn responses_are_valid_json_lines() {
        let mut buf = String::new();
        render_miss(&mut buf, PHash(3), 4);
        assert!(serde_json::from_str::<Value>(&buf).is_ok(), "{buf}");
        assert!(buf.contains("\"found\":false"));
        render_stats(&mut buf, 1, 2, 3);
        assert!(serde_json::from_str::<Value>(&buf).is_ok(), "{buf}");
        render_reloaded(&mut buf, 2, 9);
        assert!(serde_json::from_str::<Value>(&buf).is_ok(), "{buf}");
        render_error(&mut buf, "bad \"quoted\" thing\n");
        assert!(serde_json::from_str::<Value>(&buf).is_ok(), "{buf}");
    }

    #[test]
    fn lifecycle_rejections_are_valid_json_and_stable() {
        let mut buf = String::new();
        render_overloaded(&mut buf);
        assert_eq!(buf, OVERLOADED);
        assert!(serde_json::from_str::<Value>(&buf).is_ok(), "{buf}");
        render_timeout(&mut buf);
        assert_eq!(buf, READ_TIMEOUT);
        assert!(serde_json::from_str::<Value>(&buf).is_ok(), "{buf}");
        render_line_too_long(&mut buf, 4096);
        assert!(buf.contains("4096 bytes"), "{buf}");
        assert!(serde_json::from_str::<Value>(&buf).is_ok(), "{buf}");
    }
}
