//! Loading completed runs from disk.
//!
//! The serving layer accepts both artifact formats the pipeline writes:
//! the `PipelineOutput` JSON export (`memes run --out run.json`) and
//! the checksummed v2 checkpoint envelope (`memes run --checkpoint
//! ckpt.json`, once every stage has completed). The format is sniffed
//! from the leading bytes — envelopes announce themselves with the
//! `MEMES-CKPT` magic — so callers just hand over a path.

use crate::error::ServeError;
use meme_core::pipeline::PipelineOutput;
use meme_core::runner::decode_checkpoint;
use std::path::Path;

/// The checkpoint envelope magic (`MEMES-CKPT v2 …`); see DESIGN.md §11.
const CKPT_MAGIC: &[u8] = b"MEMES-CKPT";

/// Read a completed run from `path`, in either artifact format.
///
/// Envelope files are CRC-verified and schema-checked by the runner's
/// [`decode_checkpoint`]; torn or stale files surface as
/// [`ServeError::Checkpoint`], incomplete or inconsistent runs as
/// [`ServeError::Pipeline`], and files that are neither format as
/// [`ServeError::UnrecognizedArtifact`].
pub fn load_output(path: &Path) -> Result<PipelineOutput, ServeError> {
    let bytes = std::fs::read(path).map_err(|e| ServeError::Io {
        target: path.display().to_string(),
        detail: e.to_string(),
    })?;
    if bytes.starts_with(CKPT_MAGIC) {
        let ckpt = decode_checkpoint(&bytes)?;
        return Ok(ckpt.into_completed_output()?);
    }
    let text = String::from_utf8(bytes).map_err(|e| ServeError::UnrecognizedArtifact {
        path: path.display().to_string(),
        detail: format!("not UTF-8: {e}"),
    })?;
    PipelineOutput::from_json(&text).map_err(|e| ServeError::UnrecognizedArtifact {
        path: path.display().to_string(),
        detail: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_core::pipeline::{Pipeline, PipelineConfig};
    use meme_core::runner::{Checkpoint, PipelineRunner};
    use meme_simweb::SimConfig;

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "meme-serve-artifact-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_json_artifact_and_rejects_garbage() {
        let output = crate::testutil::tiny_output();
        let dir = tempdir();
        let json_path = dir.join("run.json");
        std::fs::write(&json_path, output.to_json()).unwrap();
        let loaded = load_output(&json_path).unwrap();
        assert_eq!(loaded.medoid_hashes, output.medoid_hashes);
        assert_eq!(loaded.occurrences, output.occurrences);

        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not an artifact at all").unwrap();
        assert!(matches!(
            load_output(&garbage),
            Err(ServeError::UnrecognizedArtifact { .. })
        ));
        assert!(matches!(
            load_output(&dir.join("missing.json")),
            Err(ServeError::Io { .. })
        ));
    }

    #[test]
    fn loads_completed_checkpoint_and_rejects_partial_and_torn() {
        let dataset = SimConfig::tiny(23).generate();
        let config = PipelineConfig::fast();
        let dir = tempdir();
        let ckpt_path = dir.join("run.ckpt");
        let runner = PipelineRunner::new(Pipeline::new(config.clone())).with_checkpoint(&ckpt_path);
        let direct = runner.run(&dataset).unwrap().expect_complete();
        let loaded = load_output(&ckpt_path).unwrap();
        assert_eq!(loaded.medoid_hashes, direct.medoid_hashes);
        assert_eq!(loaded.occurrences, direct.occurrences);

        // A fresh (no stages completed) checkpoint is typed, not a panic.
        let fresh = Checkpoint::fresh(&dataset, config);
        let partial_path = dir.join("partial.ckpt");
        std::fs::write(&partial_path, meme_core::runner::encode_checkpoint(&fresh)).unwrap();
        assert!(matches!(
            load_output(&partial_path),
            Err(ServeError::Pipeline(_))
        ));

        // Truncate the real envelope: torn → typed checkpoint defect.
        let bytes = std::fs::read(&ckpt_path).unwrap();
        let torn_path = dir.join("torn.ckpt");
        std::fs::write(&torn_path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            load_output(&torn_path),
            Err(ServeError::Checkpoint(_))
        ));
    }
}
