//! The TCP query server.
//!
//! Dependency-free networking on `std::net`: an acceptor thread hands
//! each connection to its own reader thread; readers parse request
//! lines and push lookup jobs onto the shared [`BatchQueue`]; a fixed
//! pool of worker threads drains the queue in micro-batches, resolves
//! each job against **one** [`SnapshotStore::load`] per batch, and
//! replies through the job's channel. Control requests (`stats`,
//! `reload`) are rare and run inline on the reader thread, so the hot
//! path stays a pure hash-in/record-out pipeline.
//!
//! Shutdown is cooperative and panic-free: [`Server::shutdown`] raises
//! the stop flag, unblocks the acceptor with a loopback connection,
//! closes the queue (workers drain what is left, then exit), and joins
//! the acceptor and workers. Connection readers are detached — they
//! exit when their client hangs up or when a push is rejected by the
//! closed queue.

use crate::artifact::load_output;
use crate::batch::BatchQueue;
use crate::error::ServeError;
use crate::protocol::{
    parse_request, render_error, render_hit, render_miss, render_reloaded, render_stats, Request,
};
use crate::snapshot::{ServeScratch, Snapshot, DEFAULT_THETA};
use crate::store::SnapshotStore;
use meme_metrics::{Metrics, Span, BATCH_SIZE_BUCKETS, LATENCY_BUCKETS_US};
use meme_phash::PHash;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// How a [`Server`] listens and schedules work.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Lookup worker threads draining the admission queue.
    pub workers: usize,
    /// Largest micro-batch a worker takes in one drain.
    pub batch_max: usize,
    /// Whether clients may `reload` artifacts into the store.
    pub allow_reload: bool,
    /// Association threshold for snapshots built by `reload`.
    pub theta: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch_max: 32,
            allow_reload: false,
            theta: DEFAULT_THETA,
        }
    }
}

/// One admitted lookup: the query, its latency span (started at
/// admission, finished when the reply is rendered), and the channel
/// back to the connection that asked.
struct Job {
    hash: PHash,
    span: Span,
    reply: mpsc::Sender<String>,
}

/// Everything a connection reader needs, bundled for the spawn.
struct ConnShared {
    store: Arc<SnapshotStore>,
    queue: Arc<BatchQueue<Job>>,
    metrics: Metrics,
    queries: Arc<AtomicU64>,
    allow_reload: bool,
    theta: u32,
}

/// A running query server. Dropping it shuts it down.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    store: Arc<SnapshotStore>,
    queue: Arc<BatchQueue<Job>>,
    stop: Arc<AtomicBool>,
    queries: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("hash", &self.hash).finish()
    }
}

impl Server {
    /// Bind, spawn the worker pool and acceptor, and start serving
    /// `store`'s current snapshot.
    pub fn start(
        store: Arc<SnapshotStore>,
        config: ServerConfig,
        metrics: Metrics,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| ServeError::Io {
            target: config.addr.clone(),
            detail: e.to_string(),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::Io {
            target: config.addr.clone(),
            detail: e.to_string(),
        })?;
        let queue: Arc<BatchQueue<Job>> = Arc::new(BatchQueue::new());
        let stop = Arc::new(AtomicBool::new(false));
        let queries = Arc::new(AtomicU64::new(0));
        metrics.gauge("serve.snapshot_generation", store.generation() as f64);

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let store = Arc::clone(&store);
                let metrics = metrics.clone();
                let batch_max = config.batch_max.max(1);
                std::thread::spawn(move || worker_loop(&queue, &store, &metrics, batch_max))
            })
            .collect();

        let acceptor = {
            let shared = ConnShared {
                store: Arc::clone(&store),
                queue: Arc::clone(&queue),
                metrics,
                queries: Arc::clone(&queries),
                allow_reload: config.allow_reload,
                theta: config.theta,
            };
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &shared, &stop))
        };

        Ok(Server {
            local_addr,
            store,
            queue,
            stop,
            queries,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The snapshot store being served (for out-of-band swaps).
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Lookup requests admitted so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain queued work, and join the threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return; // already shut down
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway loopback connection; if the
        // listener is somehow unreachable the acceptor is already dead.
        let _ = TcpStream::connect(self.local_addr);
        let _ = acceptor.join();
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn accept_loop(listener: &TcpListener, shared: &ConnShared, stop: &Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else {
            continue; // transient accept failure; keep serving
        };
        // One-line requests and responses are far below the MSS; Nagle
        // plus delayed ACKs would stall every round trip ~40ms.
        let _ = stream.set_nodelay(true);
        let conn_shared = ConnShared {
            store: Arc::clone(&shared.store),
            queue: Arc::clone(&shared.queue),
            metrics: shared.metrics.clone(),
            queries: Arc::clone(&shared.queries),
            allow_reload: shared.allow_reload,
            theta: shared.theta,
        };
        // Detached: exits on client hangup or queue close.
        std::thread::spawn(move || connection_loop(stream, &conn_shared));
    }
}

fn connection_loop(stream: TcpStream, shared: &ConnShared) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let mut line = String::new();
    let mut buf = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // EOF or connection error
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let response_ready = match parse_request(line.trim_end()) {
            Ok(Request::Lookup { hash }) => {
                shared.queries.fetch_add(1, Ordering::Relaxed);
                shared.metrics.inc("serve.queries");
                let job = Job {
                    hash,
                    span: shared.metrics.span("serve/query"),
                    reply: reply_tx.clone(),
                };
                if !shared.queue.push(job) {
                    return; // shutting down; drop the connection
                }
                match reply_rx.recv() {
                    Ok(resp) => {
                        buf = resp;
                        true
                    }
                    Err(_) => return, // workers gone mid-request
                }
            }
            Ok(Request::Stats) => {
                let snap = shared.store.load();
                render_stats(
                    &mut buf,
                    snap.generation(),
                    snap.len(),
                    shared.queries.load(Ordering::Relaxed),
                );
                true
            }
            Ok(Request::Reload { artifact }) => {
                handle_reload(&mut buf, shared, &artifact);
                true
            }
            Err(e) => {
                render_error(&mut buf, &e.to_string());
                true
            }
        };
        if response_ready {
            buf.push('\n');
            if writer.write_all(buf.as_bytes()).is_err() || writer.flush().is_err() {
                return;
            }
        }
    }
}

/// Load `artifact`, build a snapshot at the server's θ, and swap it in.
///
/// Reloaded snapshots carry no influence profile: influence estimation
/// needs the event streams of the original dataset, which the artifact
/// does not embed. `memes serve` recomputes it at startup when the
/// dataset is available; a protocol reload trades that column for not
/// having to restart.
fn handle_reload(buf: &mut String, shared: &ConnShared, artifact: &str) {
    if !shared.allow_reload {
        render_error(buf, "reload is disabled (start the server with --reload)");
        return;
    }
    let swapped = load_output(Path::new(artifact))
        .and_then(|output| Snapshot::build(&output, None, shared.theta, 0))
        .map(|snap| shared.store.swap(snap));
    match swapped {
        Ok(snap) => {
            shared
                .metrics
                .gauge("serve.snapshot_generation", snap.generation() as f64);
            shared.metrics.inc("serve.reloads");
            render_reloaded(buf, snap.generation(), snap.len());
        }
        Err(e) => render_error(buf, &e.to_string()),
    }
}

fn worker_loop(
    queue: &BatchQueue<Job>,
    store: &SnapshotStore,
    metrics: &Metrics,
    batch_max: usize,
) {
    let mut jobs: Vec<Job> = Vec::new();
    let mut scratch = ServeScratch::new();
    let mut buf = String::new();
    loop {
        let n = queue.drain_into(batch_max, &mut jobs);
        if n == 0 {
            return; // queue closed and drained
        }
        // One store load pins one generation for the whole micro-batch:
        // that is both the amortization and the consistency guarantee
        // (a batch never straddles a swap).
        let snap = store.load();
        metrics.observe("serve.batch_size", &BATCH_SIZE_BUCKETS, n as f64);
        metrics.gauge("serve.snapshot_generation", snap.generation() as f64);
        for job in jobs.drain(..) {
            match snap.lookup(job.hash, &mut scratch) {
                Some(hit) => {
                    metrics.inc("serve.hits");
                    render_hit(&mut buf, job.hash, &hit, &snap);
                }
                None => {
                    metrics.inc("serve.misses");
                    render_miss(&mut buf, job.hash, snap.generation());
                }
            }
            let secs = job.span.finish();
            metrics.observe("serve.latency_us", &LATENCY_BUCKETS_US, secs * 1e6);
            // A dead receiver means the client hung up before the
            // answer; nothing to do but move on.
            let _ = job.reply.send(buf.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use serde::Value;

    fn tiny_store() -> (Arc<SnapshotStore>, Vec<PHash>) {
        let output = crate::testutil::tiny_output();
        let snap = Snapshot::build(output, None, DEFAULT_THETA, 0).unwrap();
        let medoids = snap.records().iter().map(|r| r.medoid).collect();
        (Arc::new(SnapshotStore::new(snap)), medoids)
    }

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> Value {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        serde_json::from_str(&line).unwrap()
    }

    fn field<'a>(doc: &'a Value, name: &str) -> &'a Value {
        doc.as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap()
    }

    #[test]
    fn serves_lookups_stats_and_errors_over_tcp() {
        let (store, medoids) = tiny_store();
        let server = Server::start(store, ServerConfig::default(), Metrics::enabled()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        // Every medoid resolves to a hit at distance 0.
        for m in &medoids {
            let doc = roundtrip(&mut stream, &mut reader, &format!("{{\"hash\":\"{m}\"}}"));
            assert_eq!(field(&doc, "found"), &Value::Bool(true), "{m}");
            assert_eq!(field(&doc, "distance"), &Value::U64(0));
        }
        // A far hash misses (tiny runs still give wide Hamming gaps).
        let far = PHash(medoids[0].0 ^ 0xFFFF_FFFF_FFFF_FFFF);
        let doc = roundtrip(&mut stream, &mut reader, &format!("{{\"hash\":\"{far}\"}}"));
        if field(&doc, "found") == &Value::Bool(true) {
            assert!(
                matches!(field(&doc, "distance"), Value::U64(d) if *d <= u64::from(DEFAULT_THETA))
            );
        }
        // Stats reflect the admitted queries; bad lines keep the
        // connection open.
        let doc = roundtrip(&mut stream, &mut reader, "{\"op\":\"stats\"}");
        assert_eq!(
            field(&doc, "queries"),
            &Value::U64(medoids.len() as u64 + 1)
        );
        let doc = roundtrip(&mut stream, &mut reader, "{\"op\":\"nope\"}");
        assert!(matches!(field(&doc, "error"), Value::String(_)));
        let doc = roundtrip(
            &mut stream,
            &mut reader,
            "{\"op\":\"reload\",\"artifact\":\"x\"}",
        );
        assert!(matches!(field(&doc, "error"), Value::String(_)));
        // The connection still works after every error.
        let m = medoids[0];
        let doc = roundtrip(&mut stream, &mut reader, &format!("{{\"hash\":\"{m}\"}}"));
        assert_eq!(field(&doc, "found"), &Value::Bool(true));

        drop(stream);
        drop(reader);
        server.shutdown();
    }

    #[test]
    fn reload_swaps_generation_without_dropping_connections() {
        let (store, medoids) = tiny_store();
        let dir = std::env::temp_dir().join(format!("meme-serve-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = dir.join("run.json");
        std::fs::write(&artifact, crate::testutil::tiny_output().to_json()).unwrap();

        let config = ServerConfig {
            allow_reload: true,
            ..ServerConfig::default()
        };
        let server = Server::start(store, config, Metrics::disabled()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        let m = medoids[0];
        let before = roundtrip(&mut stream, &mut reader, &format!("{{\"hash\":\"{m}\"}}"));
        assert_eq!(field(&before, "generation"), &Value::U64(1));
        let req = format!(
            "{{\"op\":\"reload\",\"artifact\":\"{}\"}}",
            artifact.display()
        );
        let doc = roundtrip(&mut stream, &mut reader, &req);
        assert_eq!(field(&doc, "reloaded"), &Value::Bool(true));
        assert_eq!(field(&doc, "generation"), &Value::U64(2));
        // The same connection keeps answering, now from generation 2.
        let after = roundtrip(&mut stream, &mut reader, &format!("{{\"hash\":\"{m}\"}}"));
        assert_eq!(field(&after, "found"), &Value::Bool(true));
        assert_eq!(field(&after, "generation"), &Value::U64(2));

        drop(stream);
        drop(reader);
        server.shutdown();
    }
}
