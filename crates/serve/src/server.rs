//! The TCP query server.
//!
//! Dependency-free networking on `std::net`: an acceptor thread hands
//! each connection to its own reader thread; readers parse request
//! lines and push lookup jobs onto the shared [`BatchQueue`]; a fixed
//! pool of worker threads drains the queue in micro-batches, resolves
//! each job against **one** [`SnapshotStore::load`] per batch, and
//! replies through the job's channel. Control requests (`stats`,
//! `reload`) are rare and run inline on the reader thread, so the hot
//! path stays a pure hash-in/record-out pipeline.
//!
//! The connection lifecycle is hardened against hostile traffic
//! (DESIGN.md §12 "Connection lifecycle and overload"):
//!
//! * every reader thread is registered in a [`ConnRegistry`] and
//!   joined — never detached;
//! * accepts past `max_conns` are shed with the typed
//!   [`OVERLOADED`](crate::protocol::OVERLOADED) response
//!   (`serve.shed`), so thread count is bounded by cap + workers;
//! * a request line must complete within `read_timeout_ms` measured
//!   from the moment the reader starts waiting for it — a socket read
//!   timeout alone only bounds the gap between bytes, which a
//!   slow-loris trickle resets forever — and may not exceed
//!   `max_line_bytes`, so reader memory is bounded too;
//! * the admission queue is bounded (`queue_max`); arrivals past
//!   capacity are shed typed rather than queued unboundedly.
//!
//! Shutdown is cooperative, panic-free, and complete:
//! [`Server::shutdown`] raises the stop flag, unblocks the acceptor
//! with a loopback connection and joins it, drains the registry
//! (socket shutdown unblocks parked readers instantly; every reader is
//! joined), closes the queue (workers drain what is left, then exit),
//! and joins the workers. No detached threads remain.

use crate::artifact::load_output;
use crate::batch::{BatchQueue, Push};
use crate::error::ServeError;
use crate::protocol::{
    parse_request, render_error, render_hit, render_line_too_long, render_miss, render_overloaded,
    render_reloaded, render_stats, render_timeout, Request,
};
use crate::registry::ConnRegistry;
use crate::snapshot::{ServeScratch, Snapshot, DEFAULT_THETA};
use crate::store::SnapshotStore;
use meme_metrics::{Deadline, Metrics, Span, BATCH_SIZE_BUCKETS, LATENCY_BUCKETS_US};
use meme_phash::PHash;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// How a [`Server`] listens, schedules work, and bounds its clients.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Lookup worker threads draining the admission queue.
    pub workers: usize,
    /// Largest micro-batch a worker takes in one drain.
    pub batch_max: usize,
    /// Whether clients may `reload` artifacts into the store.
    pub allow_reload: bool,
    /// Association threshold for snapshots built by `reload`.
    pub theta: u32,
    /// Most connections served concurrently; accepts past the cap are
    /// shed with the typed `{"error":"overloaded"}` response.
    pub max_conns: usize,
    /// Budget, in milliseconds, for one complete request line — from
    /// the reader starting to wait for it to its terminating newline.
    /// Idle holders and slow-loris trickles both exhaust it and get the
    /// typed `{"error":"read timeout"}` response before the close.
    pub read_timeout_ms: u64,
    /// Longest accepted request line; a newline-free stream is rejected
    /// (typed) and disconnected once it exceeds this, so one client can
    /// never grow a reader buffer without bound.
    pub max_line_bytes: usize,
    /// Admission-queue capacity; arrivals past it are shed typed
    /// (backpressure) instead of queueing unboundedly.
    pub queue_max: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch_max: 32,
            allow_reload: false,
            theta: DEFAULT_THETA,
            max_conns: 64,
            read_timeout_ms: 5_000,
            max_line_bytes: 64 * 1024,
            queue_max: 1024,
        }
    }
}

/// One admitted lookup: the query, its latency span (started at
/// admission, finished when the reply is rendered), and the channel
/// back to the connection that asked.
struct Job {
    hash: PHash,
    span: Span,
    reply: mpsc::Sender<String>,
}

/// Everything a connection reader needs, bundled for the spawn.
struct ConnShared {
    store: Arc<SnapshotStore>,
    queue: Arc<BatchQueue<Job>>,
    metrics: Metrics,
    queries: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    allow_reload: bool,
    theta: u32,
    read_timeout: Duration,
    max_line_bytes: usize,
}

impl ConnShared {
    fn clone_for_conn(&self) -> ConnShared {
        ConnShared {
            store: Arc::clone(&self.store),
            queue: Arc::clone(&self.queue),
            metrics: self.metrics.clone(),
            queries: Arc::clone(&self.queries),
            stop: Arc::clone(&self.stop),
            allow_reload: self.allow_reload,
            theta: self.theta,
            read_timeout: self.read_timeout,
            max_line_bytes: self.max_line_bytes,
        }
    }
}

/// A running query server. Dropping it shuts it down.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    store: Arc<SnapshotStore>,
    queue: Arc<BatchQueue<Job>>,
    registry: Arc<ConnRegistry>,
    stop: Arc<AtomicBool>,
    queries: Arc<AtomicU64>,
    metrics: Metrics,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("hash", &self.hash).finish()
    }
}

impl Server {
    /// Bind, spawn the worker pool and acceptor, and start serving
    /// `store`'s current snapshot.
    pub fn start(
        store: Arc<SnapshotStore>,
        config: ServerConfig,
        metrics: Metrics,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| ServeError::Io {
            target: config.addr.clone(),
            detail: e.to_string(),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::Io {
            target: config.addr.clone(),
            detail: e.to_string(),
        })?;
        let queue: Arc<BatchQueue<Job>> = Arc::new(BatchQueue::bounded(config.queue_max));
        let registry = Arc::new(ConnRegistry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let queries = Arc::new(AtomicU64::new(0));
        metrics.gauge("serve.snapshot_generation", store.generation() as f64);
        metrics.gauge("serve.connections", 0.0);

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let store = Arc::clone(&store);
                let metrics = metrics.clone();
                let batch_max = config.batch_max.max(1);
                std::thread::spawn(move || worker_loop(&queue, &store, &metrics, batch_max))
            })
            .collect();

        let acceptor = {
            let shared = ConnShared {
                store: Arc::clone(&store),
                queue: Arc::clone(&queue),
                metrics: metrics.clone(),
                queries: Arc::clone(&queries),
                stop: Arc::clone(&stop),
                allow_reload: config.allow_reload,
                theta: config.theta,
                read_timeout: Duration::from_millis(config.read_timeout_ms.max(1)),
                max_line_bytes: config.max_line_bytes.max(1),
            };
            let registry = Arc::clone(&registry);
            let max_conns = config.max_conns;
            std::thread::spawn(move || accept_loop(&listener, &shared, &registry, max_conns))
        };

        Ok(Server {
            local_addr,
            store,
            queue,
            registry,
            stop,
            queries,
            metrics,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The snapshot store being served (for out-of-band swaps).
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// Lookup requests admitted so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Connections currently live (after reaping finished readers).
    pub fn active_connections(&self) -> usize {
        self.registry.active()
    }

    /// Stop accepting, drain in-flight work, and join **every** thread
    /// the server spawned — acceptor, connection readers, and workers.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return; // already shut down
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway loopback connection; if the
        // listener is somehow unreachable the acceptor is already dead.
        let _ = TcpStream::connect(self.local_addr);
        let _ = acceptor.join();
        // Socket shutdown unblocks readers parked in read/write right
        // now; every reader thread is joined before the queue closes,
        // so replies for already-admitted jobs still flow.
        self.registry.drain_all();
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.metrics.gauge("serve.connections", 0.0);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &ConnShared,
    registry: &Arc<ConnRegistry>,
    max_conns: usize,
) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else {
            continue; // transient accept failure; keep serving
        };
        // One-line requests and responses are far below the MSS; Nagle
        // plus delayed ACKs would stall every round trip ~40ms.
        let _ = stream.set_nodelay(true);
        // Socket timeouts make every blocking read/write finite; the
        // per-line deadline (which a trickle cannot reset) rides on top.
        let _ = stream.set_read_timeout(Some(shared.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.read_timeout));
        let Some(admission) = registry.admit(&stream, max_conns) else {
            // At the cap: shed with the typed response and hang up.
            // The write is bounded by the write timeout just set.
            shared.metrics.inc("serve.shed");
            let mut stream = stream;
            let _ = stream.write_all(crate::protocol::OVERLOADED.as_bytes());
            let _ = stream.write_all(b"\n");
            shared
                .metrics
                .gauge("serve.connections", registry.active() as f64);
            continue;
        };
        shared
            .metrics
            .gauge("serve.connections", registry.active() as f64);
        let conn_shared = shared.clone_for_conn();
        let ticket = admission.ticket;
        let handle = std::thread::spawn(move || {
            // The ticket's drop marks the slot reapable even if the
            // reader exits early or panics.
            let _ticket = ticket;
            connection_loop(stream, &conn_shared);
        });
        registry.attach(admission.id, handle);
    }
}

/// How one attempt to read a request line ended.
enum LineRead {
    /// A complete line is in the buffer.
    Line,
    /// The peer closed (or the socket was shut down for drain).
    Eof,
    /// The line outgrew `max_line_bytes` before its newline.
    TooLong,
    /// The read budget expired (idle holder or slow-loris trickle).
    TimedOut,
    /// The connection failed mid-read.
    ConnErr,
}

/// Read one newline-terminated request line into `raw` (cleared
/// first), enforcing the length cap and the end-to-end deadline.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    raw: &mut Vec<u8>,
    max_line_bytes: usize,
    budget: Duration,
) -> LineRead {
    raw.clear();
    let deadline = Deadline::within(budget);
    loop {
        let (consumed, complete) = {
            let buf = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return LineRead::TimedOut;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return LineRead::ConnErr,
            };
            if buf.is_empty() {
                return LineRead::Eof;
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    raw.extend_from_slice(&buf[..pos]);
                    (pos + 1, true)
                }
                None => {
                    raw.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        reader.consume(consumed);
        // The cap check sits after the copy: `raw` can overshoot by at
        // most one BufReader chunk, which keeps it O(max_line_bytes).
        if raw.len() > max_line_bytes {
            return LineRead::TooLong;
        }
        if complete {
            return LineRead::Line;
        }
        if deadline.expired() {
            return LineRead::TimedOut;
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &ConnShared) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let mut raw: Vec<u8> = Vec::new();
    let mut buf = String::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match read_request_line(
            &mut reader,
            &mut raw,
            shared.max_line_bytes,
            shared.read_timeout,
        ) {
            LineRead::Line => {}
            LineRead::Eof | LineRead::ConnErr => return,
            LineRead::TimedOut => {
                shared.metrics.inc("serve.timeouts");
                render_timeout(&mut buf);
                buf.push('\n');
                let _ = writer.write_all(buf.as_bytes());
                return;
            }
            LineRead::TooLong => {
                shared.metrics.inc("serve.oversized");
                render_line_too_long(&mut buf, shared.max_line_bytes);
                buf.push('\n');
                let _ = writer.write_all(buf.as_bytes());
                return;
            }
        }
        let Ok(line) = std::str::from_utf8(&raw) else {
            render_error(&mut buf, "request line is not valid UTF-8");
            buf.push('\n');
            if writer.write_all(buf.as_bytes()).is_err() || writer.flush().is_err() {
                return;
            }
            continue;
        };
        if line.trim().is_empty() {
            continue;
        }
        let response_ready = match parse_request(line.trim_end()) {
            Ok(Request::Lookup { hash }) => {
                let job = Job {
                    hash,
                    span: shared.metrics.span("serve/query"),
                    reply: reply_tx.clone(),
                };
                match shared.queue.try_push(job) {
                    Push::Accepted => {
                        shared.queries.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.inc("serve.queries");
                        match reply_rx.recv() {
                            Ok(resp) => {
                                buf = resp;
                                true
                            }
                            Err(_) => return, // workers gone mid-request
                        }
                    }
                    Push::Full => {
                        // Backpressure: shed this request typed, keep
                        // the connection — the client may retry later.
                        shared.metrics.inc("serve.shed");
                        render_overloaded(&mut buf);
                        true
                    }
                    Push::Closed => return, // shutting down
                }
            }
            Ok(Request::Stats) => {
                let snap = shared.store.load();
                render_stats(
                    &mut buf,
                    snap.generation(),
                    snap.len(),
                    shared.queries.load(Ordering::Relaxed),
                );
                true
            }
            Ok(Request::Reload { artifact }) => {
                handle_reload(&mut buf, shared, &artifact);
                true
            }
            Err(e) => {
                render_error(&mut buf, &e.to_string());
                true
            }
        };
        if response_ready {
            buf.push('\n');
            if writer.write_all(buf.as_bytes()).is_err() || writer.flush().is_err() {
                return;
            }
        }
    }
}

/// Load `artifact`, build a snapshot at the server's θ, and swap it in.
///
/// Reloaded snapshots carry no influence profile: influence estimation
/// needs the event streams of the original dataset, which the artifact
/// does not embed. `memes serve` recomputes it at startup when the
/// dataset is available; a protocol reload trades that column for not
/// having to restart.
fn handle_reload(buf: &mut String, shared: &ConnShared, artifact: &str) {
    if !shared.allow_reload {
        render_error(buf, "reload is disabled (start the server with --reload)");
        return;
    }
    let swapped = load_output(Path::new(artifact))
        .and_then(|output| Snapshot::build(&output, None, shared.theta, 0))
        .map(|snap| shared.store.swap(snap));
    match swapped {
        Ok(snap) => {
            shared
                .metrics
                .gauge("serve.snapshot_generation", snap.generation() as f64);
            shared.metrics.inc("serve.reloads");
            render_reloaded(buf, snap.generation(), snap.len());
        }
        Err(e) => render_error(buf, &e.to_string()),
    }
}

fn worker_loop(
    queue: &BatchQueue<Job>,
    store: &SnapshotStore,
    metrics: &Metrics,
    batch_max: usize,
) {
    let mut jobs: Vec<Job> = Vec::new();
    let mut scratch = ServeScratch::new();
    let mut buf = String::new();
    loop {
        let n = queue.drain_into(batch_max, &mut jobs);
        if n == 0 {
            return; // queue closed and drained
        }
        // One store load pins one generation for the whole micro-batch:
        // that is both the amortization and the consistency guarantee
        // (a batch never straddles a swap).
        let snap = store.load();
        metrics.observe("serve.batch_size", &BATCH_SIZE_BUCKETS, n as f64);
        metrics.gauge("serve.snapshot_generation", snap.generation() as f64);
        for job in jobs.drain(..) {
            match snap.lookup(job.hash, &mut scratch) {
                Some(hit) => {
                    metrics.inc("serve.hits");
                    render_hit(&mut buf, job.hash, &hit, &snap);
                }
                None => {
                    metrics.inc("serve.misses");
                    render_miss(&mut buf, job.hash, snap.generation());
                }
            }
            let secs = job.span.finish();
            metrics.observe("serve.latency_us", &LATENCY_BUCKETS_US, secs * 1e6);
            // A dead receiver means the client hung up before the
            // answer; nothing to do but move on.
            let _ = job.reply.send(buf.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use serde::Value;

    fn tiny_store() -> (Arc<SnapshotStore>, Vec<PHash>) {
        let output = crate::testutil::tiny_output();
        let snap = Snapshot::build(output, None, DEFAULT_THETA, 0).unwrap();
        let medoids = snap.records().iter().map(|r| r.medoid).collect();
        (Arc::new(SnapshotStore::new(snap)), medoids)
    }

    fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> Value {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        serde_json::from_str(&line).unwrap()
    }

    fn field<'a>(doc: &'a Value, name: &str) -> &'a Value {
        doc.as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap()
    }

    #[test]
    fn serves_lookups_stats_and_errors_over_tcp() {
        let (store, medoids) = tiny_store();
        let server = Server::start(store, ServerConfig::default(), Metrics::enabled()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        // Every medoid resolves to a hit at distance 0.
        for m in &medoids {
            let doc = roundtrip(&mut stream, &mut reader, &format!("{{\"hash\":\"{m}\"}}"));
            assert_eq!(field(&doc, "found"), &Value::Bool(true), "{m}");
            assert_eq!(field(&doc, "distance"), &Value::U64(0));
        }
        // A far hash misses (tiny runs still give wide Hamming gaps).
        let far = PHash(medoids[0].0 ^ 0xFFFF_FFFF_FFFF_FFFF);
        let doc = roundtrip(&mut stream, &mut reader, &format!("{{\"hash\":\"{far}\"}}"));
        if field(&doc, "found") == &Value::Bool(true) {
            assert!(
                matches!(field(&doc, "distance"), Value::U64(d) if *d <= u64::from(DEFAULT_THETA))
            );
        }
        // Stats reflect the admitted queries; bad lines keep the
        // connection open.
        let doc = roundtrip(&mut stream, &mut reader, "{\"op\":\"stats\"}");
        assert_eq!(
            field(&doc, "queries"),
            &Value::U64(medoids.len() as u64 + 1)
        );
        let doc = roundtrip(&mut stream, &mut reader, "{\"op\":\"nope\"}");
        assert!(matches!(field(&doc, "error"), Value::String(_)));
        let doc = roundtrip(
            &mut stream,
            &mut reader,
            "{\"op\":\"reload\",\"artifact\":\"x\"}",
        );
        assert!(matches!(field(&doc, "error"), Value::String(_)));
        // The connection still works after every error.
        let m = medoids[0];
        let doc = roundtrip(&mut stream, &mut reader, &format!("{{\"hash\":\"{m}\"}}"));
        assert_eq!(field(&doc, "found"), &Value::Bool(true));

        drop(stream);
        drop(reader);
        server.shutdown();
    }

    #[test]
    fn reload_swaps_generation_without_dropping_connections() {
        let (store, medoids) = tiny_store();
        let dir = std::env::temp_dir().join(format!("meme-serve-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = dir.join("run.json");
        std::fs::write(&artifact, crate::testutil::tiny_output().to_json()).unwrap();

        let config = ServerConfig {
            allow_reload: true,
            ..ServerConfig::default()
        };
        let server = Server::start(store, config, Metrics::disabled()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        let m = medoids[0];
        let before = roundtrip(&mut stream, &mut reader, &format!("{{\"hash\":\"{m}\"}}"));
        assert_eq!(field(&before, "generation"), &Value::U64(1));
        let req = format!(
            "{{\"op\":\"reload\",\"artifact\":\"{}\"}}",
            artifact.display()
        );
        let doc = roundtrip(&mut stream, &mut reader, &req);
        assert_eq!(field(&doc, "reloaded"), &Value::Bool(true));
        assert_eq!(field(&doc, "generation"), &Value::U64(2));
        // The same connection keeps answering, now from generation 2.
        let after = roundtrip(&mut stream, &mut reader, &format!("{{\"hash\":\"{m}\"}}"));
        assert_eq!(field(&after, "found"), &Value::Bool(true));
        assert_eq!(field(&after, "generation"), &Value::U64(2));

        drop(stream);
        drop(reader);
        server.shutdown();
    }

    #[test]
    fn idle_connection_gets_typed_timeout_then_close() {
        let (store, _) = tiny_store();
        let config = ServerConfig {
            read_timeout_ms: 150,
            ..ServerConfig::default()
        };
        let server = Server::start(store, config, Metrics::enabled()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        // Send nothing: the typed timeout arrives, then EOF.
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), crate::protocol::READ_TIMEOUT);
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection closed");
        server.shutdown();
    }

    #[test]
    fn slow_loris_cannot_outlive_the_line_deadline() {
        let (store, _) = tiny_store();
        let config = ServerConfig {
            read_timeout_ms: 200,
            ..ServerConfig::default()
        };
        let server = Server::start(store, config, Metrics::enabled()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // Trickle bytes faster than any socket timeout, never a newline:
        // only the end-to-end deadline can catch this.
        let trickler = std::thread::spawn(move || {
            for _ in 0..40 {
                if stream.write_all(b"x").is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), crate::protocol::READ_TIMEOUT);
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection closed");
        trickler.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn oversized_line_is_rejected_typed_with_bounded_buffering() {
        let (store, _) = tiny_store();
        let config = ServerConfig {
            max_line_bytes: 512,
            ..ServerConfig::default()
        };
        let server = Server::start(store, config, Metrics::enabled()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        // 4 KiB without a newline: rejected long before it all buffers.
        let blob = vec![b'a'; 4096];
        let _ = stream.write_all(&blob);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("512 bytes"), "{line}");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "connection closed");
        server.shutdown();
    }

    #[test]
    fn connection_cap_sheds_typed_and_keeps_admitted_traffic_working() {
        let (store, medoids) = tiny_store();
        let config = ServerConfig {
            max_conns: 1,
            ..ServerConfig::default()
        };
        let server = Server::start(store, config, Metrics::enabled()).unwrap();
        let mut admitted = TcpStream::connect(server.local_addr()).unwrap();
        let mut admitted_reader = BufReader::new(admitted.try_clone().unwrap());
        // Prove the first connection is registered before the second
        // arrives by completing a round trip on it.
        let m = medoids[0];
        let doc = roundtrip(
            &mut admitted,
            &mut admitted_reader,
            &format!("{{\"hash\":\"{m}\"}}"),
        );
        assert_eq!(field(&doc, "found"), &Value::Bool(true));
        assert_eq!(server.active_connections(), 1);

        let shed = TcpStream::connect(server.local_addr()).unwrap();
        let mut shed_reader = BufReader::new(shed);
        let mut line = String::new();
        shed_reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), crate::protocol::OVERLOADED);
        line.clear();
        assert_eq!(shed_reader.read_line(&mut line).unwrap(), 0);

        // The admitted connection never noticed.
        let doc = roundtrip(
            &mut admitted,
            &mut admitted_reader,
            &format!("{{\"hash\":\"{m}\"}}"),
        );
        assert_eq!(field(&doc, "found"), &Value::Bool(true));
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_readers_even_with_connections_parked() {
        let (store, medoids) = tiny_store();
        let server = Server::start(store, ServerConfig::default(), Metrics::enabled()).unwrap();
        // Three connections: one mid-conversation, two idle holders.
        let mut active = TcpStream::connect(server.local_addr()).unwrap();
        let mut active_reader = BufReader::new(active.try_clone().unwrap());
        let idle_a = TcpStream::connect(server.local_addr()).unwrap();
        let idle_b = TcpStream::connect(server.local_addr()).unwrap();
        let m = medoids[0];
        let doc = roundtrip(
            &mut active,
            &mut active_reader,
            &format!("{{\"hash\":\"{m}\"}}"),
        );
        assert_eq!(field(&doc, "found"), &Value::Bool(true));
        assert!(server.active_connections() >= 1);

        // shutdown() must return promptly (drain shuts the sockets; no
        // reader waits out its timeout) with every thread joined.
        server.shutdown();
        drop(idle_a);
        drop(idle_b);
    }
}
