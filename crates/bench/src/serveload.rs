//! Shared machinery for serve-layer load generation and chaos testing.
//!
//! Used by the `serve-load` binary (the committed `BENCH_serve.json`
//! baseline, including its mixed-overload scenario) and by the serve
//! chaos suite (`tests/serve_chaos.rs`), so the well-behaved cohort and
//! every adversarial client behave byte-for-byte the same in both.
//!
//! The adversaries model the client behaviours a production listener
//! must survive (DESIGN.md §12 "Connection lifecycle and overload"):
//!
//! | mode                 | behaviour                                    |
//! |----------------------|----------------------------------------------|
//! | `slow-loris`         | trickles bytes, never finishes a line        |
//! | `idle-holder`        | connects, sends nothing, holds the socket    |
//! | `oversized-line`     | streams a newline-free blob past the cap     |
//! | `garbage-bytes`      | sends newline-terminated non-UTF-8 junk      |
//! | `disconnect-mid-batch` | sends a valid lookup, hangs up before the  |
//! |                      | answer                                       |
//!
//! Every adversary reports what the server did (typed rejection line,
//! whether the connection was closed), and the orchestrators assert the
//! server's contract: typed rejections, bounded threads, and the
//! well-behaved cohort answered byte-identically to an attack-free run.

use meme_phash::PHash;
use meme_stats::seeded_rng;
use rand::RngExt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// The seeded per-client query schedule: each request perturbs a random
/// medoid by 0–12 bit flips, so ~2/3 land within θ = 8.
pub fn query_schedule(medoids: &[PHash], seed: u64, requests: usize) -> Vec<PHash> {
    let mut rng = seeded_rng(seed);
    (0..requests)
        .map(|_| {
            let mut bits = medoids[rng.random_range(0..medoids.len())].0;
            for _ in 0..rng.random_range(0..13usize) {
                bits ^= 1u64 << rng.random_range(0..64u32);
            }
            PHash(bits)
        })
        .collect()
}

/// Sorted-latency percentile (nearest-rank on the sorted slice).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One well-behaved client's transcript: every response line, in
/// request order, plus client-side round-trip latencies.
#[derive(Debug, Clone)]
pub struct ClientTranscript {
    /// Response lines exactly as received (no trailing newline).
    pub responses: Vec<String>,
    /// Round-trip latency per request, microseconds.
    pub latencies_us: Vec<f64>,
}

/// Run one closed-loop well-behaved client over `schedule`.
///
/// Panics on any transport error: the serving contract is that a
/// well-behaved client is never dropped or shed while the connection
/// cap and queue have room, even with attackers active.
pub fn run_client(addr: SocketAddr, schedule: &[PHash]) -> ClientTranscript {
    let stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_nodelay(true).expect("disable Nagle");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut line = String::new();
    let mut out = ClientTranscript {
        responses: Vec::with_capacity(schedule.len()),
        latencies_us: Vec::with_capacity(schedule.len()),
    };
    for q in schedule {
        let t0 = Instant::now();
        writeln!(writer, "{{\"hash\":\"{q}\"}}").expect("send request");
        line.clear();
        reader.read_line(&mut line).expect("read response");
        out.latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(
            line.starts_with("{\"found\""),
            "well-behaved client got an unexpected response: {line}"
        );
        out.responses.push(line.trim_end().to_string());
    }
    out
}

/// Run `clients` closed-loop well-behaved clients concurrently, each
/// with its own seeded schedule. Transcripts come back in client order,
/// so two runs against identically configured servers are comparable
/// transcript-for-transcript.
pub fn run_cohort(
    addr: SocketAddr,
    medoids: &[PHash],
    seed: u64,
    clients: usize,
    requests: usize,
) -> Vec<ClientTranscript> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let schedule = query_schedule(medoids, seed ^ (c as u64 + 1), requests);
                scope.spawn(move || run_client(addr, &schedule))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    })
}

/// An adversarial client behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adversary {
    /// Trickle bytes slowly, never completing a request line.
    SlowLoris,
    /// Connect and send nothing, holding the socket open.
    IdleHolder,
    /// Stream a newline-free blob well past `max_line_bytes`.
    OversizedLine,
    /// Send newline-terminated bytes that are not valid UTF-8.
    GarbageBytes,
    /// Send a valid lookup, then disconnect before reading the answer.
    DisconnectMidBatch,
}

impl Adversary {
    /// Every adversary, in a fixed order (stable for seeds and labels).
    pub const ALL: [Adversary; 5] = [
        Adversary::SlowLoris,
        Adversary::IdleHolder,
        Adversary::OversizedLine,
        Adversary::GarbageBytes,
        Adversary::DisconnectMidBatch,
    ];

    /// The CLI / report label.
    pub fn label(self) -> &'static str {
        match self {
            Adversary::SlowLoris => "slow-loris",
            Adversary::IdleHolder => "idle-holder",
            Adversary::OversizedLine => "oversized-line",
            Adversary::GarbageBytes => "garbage-bytes",
            Adversary::DisconnectMidBatch => "disconnect-mid-batch",
        }
    }

    /// Parse a CLI label.
    pub fn parse(label: &str) -> Option<Adversary> {
        Adversary::ALL.into_iter().find(|a| a.label() == label)
    }
}

/// What the server did to one adversarial client.
#[derive(Debug, Clone)]
pub struct AdversaryReport {
    /// Which behaviour ran.
    pub adversary: Adversary,
    /// The typed rejection line received, when the contract calls for
    /// one (`None` for `disconnect-mid-batch`, which never reads).
    pub rejection: Option<String>,
    /// Whether the server ended the connection (EOF/reset observed).
    pub closed: bool,
}

/// Read one line then expect EOF, tolerating reset errors (the server
/// has shut the socket down; a straggling write from us may have turned
/// the close into an RST). Returns `(line, closed)`.
fn read_rejection(reader: &mut BufReader<TcpStream>) -> (Option<String>, bool) {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => (None, true),
        Ok(_) => {
            let mut rest = String::new();
            let closed = matches!(reader.read_line(&mut rest), Ok(0) | Err(_));
            (Some(line.trim_end().to_string()), closed)
        }
        Err(_) => (None, true),
    }
}

/// Run one adversarial client against a live server and report what the
/// server did. `read_timeout_ms` and `max_line_bytes` must match the
/// server's configuration (they size the attack).
pub fn run_adversary(
    addr: SocketAddr,
    adversary: Adversary,
    read_timeout_ms: u64,
    max_line_bytes: usize,
) -> AdversaryReport {
    let stream = TcpStream::connect(addr).expect("adversary connects");
    let _ = stream.set_nodelay(true);
    // Never let the chaos suite itself hang: every adversary read is
    // bounded well past the server's own budget.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(read_timeout_ms * 20 + 2_000)));
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    match adversary {
        Adversary::SlowLoris => {
            // Trickle fast enough to keep resetting any naive socket
            // timeout, for ~3x the server's end-to-end line budget.
            let gap = Duration::from_millis((read_timeout_ms / 8).max(5));
            let tries = 24;
            for _ in 0..tries {
                if writer.write_all(b"x").is_err() {
                    break; // server already gave up on us
                }
                std::thread::sleep(gap);
            }
            let (rejection, closed) = read_rejection(&mut reader);
            AdversaryReport {
                adversary,
                rejection,
                closed,
            }
        }
        Adversary::IdleHolder => {
            let (rejection, closed) = read_rejection(&mut reader);
            AdversaryReport {
                adversary,
                rejection,
                closed,
            }
        }
        Adversary::OversizedLine => {
            // Stream 4x the cap without a newline; the server must
            // reject after ~max_line_bytes, so later writes may fail.
            let chunk = vec![b'a'; 1024];
            let mut sent = 0usize;
            while sent < max_line_bytes * 4 {
                if writer.write_all(&chunk).is_err() {
                    break;
                }
                sent += chunk.len();
            }
            let (rejection, closed) = read_rejection(&mut reader);
            AdversaryReport {
                adversary,
                rejection,
                closed,
            }
        }
        Adversary::GarbageBytes => {
            // Newline-terminated invalid UTF-8: a complete "line" the
            // server must reject typed while keeping the connection.
            writer
                .write_all(b"\xff\xfe\x80garbage\xf5\n")
                .expect("send garbage");
            let mut line = String::new();
            let got = reader.read_line(&mut line).unwrap_or(0);
            AdversaryReport {
                adversary,
                rejection: (got > 0).then(|| line.trim_end().to_string()),
                // Garbage lines keep the connection open; we close it.
                closed: false,
            }
        }
        Adversary::DisconnectMidBatch => {
            // A valid lookup the worker will answer into a dead socket.
            writer
                .write_all(b"{\"hash\":\"0000000000000000\"}\n")
                .expect("send request");
            // Drop both halves without reading: mid-batch disconnect.
            drop(reader);
            drop(writer);
            AdversaryReport {
                adversary,
                rejection: None,
                closed: true,
            }
        }
    }
}

/// What an accept-time flood observed.
#[derive(Debug, Clone, Default)]
pub struct FloodReport {
    /// Connections answered with the typed overload rejection.
    pub typed_sheds: usize,
    /// Connections that ended some other way (reset, refused, timeout).
    pub other: usize,
}

/// Open `n` connections beyond the server's cap and read one line from
/// each: every one should get the typed `{"error":"overloaded"}` shed.
pub fn flood_accepts(addr: SocketAddr, n: usize) -> FloodReport {
    let mut report = FloodReport::default();
    for _ in 0..n {
        let Ok(stream) = TcpStream::connect(addr) else {
            report.other += 1;
            continue;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 && line.trim_end() == meme_serve::protocol::OVERLOADED => {
                report.typed_sheds += 1;
            }
            _ => report.other += 1,
        }
    }
    report
}

/// Live threads in this process, from `/proc/self/status` (Linux).
/// Returns `None` where procfs is unavailable; callers skip the bound
/// assertion rather than guessing.
pub fn live_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Peak resident-set size of this process in kilobytes, from
/// `/proc/self/status` (Linux).
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
}

/// Drain one adversary wave concurrently: all five behaviours at once.
pub fn run_adversary_wave(
    addr: SocketAddr,
    read_timeout_ms: u64,
    max_line_bytes: usize,
) -> Vec<AdversaryReport> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = Adversary::ALL
            .into_iter()
            .map(|a| scope.spawn(move || run_adversary(addr, a, read_timeout_ms, max_line_bytes)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("adversary thread"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_seeded_and_deterministic() {
        let medoids = [PHash(0xDEAD), PHash(0xBEEF)];
        assert_eq!(
            query_schedule(&medoids, 7, 32),
            query_schedule(&medoids, 7, 32)
        );
        assert_ne!(
            query_schedule(&medoids, 7, 32),
            query_schedule(&medoids, 8, 32)
        );
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn adversary_labels_round_trip() {
        for a in Adversary::ALL {
            assert_eq!(Adversary::parse(a.label()), Some(a));
        }
        assert_eq!(Adversary::parse("ddos"), None);
    }

    #[test]
    fn thread_and_rss_probes_work_on_linux() {
        if let Some(n) = live_threads() {
            assert!(n >= 1);
        }
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0);
        }
    }
}
