//! Benchmark harness and experiment regeneration for the
//! `origins-of-memes` reproduction.
//!
//! * [`harness`] — shared CLI parsing and dataset/pipeline setup for
//!   the `repro-*` binaries (one binary per paper table/figure; see
//!   DESIGN.md §4 for the index);
//! * [`sections`] — the per-experiment implementations, shared between
//!   the individual binaries and `repro-all`.
//!
//! Criterion benches live in `benches/`: pHash throughput, index-engine
//! comparison (the §7 performance discussion), DBSCAN scaling, Hawkes
//! fitting, the custom metric, and the end-to-end pipeline.

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // community-matrix loops read clearer with explicit indices

pub mod ablations;
pub mod baseline;
pub mod harness;
pub mod legacy;
pub mod sections;
pub mod serveload;
