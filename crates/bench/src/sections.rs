//! Per-experiment regeneration, shared by the `repro-*` binaries.
//!
//! Every function prints a paper-style table (or series) to stdout.
//! DESIGN.md §4 maps each function to the paper table/figure it
//! regenerates; EXPERIMENTS.md records paper-vs-measured.

use crate::harness::{section, Repro};
use meme_annotate::agreement::simulate_panel;
use meme_annotate::kym::KymCategory;
use meme_annotate::nn::TrainConfig;
use meme_annotate::screenshot::{ScreenshotCorpus, ScreenshotFilter, SourcePlatform};
use meme_cluster::dbscan::DbscanParams;
use meme_core::analysis::{self, CommunityClustering, MemeFilter};
use meme_core::dendro::Phylogeny;
use meme_core::graph::{ClusterGraph, GraphConfig};
use meme_core::metric::{ClusterDescriptor, ClusterDistance};
use meme_core::report::{ascii_table, pct, thousands};
use meme_hawkes::{
    parent_probabilities, root_causes, simulate_branching, strip_lineage, Event, HawkesModel,
    InfluenceEstimator, InfluenceMatrix, SplitInfluence,
};
use meme_index::{BruteForceIndex, HammingIndex, MihIndex};
use meme_phash::PHash;
use meme_simweb::Community;
use meme_stats::Ecdf;
use std::time::Instant;

/// Kernel decay used for all influence fits (events cluster within
/// hours of each other; 3/day matches the generator).
pub const FIT_BETA: f64 = 3.0;

// ------------------------------------------------------------- Table 1

/// Table 1: dataset overview.
pub fn table1(r: &Repro) {
    section("Table 1: dataset overview");
    let rows = analysis::table1(&r.dataset, &r.output);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.platform.clone(),
                thousands(row.posts),
                thousands(row.posts_with_images),
                thousands(row.images),
                thousands(row.unique_phashes),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &[
                "Platform",
                "#Posts",
                "#Posts w/ Images",
                "#Images",
                "#Unique pHashes"
            ],
            &cells
        )
    );
}

// ------------------------------------------------------------- Table 2

/// Per-community Steps 2–5 runs (shared by Tables 2 and 3).
pub fn community_runs(r: &Repro) -> Vec<CommunityClustering> {
    Community::FRINGE
        .iter()
        .map(|&c| {
            analysis::cluster_community(
                &r.dataset,
                &r.output,
                c,
                DbscanParams::default(),
                8,
                r.opts.threads,
            )
        })
        .collect()
}

/// Table 2: clustering statistics, plus the Appendix-B annotation
/// panel.
pub fn table2(r: &Repro, runs: &[CommunityClustering]) {
    section("Table 2: clustering statistics per fringe community");
    let rows = analysis::table2(runs);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.platform.clone(),
                thousands(row.images),
                pct(row.noise_pct),
                thousands(row.clusters),
                format!("{} ({})", thousands(row.annotated), pct(row.annotated_pct)),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(
            &[
                "Platform",
                "#Images",
                "Noise",
                "#Clusters",
                "#Clusters w/ KYM (%)"
            ],
            &cells
        )
    );

    // Appendix B: simulated three-annotator panel over annotation
    // ground truth (representative entry == true meme of the medoid).
    section("Appendix B: annotation-quality panel (3 simulated annotators)");
    let mut truth: Vec<bool> = Vec::new();
    for run in runs {
        for ann in run.annotations.iter().filter(|a| a.is_annotated()) {
            let medoid_post = run.medoid_posts[ann.cluster];
            let true_meme = r.dataset.posts[medoid_post].true_variant().map(|(m, _)| m);
            let rep_meme = ann
                .representative
                .and_then(|id| r.output.entry_meme_ids[id]);
            truth.push(true_meme.is_some() && true_meme == rep_meme);
        }
    }
    let accuracy = truth.iter().filter(|t| **t).count() as f64 / truth.len().max(1) as f64;
    println!("clusters assessed: {}", truth.len());
    println!(
        "measured annotation accuracy (vs ground truth): {:.1}% [paper: 89%]",
        100.0 * accuracy
    );
    println!(
        "(synthetic galleries are cleaner than KYM's, so accuracy runs higher \
         than the paper's human-judged 89%)"
    );
    let mut rng = meme_stats::seeded_rng(r.opts.seed ^ 0xBA99);
    match simulate_panel(&truth, 3, 0.05, &mut rng) {
        Some(report) => println!(
            "panel on measured truth: Fleiss kappa {:.2} ({})",
            report.fleiss_kappa, report.interpretation
        ),
        None => println!("(too few annotated clusters for a panel)"),
    }
    // Reference panel at the paper's operating point: 89% of
    // annotations correct, three raters with 5% individual error.
    let reference: Vec<bool> = (0..200).map(|i| i % 100 >= 11).collect();
    if let Some(report) = simulate_panel(&reference, 3, 0.05, &mut rng) {
        println!(
            "calibrated reference panel (89% correct annotations): kappa {:.2} ({}), \
             majority positive rate {:.1}% [paper: kappa 0.67, 89%]",
            report.fleiss_kappa,
            report.interpretation,
            100.0 * report.majority_positive_rate
        );
    }
}

// --------------------------------------------------------- Tables 3-5

/// Table 3: top KYM entries by clusters, per fringe community.
pub fn table3(r: &Repro, runs: &[CommunityClustering]) {
    section("Table 3: top KYM entries by #clusters (per fringe community)");
    for run in runs {
        let rows = analysis::top_entries_by_clusters(run, &r.output, 20);
        println!("--- {} ---", run.community.name());
        let cells: Vec<Vec<String>> = rows
            .iter()
            .map(|row| {
                vec![
                    row.entry.clone(),
                    row.category.clone(),
                    format!("{} ({})", row.count, pct(row.pct)),
                ]
            })
            .collect();
        println!(
            "{}",
            ascii_table(&["Entry", "Category", "Clusters (%)"], &cells)
        );
    }
}

fn print_top_posts(r: &Repro, category: Option<KymCategory>, n: usize) {
    for community in [
        Community::Pol,
        Community::Reddit,
        Community::Gab,
        Community::Twitter,
    ] {
        let rows = analysis::top_entries_by_posts(&r.dataset, &r.output, community, category, n);
        println!("--- {} ---", community.name());
        let cells: Vec<Vec<String>> = rows
            .iter()
            .map(|row| {
                let mut marks = String::new();
                if let Some(e) = r.output.site.entries.iter().find(|e| e.name == row.entry) {
                    if e.is_racist() {
                        marks.push_str(" (R)");
                    }
                    if e.is_political() {
                        marks.push_str(" (P)");
                    }
                }
                vec![
                    format!("{}{}", row.entry, marks),
                    format!("{} ({})", thousands(row.count), pct(row.pct)),
                ]
            })
            .collect();
        println!("{}", ascii_table(&["Entry", "Posts (%)"], &cells));
    }
}

/// Table 4: top meme entries by posts per community.
pub fn table4(r: &Repro) {
    section("Table 4: top meme entries by #posts (per community)");
    print_top_posts(r, Some(KymCategory::Meme), 20);
}

/// Table 5: top people entries by posts per community.
pub fn table5(r: &Repro) {
    section("Table 5: top 'people' entries by #posts (per community)");
    print_top_posts(r, Some(KymCategory::Person), 15);
}

// ------------------------------------------------------------- Table 6

/// Table 6: top subreddits for all/racist/political memes.
pub fn table6(r: &Repro) {
    section("Table 6: top subreddits (all / racist / political memes)");
    for (label, filter) in [
        ("All memes", MemeFilter::All),
        ("Racism-related", MemeFilter::Racist),
        ("Politics-related", MemeFilter::Political),
    ] {
        let rows = analysis::table6(&r.dataset, &r.output, filter, 10);
        println!("--- {label} ---");
        let cells: Vec<Vec<String>> = rows
            .iter()
            .map(|row| {
                vec![
                    row.subreddit.clone(),
                    format!("{} ({})", thousands(row.posts), pct(row.pct)),
                ]
            })
            .collect();
        println!("{}", ascii_table(&["Subreddit", "Posts (%)"], &cells));
    }
}

// ------------------------------------------------------------- Table 7

/// Table 7: meme events per community.
pub fn table7(r: &Repro) {
    section("Table 7: meme events per community (Step-6 association)");
    let rows = analysis::table7(&r.dataset, &r.output);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, count)| vec![name.clone(), thousands(*count)])
        .collect();
    println!("{}", ascii_table(&["Community", "Events"], &cells));
}

// ------------------------------------------------- Table 8 + Fig 17

/// Appendix A: eps sweep (Table 8) and per-cluster false-positive CDFs
/// (Fig. 17).
pub fn table8_fig17(r: &Repro) {
    section("Table 8 (Appendix A): DBSCAN distance sweep");
    let rows = analysis::eps_sweep(&r.dataset, &r.output, &[2, 4, 6, 8, 10], 5, r.opts.threads);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.eps.to_string(),
                thousands(row.clusters),
                pct(row.noise_pct),
                format!("{:.3}", row.purity),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["Distance", "#Clusters", "%Noise", "Purity"], &cells)
    );

    section("Fig 17 (Appendix A): CDF of per-cluster false-positive fraction");
    let grid = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8];
    let mut cells = Vec::new();
    for row in rows.iter().filter(|row| [6, 8, 10].contains(&row.eps)) {
        if let Some(ecdf) = Ecdf::new(row.fp_fractions.clone()) {
            let mut line = vec![format!("eps {}", row.eps)];
            for &g in &grid {
                line.push(format!("{:.2}", ecdf.eval(g)));
            }
            cells.push(line);
        }
    }
    let mut headers: Vec<String> = vec!["".to_string()];
    headers.extend(grid.iter().map(|g| format!("F({g})")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", ascii_table(&header_refs, &cells));
}

// ------------------------------------------------- Table 9 + Fig 19

/// Appendix C: screenshot-classifier corpus (Table 9) and evaluation
/// (Fig. 19). Standalone — trains the CNN regardless of harness mode.
pub fn table9_fig19(seed: u64) {
    section("Table 9 (Appendix C): screenshot training corpus");
    let corpus = ScreenshotCorpus::generate(0.02, seed);
    let mut cells: Vec<Vec<String>> = corpus
        .platform_counts
        .iter()
        .map(|(p, c)| {
            vec![
                p.name().to_string(),
                thousands(*c as u64),
                thousands(p.paper_count() as u64),
            ]
        })
        .collect();
    cells.push(vec![
        "Other".to_string(),
        thousands(corpus.other_count as u64),
        thousands(10_630),
    ]);
    println!(
        "{}",
        ascii_table(&["Platform", "#Images (ours)", "#Images (paper)"], &cells)
    );

    section("Fig 19 (Appendix C): classifier evaluation");
    let t0 = Instant::now();
    let (_, metrics) = ScreenshotFilter::train(
        &corpus,
        &TrainConfig {
            seed,
            ..TrainConfig::default()
        },
    );
    println!("trained in {:.1?} on {} images", t0.elapsed(), corpus.len());
    println!("AUC:       {:.3}  [paper: 0.96]", metrics.auc);
    println!("accuracy:  {:.1}% [paper: 91.3%]", 100.0 * metrics.accuracy);
    println!(
        "precision: {:.1}% [paper: 94.3%]",
        100.0 * metrics.precision
    );
    println!("recall:    {:.1}% [paper: 93.5%]", 100.0 * metrics.recall);
    println!("F1:        {:.1}% [paper: 93.9%]", 100.0 * metrics.f1);
    println!("ROC curve (FPR, TPR):");
    let step = (metrics.roc.len() / 10).max(1);
    for (fpr, tpr) in metrics.roc.iter().step_by(step) {
        println!("  {fpr:.3}  {tpr:.3}");
    }
}

// --------------------------------------------------------------- Fig 3

/// Fig. 3: r_perceptual for τ ∈ {1, 25, 64}.
pub fn fig3() {
    section("Fig 3: r_perceptual(d) for tau in {1, 25, 64}");
    let taus = [1.0, 25.0, 64.0];
    let metrics: Vec<ClusterDistance> =
        taus.iter().map(|&t| ClusterDistance::with_tau(t)).collect();
    let mut cells = Vec::new();
    for d in (0..=64).step_by(4) {
        let mut row = vec![d.to_string()];
        for m in &metrics {
            row.push(format!("{:.3}", m.r_perceptual(d)));
        }
        cells.push(row);
    }
    println!(
        "{}",
        ascii_table(&["d", "tau=1", "tau=25", "tau=64"], &cells)
    );
}

// --------------------------------------------------------------- Fig 4

/// Fig. 4: KYM site statistics.
pub fn fig4(r: &Repro) {
    let site = &r.output.site;
    section("Fig 4a: KYM entries per category");
    let cells: Vec<Vec<String>> = site
        .category_shares()
        .iter()
        .map(|(c, share)| vec![c.name().to_string(), pct(*share)])
        .collect();
    println!("{}", ascii_table(&["Category", "% of entries"], &cells));

    section("Fig 4b: images per KYM entry (CDF)");
    if let Some(ecdf) = Ecdf::from_counts(site.gallery_sizes()) {
        println!(
            "min {:.0}, median {:.0}, mean {:.1}, max {:.0} [paper: median 9, mean 45]",
            ecdf.min(),
            ecdf.median(),
            ecdf.mean(),
            ecdf.max()
        );
        let grid = ecdf.log_grid(8);
        let cells: Vec<Vec<String>> = ecdf
            .series(&grid)
            .iter()
            .map(|(x, f)| vec![format!("{x:.0}"), format!("{f:.3}")])
            .collect();
        println!("{}", ascii_table(&["#images", "CDF"], &cells));
    }

    section("Fig 4c: KYM entries per origin platform");
    let cells: Vec<Vec<String>> = site
        .origin_shares()
        .iter()
        .take(10)
        .map(|(origin, share)| vec![origin.clone(), pct(*share)])
        .collect();
    println!("{}", ascii_table(&["Origin", "% of entries"], &cells));
}

// --------------------------------------------------------------- Fig 5

/// Fig. 5: entries-per-cluster and clusters-per-entry CDFs.
pub fn fig5(r: &Repro) {
    let (epc, cpe) = analysis::fig5_samples(&r.output);
    section("Fig 5a: KYM entries per annotated cluster");
    if let Some(ecdf) = Ecdf::from_counts(epc.clone()) {
        let single = epc.iter().filter(|&&c| c == 1).count();
        println!(
            "single-entry clusters: {:.0}% [paper: 58-74%]; max entries on one cluster: {:.0}",
            100.0 * single as f64 / epc.len() as f64,
            ecdf.max()
        );
        for x in [1.0, 2.0, 5.0, 10.0] {
            println!("  F({x:>4}) = {:.3}", ecdf.eval(x));
        }
    }
    section("Fig 5b: clusters per KYM entry");
    if let Some(ecdf) = Ecdf::from_counts(cpe.clone()) {
        let zero = cpe.iter().filter(|&&c| c == 0).count();
        println!(
            "entries annotating no cluster: {:.0}%; max clusters for one entry: {:.0}",
            100.0 * zero as f64 / cpe.len() as f64,
            ecdf.max()
        );
        for x in [0.0, 1.0, 5.0, 20.0] {
            println!("  F({x:>4}) = {:.3}", ecdf.eval(x));
        }
    }
}

// --------------------------------------------------------------- Fig 6

/// Cluster descriptors + labels for annotated clusters passing a name
/// predicate.
fn descriptors_for(
    r: &Repro,
    predicate: impl Fn(&str) -> bool,
) -> (Vec<ClusterDescriptor>, Vec<String>) {
    let mut descriptors = Vec::new();
    let mut labels = Vec::new();
    for ann in r.output.annotations.iter().filter(|a| a.is_annotated()) {
        let rep = r.output.site.entry(ann.representative.expect("annotated"));
        if !predicate(&rep.name) {
            continue;
        }
        let medoid = r.output.medoid_hashes[ann.cluster];
        descriptors.push(ClusterDescriptor::from_annotation(
            medoid,
            ann,
            &r.output.site,
        ));
        // The paper labels leaves community@meme.
        let medoid_post = r.output.medoid_posts[ann.cluster];
        let prefix = match r.dataset.posts[medoid_post].community {
            Community::Pol => "4",
            Community::TheDonald => "D",
            Community::Gab => "G",
            _ => "?",
        };
        labels.push(format!(
            "{prefix}@{}",
            rep.name.to_lowercase().replace(' ', "-")
        ));
    }
    (descriptors, labels)
}

/// Fig. 6: the frog-family dendrogram.
pub fn fig6(r: &Repro) {
    section("Fig 6: frog-meme phylogeny (custom metric, average linkage)");
    let frog = |name: &str| {
        let n = name.to_lowercase();
        n.contains("frog") || n.contains("pepe") || n.contains("apu") || n.contains("kek")
    };
    let (descriptors, labels) = descriptors_for(r, frog);
    println!("frog clusters: {}", descriptors.len());
    let Some(phylo) = Phylogeny::build(&descriptors, labels, &ClusterDistance::default()) else {
        println!("(not enough frog clusters at this scale)");
        return;
    };
    let families = phylo.family_listing(0.45);
    println!(
        "families at cut 0.45: {} [paper: 4 dominant families]",
        families.len()
    );
    for (i, family) in families.iter().enumerate().take(6) {
        let preview: Vec<&str> = family.iter().copied().take(6).collect();
        println!(
            "  family {i}: {} clusters, e.g. {}",
            family.len(),
            preview.join(", ")
        );
    }
    let newick = phylo.to_newick();
    println!(
        "newick (truncated): {}...",
        &newick[..newick.len().min(160)]
    );
}

// --------------------------------------------------------------- Fig 7

/// Fig. 7: the κ = 0.45 cluster graph.
pub fn fig7(r: &Repro) {
    section("Fig 7: cluster graph at kappa = 0.45");
    let (descriptors, labels) = descriptors_for(r, |_| true);
    let config = GraphConfig {
        kappa: 0.45,
        // The paper filters at degree 10 on 12.6K clusters; scale the
        // filter to our cluster count.
        min_degree: if descriptors.len() > 2000 { 10 } else { 2 },
    };
    let graph = ClusterGraph::build(&descriptors, &labels, &ClusterDistance::default(), &config);
    println!(
        "nodes: {} / {}, edges: {}, components: {}",
        graph.node_count(),
        descriptors.len(),
        graph.edge_count(),
        graph.n_components
    );
    println!(
        "component annotation purity: {:.3} [paper: components are 'primarily one color']",
        graph.component_purity()
    );
    let dir = std::path::Path::new("repro-out");
    if std::fs::create_dir_all(dir).is_ok() {
        let dot = dir.join("fig7.dot");
        let json = dir.join("fig7.json");
        if std::fs::write(&dot, graph.to_dot()).is_ok() {
            println!("wrote {}", dot.display());
        }
        if std::fs::write(&json, graph.to_json()).is_ok() {
            println!("wrote {}", json.display());
        }
    }
}

// --------------------------------------------------------------- Fig 8

/// Fig. 8: percentage of posts per day with memes.
pub fn fig8(r: &Repro) {
    for (label, filter) in [
        ("all memes", MemeFilter::All),
        ("racist", MemeFilter::Racist),
        ("politics", MemeFilter::Political),
    ] {
        section(&format!("Fig 8: % of posts per day with memes ({label})"));
        let series = analysis::fig8_series(&r.dataset, &r.output, filter);
        // Print weekly means to keep the output readable.
        let week = 7;
        let mut cells = Vec::new();
        let weeks = r.dataset.horizon_days / week;
        for w in 0..weeks {
            let mut row = vec![format!("week {w}")];
            for (_, s) in &series {
                let chunk = &s[w * week..((w + 1) * week).min(s.len())];
                let mean = chunk.iter().sum::<f64>() / chunk.len().max(1) as f64;
                row.push(format!("{mean:.2}"));
            }
            cells.push(row);
        }
        let mut headers = vec!["".to_string()];
        headers.extend(series.iter().map(|(n, _)| n.clone()));
        let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        println!("{}", ascii_table(&refs, &cells));
    }
}

// --------------------------------------------------------------- Fig 9

/// Fig. 9: CDFs of scores on Reddit and Gab.
pub fn fig9(r: &Repro) {
    for platform in [Community::Reddit, Community::Gab] {
        section(&format!(
            "Fig 9: score distributions on {}",
            platform.name()
        ));
        let s = analysis::fig9_scores(&r.dataset, &r.output, platform);
        let mut cells = Vec::new();
        for (label, sample) in [
            ("Politics", &s.political),
            ("Non-Politics", &s.non_political),
            ("Racism", &s.racist),
            ("Non-Racism", &s.non_racist),
            ("All memes", &s.all),
        ] {
            match Ecdf::new(sample.clone()) {
                Some(e) => cells.push(vec![
                    label.to_string(),
                    sample.len().to_string(),
                    format!("{:.1}", e.mean()),
                    format!("{:.0}", e.median()),
                    format!("{:.0}", e.quantile(0.9)),
                ]),
                None => cells.push(vec![
                    label.to_string(),
                    "0".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]),
            }
        }
        println!(
            "{}",
            ascii_table(&["Group", "n", "mean", "median", "p90"], &cells)
        );
    }
}

// -------------------------------------------------------------- Fig 10

/// Fig. 10: a narrated three-process Hawkes example with root-cause
/// attribution.
pub fn fig10(seed: u64) {
    section("Fig 10: Hawkes mechanics on a 3-process toy model");
    let model = HawkesModel::new(
        vec![0.20, 0.30, 0.25],
        vec![
            vec![0.3, 0.3, 0.2],
            vec![0.1, 0.2, 0.3],
            vec![0.2, 0.1, 0.2],
        ],
        1.0,
    )
    .expect("valid toy model");
    let mut rng = meme_stats::seeded_rng(seed);
    let sim = simulate_branching(&model, 12.0, &mut rng);
    let events = strip_lineage(&sim);
    let names = ["A", "B", "C"];
    println!("simulated {} events on processes A, B, C", events.len());
    let parents = parent_probabilities(&model, &events);
    let roots = root_causes(&model, &events);
    let show = events.len().min(8);
    for i in 0..show {
        let bg = parents[i].background;
        let root_str: Vec<String> = roots[i]
            .iter()
            .enumerate()
            .map(|(c, p)| format!("{}:{:.2}", names[c], p))
            .collect();
        println!(
            "  t={:5.2} on {}: P(background)={:.2}, root cause {{{}}}",
            events[i].t,
            names[events[i].process],
            bg,
            root_str.join(", ")
        );
    }
}

// ------------------------------------------------------- Figs 11 & 12

/// Fit influence over the annotated clusters and also compute the
/// ground-truth matrix from the simulator's lineage. Returns the full
/// per-cluster fit so callers never have to estimate twice.
pub fn influence(r: &Repro) -> (meme_hawkes::ClusterInfluence, InfluenceMatrix) {
    let estimator = InfluenceEstimator::new(Community::COUNT, FIT_BETA);
    let t0 = Instant::now();
    let fitted = r
        .output
        .estimate_influence(&r.dataset, &estimator, r.opts.threads)
        .expect("influence estimation succeeds");
    eprintln!(
        "[repro] fitted {} per-cluster Hawkes models in {:.1?}",
        fitted.per_cluster.len(),
        t0.elapsed()
    );
    // Ground truth from post lineage over the same matched posts.
    let mut truth = vec![vec![0.0f64; Community::COUNT]; Community::COUNT];
    for (post, occ) in r.dataset.posts.iter().zip(&r.output.occurrences) {
        if occ.is_none() {
            continue;
        }
        if let Some(root) = post.true_root {
            truth[root.index()][post.community.index()] += 1.0;
        }
    }
    (fitted, InfluenceMatrix::from_counts(truth))
}

fn print_matrix(title: &str, m: &[Vec<f64>]) {
    let mut cells = Vec::new();
    for (src, row) in m.iter().enumerate() {
        let mut line = vec![Community::ALL[src].name().to_string()];
        line.extend(row.iter().map(|v| format!("{v:.2}%")));
        cells.push(line);
    }
    let mut headers = vec!["src\\dst".to_string()];
    headers.extend(Community::ALL.iter().map(|c| c.name().to_string()));
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("--- {title} ---");
    println!("{}", ascii_table(&refs, &cells));
}

/// Figs. 11 and 12: raw and normalized influence, fitted vs ground
/// truth, with cluster-bootstrap confidence intervals.
pub fn fig11_12(r: &Repro) {
    let (full, truth) = influence(r);
    let fitted = &full.total;
    section("Fig 11: % of destination events caused by source");
    print_matrix(
        "fitted (Hawkes + root-cause attribution)",
        &fitted.percent_of_destination(),
    );
    print_matrix(
        "ground truth (simulator lineage)",
        &truth.percent_of_destination(),
    );

    section("Fig 12: influence normalized by source events (efficiency)");
    print_matrix("fitted", &fitted.normalized_by_source());
    let tot = fitted.total_normalized();
    let ext = fitted.total_external_normalized();
    let mut cells = Vec::new();
    for (i, c) in Community::ALL.iter().enumerate() {
        cells.push(vec![
            c.name().to_string(),
            format!("{:.2}%", tot[i]),
            format!("{:.2}%", ext[i]),
        ]);
    }
    println!("{}", ascii_table(&["Source", "Total", "Total Ext"], &cells));
    let ext_truth = truth.total_external_normalized();
    println!(
        "ground-truth external efficiency: {}",
        Community::ALL
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{} {:.1}%", c.name(), ext_truth[i]))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Cluster-bootstrap 90% CIs on the Fig. 11 cells (uncertainty the
    // paper does not report).
    if let Some(ci) = meme_hawkes::bootstrap_ci(&full.per_cluster, 300, 0.9, r.opts.seed) {
        section("Fig 11 supplement: 90% cluster-bootstrap CIs (percent of destination)");
        let mut cells = Vec::new();
        for src in 0..Community::COUNT {
            let mut line = vec![Community::ALL[src].name().to_string()];
            for dst in 0..Community::COUNT {
                line.push(format!("[{:.1}, {:.1}]", ci.lo[src][dst], ci.hi[src][dst]));
            }
            cells.push(line);
        }
        let mut headers = vec!["src\\dst".to_string()];
        headers.extend(Community::ALL.iter().map(|c| c.name().to_string()));
        let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        println!("{}", ascii_table(&refs, &cells));
    }
}

// ------------------------------------------------------- Figs 13-16

/// Figs. 13–16: influence split by racist and political meme groups
/// with KS significance stars.
pub fn fig13_16(r: &Repro) {
    let estimator = InfluenceEstimator::new(Community::COUNT, FIT_BETA);
    let fitted = r
        .output
        .estimate_influence(&r.dataset, &estimator, r.opts.threads)
        .expect("influence estimation succeeds");
    let annotated = r.output.annotated_clusters();

    let split_by = |pred: &dyn Fn(usize) -> bool| -> (Vec<InfluenceMatrix>, Vec<InfluenceMatrix>) {
        let mut yes = Vec::new();
        let mut no = Vec::new();
        for (slot, &cluster) in annotated.iter().enumerate() {
            if pred(cluster) {
                yes.push(fitted.per_cluster[slot].clone());
            } else {
                no.push(fitted.per_cluster[slot].clone());
            }
        }
        (yes, no)
    };

    for (title_raw, title_norm, a_label, b_label, pred) in [
        (
            "Fig 13: % of destination events, racist (R) vs non-racist (NR)",
            "Fig 15: normalized influence, racist vs non-racist",
            "R",
            "NR",
            Box::new(|c: usize| r.output.cluster_is_racist(c)) as Box<dyn Fn(usize) -> bool>,
        ),
        (
            "Fig 14: % of destination events, political (P) vs non-political (NP)",
            "Fig 16: normalized influence, political vs non-political",
            "P",
            "NP",
            Box::new(|c: usize| r.output.cluster_is_political(c)),
        ),
    ] {
        let (group_a, group_b) = split_by(&pred);
        section(title_raw);
        println!(
            "clusters: {} {a_label}, {} {b_label}; '*' marks KS p < 0.01",
            group_a.len(),
            group_b.len()
        );
        if group_a.is_empty() || group_b.is_empty() {
            println!("(a group is empty at this scale)");
            continue;
        }
        let split = SplitInfluence::compare(&group_a, &group_b);
        let render = |a: &[Vec<f64>], b: &[Vec<f64>]| {
            let mut cells = Vec::new();
            for src in 0..Community::COUNT {
                let mut line = vec![Community::ALL[src].name().to_string()];
                for dst in 0..Community::COUNT {
                    let star = if split.significant(src, dst, 0.01) {
                        "*"
                    } else {
                        ""
                    };
                    line.push(format!(
                        "{a_label}:{:.1} {b_label}:{:.1}{star}",
                        a[src][dst], b[src][dst]
                    ));
                }
                cells.push(line);
            }
            let mut headers = vec!["src\\dst".to_string()];
            headers.extend(Community::ALL.iter().map(|c| c.name().to_string()));
            let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            println!("{}", ascii_table(&refs, &cells));
        };
        render(&split.a_percent, &split.b_percent);
        section(title_norm);
        render(&split.a_normalized, &split.b_normalized);
    }
}

// ---------------------------------------------------------------- Perf

/// §7 performance: association throughput (images/sec against the
/// annotated medoids), MIH vs brute force.
pub fn perf(r: &Repro) {
    section("Performance (§7): association throughput");
    let annotated = r.output.annotated_clusters();
    let medoids: Vec<PHash> = annotated
        .iter()
        .map(|&c| r.output.medoid_hashes[c])
        .collect();
    println!(
        "{} query hashes vs {} annotated medoids",
        r.output.post_hashes.len(),
        medoids.len()
    );
    let mih = MihIndex::new(medoids.clone(), 8);
    let t0 = Instant::now();
    let mut matches = 0usize;
    for &h in &r.output.post_hashes {
        matches += mih.radius_query(h, 8).len();
    }
    let mih_time = t0.elapsed();
    let brute = BruteForceIndex::new(medoids);
    let t1 = Instant::now();
    let mut matches_b = 0usize;
    for &h in &r.output.post_hashes {
        matches_b += brute.radius_query(h, 8).len();
    }
    let brute_time = t1.elapsed();
    assert_eq!(matches, matches_b, "engines must agree");
    let rate = |d: std::time::Duration| r.output.post_hashes.len() as f64 / d.as_secs_f64();
    println!(
        "multi-index hashing: {:.0} images/sec ({mih_time:.1?} total)",
        rate(mih_time)
    );
    println!(
        "brute force:         {:.0} images/sec ({brute_time:.1?} total)",
        rate(brute_time)
    );
    println!("[paper: 73 images/sec on two Titan Xp GPUs vs 12K medoids]");
    let _ = SourcePlatform::ALL; // keep the import referenced at all scales
    let _ = Event::new(0.0, 0);
}
