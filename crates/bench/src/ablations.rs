//! Ablations of the paper's design choices (DESIGN.md §6) plus the §7
//! future-work extensions (origin inference, virality).

use crate::harness::{section, Repro};
use crate::sections::FIT_BETA;
use meme_cluster::dbscan::{dbscan, DbscanParams};
use meme_cluster::purity::{identity_recall, majority_purity};
use meme_core::analysis;
use meme_core::graph::{ClusterGraph, GraphConfig};
use meme_core::metric::{ClusterDistance, MetricWeights};
use meme_core::provenance::{caption_analysis, infer_origins, virality};
use meme_core::report::{ascii_table, pct};
use meme_hawkes::InfluenceEstimator;
use meme_index::{all_neighbors, MihIndex};
use meme_phash::{AverageHasher, DifferenceHasher, ImageHasher, PHash, PerceptualHasher};
use meme_simweb::Community;

/// Ablation: cluster the fringe images with pHash vs the aHash/dHash
/// baselines — why the paper picked pHash.
pub fn ablation_hashers(r: &Repro) {
    section("Ablation: hashing algorithm (pHash vs aHash vs dHash)");
    let fringe: Vec<usize> = r
        .dataset
        .posts
        .iter()
        .filter(|p| p.community.is_fringe())
        .map(|p| p.id)
        .collect();
    let truth: Vec<Option<meme_simweb::PostTruth>> = fringe
        .iter()
        .map(|&i| r.dataset.posts[i].truth_key())
        .collect();

    let mut cells = Vec::new();
    let hashers: Vec<Box<dyn ImageHasher + Sync>> = vec![
        Box::new(PerceptualHasher::new()),
        Box::new(AverageHasher),
        Box::new(DifferenceHasher),
    ];
    for hasher in &hashers {
        let hashes: Vec<PHash> = fringe
            .iter()
            .map(|&i| hasher.hash(&r.dataset.render_post_image(&r.dataset.posts[i])))
            .collect();
        let index = MihIndex::new(hashes, 8);
        let neighbors = all_neighbors(&index, 8, r.opts.threads);
        let clustering = dbscan(&neighbors, DbscanParams::default().min_pts);
        let purity = majority_purity(&clustering, &truth);
        let recall = identity_recall(&clustering, &truth);
        cells.push(vec![
            hasher.name().to_string(),
            clustering.n_clusters().to_string(),
            pct(100.0 * clustering.noise_fraction()),
            format!("{purity:.3}"),
            format!("{recall:.3}"),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &["Hasher", "#Clusters", "Noise", "Purity", "Meme recall"],
            &cells
        )
    );
    println!("(the paper's choice wins when purity stays high at comparable recall)");
}

/// Ablation: the custom metric's weight split (Eq. 1). Compares the
/// paper's 0.4/0.4/0.1/0.1 against perceptual-only and annotation-only
/// weightings via Fig. 7 component purity.
pub fn ablation_metric_weights(r: &Repro) {
    section("Ablation: custom-metric weights (Fig. 7 component purity)");
    let (descriptors, labels) = r.output.annotated_descriptors();
    let variants: [(&str, MetricWeights); 3] = [
        ("paper (0.4/0.4/0.1/0.1)", MetricWeights::FULL),
        ("perceptual only", MetricWeights::PARTIAL),
        (
            "annotations only",
            MetricWeights {
                perceptual: 0.0,
                meme: 0.8,
                people: 0.1,
                culture: 0.1,
            },
        ),
    ];
    let mut cells = Vec::new();
    for (name, weights) in variants {
        let metric = ClusterDistance {
            tau: 25.0,
            full: weights,
            partial: MetricWeights::PARTIAL,
        };
        let graph = ClusterGraph::build(
            &descriptors,
            &labels,
            &metric,
            &GraphConfig {
                kappa: 0.45,
                min_degree: 1,
            },
        );
        cells.push(vec![
            name.to_string(),
            graph.node_count().to_string(),
            graph.edge_count().to_string(),
            graph.n_components.to_string(),
            format!("{:.3}", graph.component_purity()),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &["Weights", "Nodes", "Edges", "Components", "Purity"],
            &cells
        )
    );
}

/// Ablation: DBSCAN `minPts` sweep at the production eps = 8.
pub fn ablation_min_pts(r: &Repro) {
    section("Ablation: DBSCAN minPts at eps = 8");
    let hashes: Vec<PHash> = r
        .output
        .fringe_posts
        .iter()
        .map(|&i| r.output.post_hashes[i])
        .collect();
    let truth: Vec<Option<meme_simweb::PostTruth>> = r
        .output
        .fringe_posts
        .iter()
        .map(|&i| r.dataset.posts[i].truth_key())
        .collect();
    let index = MihIndex::new(hashes, 8);
    let neighbors = all_neighbors(&index, 8, r.opts.threads);
    let mut cells = Vec::new();
    for min_pts in [2usize, 3, 5, 10, 20] {
        let clustering = dbscan(&neighbors, min_pts);
        cells.push(vec![
            min_pts.to_string(),
            clustering.n_clusters().to_string(),
            pct(100.0 * clustering.noise_fraction()),
            format!("{:.3}", majority_purity(&clustering, &truth)),
        ]);
    }
    println!(
        "{}",
        ascii_table(&["minPts", "#Clusters", "Noise", "Purity"], &cells)
    );
}

/// Ablation: kernel-decay sensitivity. The paper fixes the impulse
/// family a priori; this checks that the influence *conclusions*
/// survive kernel misspecification, and prints the nonparametric
/// impulse estimate against the assumed exponential.
pub fn ablation_beta(r: &Repro) {
    section("Ablation: Hawkes kernel decay (beta sensitivity)");
    let streams = r.output.all_cluster_events(&r.dataset);
    let mut cells = Vec::new();
    for beta in [1.0f64, FIT_BETA, 10.0] {
        let estimator = InfluenceEstimator::new(Community::COUNT, beta);
        let influence = estimator
            .estimate(&streams, r.dataset.horizon(), r.opts.threads)
            .expect("estimation succeeds");
        let ext = influence.total.total_external_normalized();
        let ranked: Vec<&str> = {
            let mut order: Vec<usize> = (0..Community::COUNT).collect();
            order.sort_by(|&a, &b| ext[b].partial_cmp(&ext[a]).expect("finite"));
            order.iter().map(|&i| Community::ALL[i].name()).collect()
        };
        cells.push(vec![
            format!("{beta}"),
            format!("{:.1}%", ext[Community::TheDonald.index()]),
            format!("{:.1}%", ext[Community::Pol.index()]),
            ranked.join(" > "),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &["beta", "T_D ext", "/pol/ ext", "efficiency ranking"],
            &cells
        )
    );
    println!("(the T_D-most / pol-least conclusion should hold across beta)");

    section("Diagnostic: nonparametric impulse estimate vs assumed kernel");
    // Fit the largest cluster and compare its impulse histogram with
    // the assumed exponential density.
    if let Some(stream) = streams.iter().max_by_key(|s| s.len()) {
        if stream.len() >= 50 {
            let fit = meme_hawkes::fit_em(
                stream,
                Community::COUNT,
                r.dataset.horizon(),
                &meme_hawkes::EmConfig {
                    beta: FIT_BETA,
                    max_iters: 100,
                    ..meme_hawkes::EmConfig::default()
                },
            )
            .expect("fit succeeds");
            let bins = 8;
            let max_lag = 2.0;
            let hist = meme_hawkes::impulse_histogram(&fit.model, stream, bins, max_lag)
                .expect("valid binning");
            let width = max_lag / bins as f64;
            let mut cells = Vec::new();
            for (b, h) in hist.iter().enumerate() {
                let mid = (b as f64 + 0.5) * width;
                let expected = FIT_BETA * (-FIT_BETA * mid).exp();
                cells.push(vec![
                    format!("{:.2}-{:.2}", b as f64 * width, (b + 1) as f64 * width),
                    format!("{h:.2}"),
                    format!("{expected:.2}"),
                ]);
            }
            println!(
                "{}",
                ascii_table(&["lag (days)", "estimated", "exp(beta=3)"], &cells)
            );
        }
    }
}

/// §7 future work: origin inference and virality profiles.
pub fn provenance(r: &Repro) {
    section("Extension (§7 future work): where are memes first created?");
    let (estimates, accuracy) = infer_origins(&r.dataset, &r.output);
    println!(
        "origin inferred from earliest matched post: {:.1}% correct over {} clusters \
         (chance: 20%)",
        100.0 * accuracy,
        estimates.len()
    );
    // Estimated-origin histogram.
    let mut counts = [0usize; Community::COUNT];
    for e in &estimates {
        counts[e.estimated.index()] += 1;
    }
    let cells: Vec<Vec<String>> = Community::ALL
        .iter()
        .map(|c| vec![c.name().to_string(), counts[c.index()].to_string()])
        .collect();
    println!("{}", ascii_table(&["Estimated origin", "Clusters"], &cells));

    section("Extension (§7 future work): which memes disseminate?");
    let estimator = InfluenceEstimator::new(Community::COUNT, FIT_BETA);
    let influence = r
        .output
        .estimate_influence(&r.dataset, &estimator, r.opts.threads)
        .expect("estimation succeeds");
    let streams = r.output.all_cluster_events(&r.dataset);
    let annotated = r.output.annotated_clusters();
    let mut cells = Vec::new();
    for (label, filter) in [
        ("all memes", analysis::MemeFilter::All),
        ("racist", analysis::MemeFilter::Racist),
        ("political", analysis::MemeFilter::Political),
    ] {
        let mut matrices = Vec::new();
        let mut group_streams = Vec::new();
        for (slot, &cluster) in annotated.iter().enumerate() {
            if filter.accepts(&r.output, cluster) {
                matrices.push(influence.per_cluster[slot].clone());
                group_streams.push(streams[slot].clone());
            }
        }
        if matrices.is_empty() {
            continue;
        }
        let profile = virality(&matrices, &group_streams);
        cells.push(vec![
            label.to_string(),
            profile.clusters.to_string(),
            format!("{:.0}", profile.events),
            format!("{:.3}", profile.mean_offspring),
            pct(100.0 * profile.external_share),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &[
                "Group",
                "Clusters",
                "Events",
                "Offspring/event",
                "External share"
            ],
            &cells
        )
    );

    section("Extension (§7 future work): caption detection as an OCR proxy");
    let captions = caption_analysis(&r.dataset, &r.output);
    let with_caption = captions.actual.iter().filter(|a| **a).count();
    println!(
        "annotated clusters with a true caption edit: {}/{}; detector accuracy {:.1}%",
        with_caption,
        captions.actual.len(),
        100.0 * captions.accuracy
    );
    // Dissemination split by detected caption: does the classic image
    // macro spread differently?
    let mut cap_m = Vec::new();
    let mut cap_s = Vec::new();
    let mut plain_m = Vec::new();
    let mut plain_s = Vec::new();
    for (slot, detected) in captions.detected.iter().enumerate() {
        if *detected {
            cap_m.push(influence.per_cluster[slot].clone());
            cap_s.push(streams[slot].clone());
        } else {
            plain_m.push(influence.per_cluster[slot].clone());
            plain_s.push(streams[slot].clone());
        }
    }
    if !cap_m.is_empty() && !plain_m.is_empty() {
        let cap = virality(&cap_m, &cap_s);
        let plain = virality(&plain_m, &plain_s);
        println!(
            "captioned clusters:   {} clusters, external share {:.1}%",
            cap.clusters,
            100.0 * cap.external_share
        );
        println!(
            "uncaptioned clusters: {} clusters, external share {:.1}%",
            plain.clusters,
            100.0 * plain.external_share
        );
    }
}
