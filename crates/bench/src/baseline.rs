//! Persisted observability baselines — the `BENCH_*.json` artifacts.
//!
//! Two reproducible workloads, each exported as a metrics registry
//! (DESIGN.md §7) wrapped in a small provenance envelope:
//!
//! * **`BENCH_pipeline.json`** — a full checkpointless pipeline run
//!   (Steps 1–6 under per-stage spans) plus instrumented Step-7
//!   influence estimation, at the harness scale/seed;
//! * **`BENCH_clustering.json`** — the Steps 2–3 kernel isolated: the
//!   same synthetic corpus pushed through each Hamming engine (build +
//!   `all_neighbors` spans, neighbor-pair counters), then DBSCAN.
//!
//! Both validate with `memes validate-metrics` (the wrapper form), so
//! CI can archive them as trend baselines.

use meme_core::pipeline::{Pipeline, PipelineConfig, ScreenshotFilterMode};
use meme_core::runner::PipelineRunner;
use meme_hawkes::InfluenceEstimator;
use meme_index::{all_neighbors, BkTreeIndex, BruteForceIndex, HammingIndex, MihIndex};
use meme_metrics::{Metrics, Registry};
use meme_phash::PHash;
use meme_simweb::{Community, SimConfig, SimScale};
use meme_stats::seeded_rng;
use rand::RngExt;
use std::sync::Arc;

/// The paper's clustering radius (eps = θ = 8).
const EPS: u32 = 8;

/// DBSCAN's minPts (paper: 5).
const MIN_PTS: usize = 5;

/// Wrap a registry export in the `BENCH_*.json` provenance envelope.
fn wrap(bench: &str, scale: &str, seed: u64, metrics_json: &str) -> String {
    format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"scale\": \"{scale}\",\n  \
         \"seed\": {seed},\n  \"metrics\": {metrics_json}\n}}\n"
    )
}

fn scale_label(scale: SimScale) -> &'static str {
    match scale {
        SimScale::Tiny => "tiny",
        SimScale::Small => "small",
        SimScale::Default => "default",
    }
}

/// Run the full pipeline (oracle screenshot filter) plus Step-7
/// influence under a metrics registry; return the `BENCH_pipeline.json`
/// document.
pub fn pipeline_baseline(scale: SimScale, seed: u64, threads: usize) -> String {
    let dataset = SimConfig::new(scale, seed).generate();
    let registry = Arc::new(Registry::new());
    let metrics = Metrics::from_registry(Arc::clone(&registry));
    let config = PipelineConfig {
        screenshot_filter: ScreenshotFilterMode::Oracle,
        threads,
        ..PipelineConfig::default()
    };
    let output = PipelineRunner::new(Pipeline::new(config))
        .with_metrics(metrics.clone())
        .run(&dataset)
        .expect("pipeline runs on generated data")
        .expect_complete();
    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
    let _ = output.estimate_influence_instrumented(&dataset, &estimator, threads, &metrics);
    wrap("pipeline", scale_label(scale), seed, &registry.to_json())
}

/// A corpus with planted Hamming families (center + satellites inside
/// the radius) over background noise — enough structure that DBSCAN
/// finds clusters and the engines' index structures are exercised.
fn clustered_corpus(seed: u64, families: usize, noise: usize) -> Vec<PHash> {
    let mut rng = seeded_rng(seed);
    let mut hashes = Vec::with_capacity(families * (MIN_PTS + 2) + noise);
    for _ in 0..families {
        let center = PHash(rng.random());
        hashes.push(center);
        for _ in 0..MIN_PTS + 1 {
            let flips = rng.random_range(1..=EPS as usize / 2);
            let mut positions = Vec::with_capacity(flips);
            while positions.len() < flips {
                let p = rng.random_range(0..64u8);
                if !positions.contains(&p) {
                    positions.push(p);
                }
            }
            hashes.push(center.with_flipped_bits(&positions));
        }
    }
    for _ in 0..noise {
        hashes.push(PHash(rng.random()));
    }
    hashes
}

/// Build one engine and run `all_neighbors` over it, recording build
/// and query spans plus neighbor-pair counters under
/// `clustering/<engine>/…`.
fn timed_engine<I: HammingIndex + Sync>(
    metrics: &Metrics,
    engine: &str,
    threads: usize,
    n_queries: usize,
    build: impl FnOnce() -> I,
) -> Vec<Vec<usize>> {
    let span = metrics.span(&format!("clustering/{engine}/build"));
    let index = build();
    span.finish();
    let span = metrics.span(&format!("clustering/{engine}/all_neighbors"));
    let neighbors = all_neighbors(&index, EPS, threads);
    let elapsed = span.finish();
    let pairs: usize = neighbors.iter().map(Vec::len).sum();
    metrics.add(&format!("clustering.{engine}.neighbor_pairs"), pairs as u64);
    if elapsed > 0.0 {
        metrics.gauge(
            &format!("clustering.{engine}.queries_per_sec"),
            n_queries as f64 / elapsed,
        );
    }
    neighbors
}

/// Time each Hamming engine (build + `all_neighbors`) and DBSCAN on the
/// same planted corpus; return the `BENCH_clustering.json` document.
pub fn clustering_baseline(seed: u64, threads: usize) -> String {
    let hashes = clustered_corpus(seed, 150, 1500);
    let registry = Arc::new(Registry::new());
    let metrics = Metrics::from_registry(Arc::clone(&registry));
    metrics.add("clustering.corpus_hashes", hashes.len() as u64);

    let mih = timed_engine(&metrics, "mih", threads, hashes.len(), || {
        MihIndex::new(hashes.clone(), EPS)
    });
    let bk = timed_engine(&metrics, "bk_tree", threads, hashes.len(), || {
        BkTreeIndex::new(hashes.clone())
    });
    let brute = timed_engine(&metrics, "brute_force", threads, hashes.len(), || {
        BruteForceIndex::new(hashes.clone())
    });
    // The engines must agree; a baseline taken off a divergent engine
    // would be comparing different work.
    assert_eq!(mih, bk, "bk_tree diverged from mih");
    assert_eq!(mih, brute, "brute_force diverged from mih");

    let neighbors = mih;
    let span = metrics.span("clustering/dbscan");
    let clustering = meme_cluster::dbscan::try_dbscan(&neighbors, MIN_PTS)
        .expect("dbscan runs on planted corpus");
    span.finish();
    metrics.add("clustering.clusters", clustering.n_clusters() as u64);
    metrics.add("clustering.noise_posts", clustering.noise_count() as u64);

    wrap("clustering", "synthetic", seed, &registry.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_baseline_is_valid_and_finds_clusters() {
        let doc = clustering_baseline(7, 2);
        // The wrapper embeds a registry export under "metrics".
        assert!(doc.contains("\"bench\": \"clustering\""));
        assert!(doc.contains("\"schema_version\""));
        assert!(doc.contains("clustering/mih/all_neighbors"));
        assert!(doc.contains("clustering.clusters"));
    }

    #[test]
    fn pipeline_baseline_carries_stage_spans_and_hawkes_counters() {
        let doc = pipeline_baseline(SimScale::Tiny, 7, 0);
        assert!(doc.contains("\"bench\": \"pipeline\""));
        for needle in [
            "pipeline/hash",
            "pipeline/cluster",
            "pipeline/site",
            "pipeline/annotate",
            "pipeline/associate",
            "pipeline/influence",
            "hawkes.em_iterations_total",
            "hash.images_per_sec",
        ] {
            assert!(doc.contains(needle), "missing {needle}");
        }
    }
}
