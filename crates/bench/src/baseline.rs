//! Persisted observability baselines — the `BENCH_*.json` artifacts.
//!
//! Two reproducible workloads, each exported as a metrics registry
//! (DESIGN.md §7) wrapped in a small provenance envelope:
//!
//! * **`BENCH_pipeline.json`** — a full checkpointless pipeline run
//!   (Steps 1–6 under per-stage spans) plus instrumented Step-7
//!   influence estimation, at the harness scale/seed;
//! * **`BENCH_clustering.json`** — the Steps 2–3 kernel isolated: the
//!   same synthetic corpus pushed through each Hamming engine (build +
//!   `all_neighbors` spans, neighbor-pair counters), then DBSCAN;
//! * **`BENCH_index.json`** — the CSR query engine vs the frozen
//!   pre-CSR engine ([`crate::legacy`]): build time and `all_neighbors`
//!   throughput at N ∈ {1k, 10k, 50k}, eps = 8, duplicate fractions
//!   {0%, 50%, 90%}, with explicit speedup-ratio gauges;
//! * **`BENCH_hash.json`** — Step 1 isolated: the render-cached
//!   scratch-reuse hash kernel vs the frozen pre-optimization hash
//!   stage ([`crate::legacy`]) at 1/2/8 threads, with per-`ImageRef`
//!   kind breakdowns, images/sec, and speedup-ratio gauges.
//!
//! All validate with `memes validate-metrics` (the wrapper form), so
//! CI can archive them as trend baselines.

use crate::legacy::{legacy_all_neighbors, legacy_hash_posts, LegacyMihIndex};
use meme_core::pipeline::{Pipeline, PipelineConfig, ScreenshotFilterMode};
use meme_core::runner::PipelineRunner;
use meme_core::supervise::SupervisedRunner;
use meme_hawkes::InfluenceEstimator;
use meme_index::{
    all_neighbors, effective_threads, symmetric_neighbors, BkTreeIndex, BruteForceIndex,
    HammingIndex, HashGroups, MihIndex,
};
use meme_metrics::{Metrics, Registry};
use meme_phash::{HashScratch, ImageHasher, PHash, PerceptualHasher};
use meme_simweb::{Community, Dataset, ImageRef, RenderCache, RenderStats, SimConfig, SimScale};
use meme_stats::seeded_rng;
use rand::RngExt;
use std::sync::Arc;

/// The paper's clustering radius (eps = θ = 8).
const EPS: u32 = 8;

/// DBSCAN's minPts (paper: 5).
const MIN_PTS: usize = 5;

/// Wrap a registry export in the `BENCH_*.json` provenance envelope
/// (the wrapper form `memes validate-metrics` accepts).
pub fn wrap(bench: &str, scale: &str, seed: u64, metrics_json: &str) -> String {
    format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"scale\": \"{scale}\",\n  \
         \"seed\": {seed},\n  \"metrics\": {metrics_json}\n}}\n"
    )
}

/// The `--scale` spelling of a [`SimScale`], for provenance envelopes.
pub fn scale_label(scale: SimScale) -> &'static str {
    match scale {
        SimScale::Tiny => "tiny",
        SimScale::Small => "small",
        SimScale::Default => "default",
    }
}

/// Run the full pipeline (oracle screenshot filter) plus Step-7
/// influence under a metrics registry; return the `BENCH_pipeline.json`
/// document.
///
/// Also measures [`SupervisedRunner`] (DESIGN.md §11) overhead against
/// the bare runner and records it as gauges (`supervise.overhead_ratio`
/// and the two raw `pipeline`-span totals). The comparison is paired
/// and noise-robust: after the instrumented baseline pass, the bare
/// output is dropped (so neither side runs under its memory pressure)
/// and bare/supervised passes are interleaved under fresh registries,
/// taking the **minimum** span total of each side — min-vs-min cancels
/// cold-start and scheduling noise that a single A/B difference cannot.
/// The runner-level guard is that supervision costs ≤ 2% wall time on a
/// healthy run.
pub fn pipeline_baseline(scale: SimScale, seed: u64, threads: usize) -> String {
    let dataset = SimConfig::new(scale, seed).generate();
    let registry = Arc::new(Registry::new());
    let metrics = Metrics::from_registry(Arc::clone(&registry));
    let config = PipelineConfig {
        screenshot_filter: ScreenshotFilterMode::Oracle,
        threads,
        ..PipelineConfig::default()
    };
    let output = PipelineRunner::new(Pipeline::new(config.clone()))
        .with_metrics(metrics.clone())
        .run(&dataset)
        .expect("pipeline runs on generated data")
        .expect_complete();
    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
    let _ = output.estimate_influence_instrumented(&dataset, &estimator, threads, &metrics);
    drop(output);

    // Interleaved S/B/S passes under fresh registries (the instrumented
    // pass above is the first bare sample), so stage spans never
    // pollute the baseline document and both sides get a warm sample.
    let mut bare_secs = pipeline_span_secs(&registry);
    let mut supervised_secs = f64::INFINITY;
    for round in 0..7 {
        let reg = Arc::new(Registry::new());
        let m = Metrics::from_registry(Arc::clone(&reg));
        if round % 2 == 0 {
            let _ = SupervisedRunner::new(Pipeline::new(config.clone()))
                .with_metrics(m)
                .run(&dataset)
                .expect("supervised pipeline runs on generated data")
                .expect_complete();
            supervised_secs = supervised_secs.min(pipeline_span_secs(&reg));
        } else {
            let _ = PipelineRunner::new(Pipeline::new(config.clone()))
                .with_metrics(m)
                .run(&dataset)
                .expect("pipeline runs on generated data")
                .expect_complete();
            bare_secs = bare_secs.min(pipeline_span_secs(&reg));
        }
    }
    metrics.gauge("supervise.bare_pipeline_secs", bare_secs);
    metrics.gauge("supervise.supervised_pipeline_secs", supervised_secs);
    if bare_secs > 0.0 {
        metrics.gauge("supervise.overhead_ratio", supervised_secs / bare_secs);
    }

    wrap("pipeline", scale_label(scale), seed, &registry.to_json())
}

/// Total seconds of a registry's top-level `pipeline` span.
fn pipeline_span_secs(registry: &Registry) -> f64 {
    registry
        .snapshot()
        .spans
        .get("pipeline")
        .map(|s| s.total_secs)
        .unwrap_or(0.0)
}

/// Extract the `supervise.overhead_ratio` gauge back out of a
/// `BENCH_pipeline.json` document (the bin uses it to warn when
/// supervision exceeds its ≤ 2% overhead budget).
pub fn supervision_overhead_ratio(doc: &str) -> Option<f64> {
    let marker = "\"supervise.overhead_ratio\": ";
    let at = doc.find(marker)? + marker.len();
    let rest = &doc[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// A corpus with planted Hamming families (center + satellites inside
/// the radius) over background noise — enough structure that DBSCAN
/// finds clusters and the engines' index structures are exercised.
fn clustered_corpus(seed: u64, families: usize, noise: usize) -> Vec<PHash> {
    let mut rng = seeded_rng(seed);
    let mut hashes = Vec::with_capacity(families * (MIN_PTS + 2) + noise);
    for _ in 0..families {
        let center = PHash(rng.random());
        hashes.push(center);
        for _ in 0..MIN_PTS + 1 {
            let flips = rng.random_range(1..=EPS as usize / 2);
            let mut positions = Vec::with_capacity(flips);
            while positions.len() < flips {
                let p = rng.random_range(0..64u8);
                if !positions.contains(&p) {
                    positions.push(p);
                }
            }
            hashes.push(center.with_flipped_bits(&positions));
        }
    }
    for _ in 0..noise {
        hashes.push(PHash(rng.random()));
    }
    hashes
}

/// Build one engine and run `all_neighbors` over it, recording build
/// and query spans plus neighbor-pair counters under
/// `clustering/<engine>/…`.
fn timed_engine<I: HammingIndex + Sync>(
    metrics: &Metrics,
    engine: &str,
    threads: usize,
    n_queries: usize,
    build: impl FnOnce() -> I,
) -> Vec<Vec<usize>> {
    let span = metrics.span(&format!("clustering/{engine}/build"));
    let index = build();
    span.finish();
    let span = metrics.span(&format!("clustering/{engine}/all_neighbors"));
    let neighbors = all_neighbors(&index, EPS, threads);
    let elapsed = span.finish();
    let pairs: usize = neighbors.iter().map(Vec::len).sum();
    metrics.add(&format!("clustering.{engine}.neighbor_pairs"), pairs as u64);
    if elapsed > 0.0 {
        metrics.gauge(
            &format!("clustering.{engine}.queries_per_sec"),
            n_queries as f64 / elapsed,
        );
    }
    neighbors
}

/// Time each Hamming engine (build + `all_neighbors`) and DBSCAN on the
/// same planted corpus; return the `BENCH_clustering.json` document.
pub fn clustering_baseline(seed: u64, threads: usize) -> String {
    let hashes = clustered_corpus(seed, 150, 1500);
    let registry = Arc::new(Registry::new());
    let metrics = Metrics::from_registry(Arc::clone(&registry));
    metrics.add("clustering.corpus_hashes", hashes.len() as u64);

    let mih = timed_engine(&metrics, "mih", threads, hashes.len(), || {
        MihIndex::new(hashes.clone(), EPS)
    });
    let bk = timed_engine(&metrics, "bk_tree", threads, hashes.len(), || {
        BkTreeIndex::new(hashes.clone())
    });
    let brute = timed_engine(&metrics, "brute_force", threads, hashes.len(), || {
        BruteForceIndex::new(hashes.clone())
    });
    // The engines must agree; a baseline taken off a divergent engine
    // would be comparing different work.
    assert_eq!(mih, bk, "bk_tree diverged from mih");
    assert_eq!(mih, brute, "brute_force diverged from mih");

    let neighbors = mih;
    let span = metrics.span("clustering/dbscan");
    let clustering = meme_cluster::dbscan::try_dbscan(&neighbors, MIN_PTS)
        .expect("dbscan runs on planted corpus");
    span.finish();
    metrics.add("clustering.clusters", clustering.n_clusters() as u64);
    metrics.add("clustering.noise_posts", clustering.noise_count() as u64);

    wrap("clustering", "synthetic", seed, &registry.to_json())
}

/// The `BENCH_index.json` grid: corpus sizes × duplicate fractions.
const INDEX_BENCH_SIZES: [usize; 3] = [1_000, 10_000, 50_000];
const INDEX_BENCH_DUP_PCTS: [usize; 3] = [0, 50, 90];

/// A corpus of `n` hashes where `dup_pct` percent of the items are
/// exact copies of earlier items. The distinct base is the planted
/// clustered corpus (families within eps plus background noise), and
/// copies are spread round-robin over it so no single value dominates —
/// the regime where the pre-change engine ran MIH, not its brute-force
/// degenerate fallback.
fn duplicated_corpus(seed: u64, n: usize, dup_pct: usize) -> Vec<PHash> {
    let n_dups = n * dup_pct / 100;
    let n_base = n - n_dups;
    let families = (n_base / 30).max(1);
    let mut base = clustered_corpus(
        seed,
        families,
        n_base.saturating_sub(families * (MIN_PTS + 2)),
    );
    base.truncate(n_base);
    let mut rng = seeded_rng(seed ^ 0xD0D0);
    let mut out = base.clone();
    for _ in 0..n - out.len() {
        out.push(base[rng.random_range(0..base.len())]);
    }
    out
}

/// One cell of the index-engine comparison: the frozen legacy engine
/// and the CSR + dedup + symmetric engine over the same corpus, under
/// `index/<n>/<dup>/…` spans, with throughput and speedup gauges.
fn timed_index_cell(metrics: &Metrics, seed: u64, n: usize, dup_pct: usize, threads: usize) {
    let hashes = duplicated_corpus(seed, n, dup_pct);
    let tag = format!("{n}x{dup_pct}");
    metrics.add(&format!("index_bench.{tag}.items"), hashes.len() as u64);

    let span = metrics.span(&format!("index/{tag}/legacy_build"));
    let legacy = LegacyMihIndex::new(hashes.clone(), EPS);
    span.finish();
    let span = metrics.span(&format!("index/{tag}/legacy_all_neighbors"));
    let legacy_neighbors = legacy_all_neighbors(&legacy, EPS, threads);
    let legacy_elapsed = span.finish();

    let span = metrics.span(&format!("index/{tag}/csr_build"));
    let groups = HashGroups::new(&hashes);
    let index = MihIndex::new(groups.unique().to_vec(), EPS);
    let csr_build = span.finish();
    let span = metrics.span(&format!("index/{tag}/csr_all_neighbors"));
    let (csr_neighbors, stats) = symmetric_neighbors(&index, &groups, EPS, threads);
    let csr_elapsed = span.finish();

    // A speedup over different answers would be meaningless.
    assert_eq!(csr_neighbors, legacy_neighbors, "CSR diverged from legacy");

    metrics.add(
        &format!("index_bench.{tag}.unique_hashes"),
        stats.unique as u64,
    );
    metrics.add(
        &format!("index_bench.{tag}.unique_pairs"),
        stats.unique_pairs,
    );
    metrics.add(&format!("index_bench.{tag}.verified"), stats.verified);
    metrics.gauge(
        &format!("index_bench.{tag}.collapse_ratio"),
        groups.collapse_ratio(),
    );
    metrics.gauge(
        &format!("index_bench.{tag}.memory_bytes"),
        index.memory_bytes() as f64,
    );
    if legacy_elapsed > 0.0 {
        metrics.gauge(
            &format!("index_bench.{tag}.legacy_queries_per_sec"),
            n as f64 / legacy_elapsed,
        );
    }
    if csr_elapsed > 0.0 {
        metrics.gauge(
            &format!("index_bench.{tag}.csr_queries_per_sec"),
            n as f64 / csr_elapsed,
        );
        metrics.gauge(
            &format!("index_bench.{tag}.speedup_all_neighbors"),
            legacy_elapsed / csr_elapsed,
        );
    }
    if csr_build > 0.0 {
        metrics.gauge(
            &format!("index_bench.{tag}.csr_builds_per_sec"),
            1.0 / csr_build,
        );
    }
}

/// Compare the CSR engine against the frozen pre-CSR engine over the
/// size × duplicate-fraction grid; return the `BENCH_index.json`
/// document. `max_n` caps the corpus size (CI smoke runs pass a cap;
/// the committed baseline uses `usize::MAX`).
pub fn index_baseline(seed: u64, threads: usize, max_n: usize) -> String {
    let registry = Arc::new(Registry::new());
    let metrics = Metrics::from_registry(Arc::clone(&registry));
    metrics.add("index_bench.eps", EPS as u64);
    for &n in INDEX_BENCH_SIZES.iter().filter(|&&n| n <= max_n) {
        for &dup_pct in &INDEX_BENCH_DUP_PCTS {
            timed_index_cell(&metrics, seed, n, dup_pct, threads);
        }
    }
    wrap("index", "synthetic", seed, &registry.to_json())
}

/// `BENCH_hash.json`: thread counts for the hash-stage comparison.
const HASH_BENCH_THREADS: [usize; 3] = [1, 2, 8];

/// The current hash stage *without* the render cache: full per-post
/// renders through `Dataset::render_post_image`, but the scratch-reuse
/// kernel. Isolates the kernel's contribution from the cache's.
fn bench_hash_uncached(dataset: &Dataset, threads: usize) -> Vec<PHash> {
    let n = dataset.posts.len();
    let threads = effective_threads(threads, n);
    let chunk_len = n.div_ceil(threads);
    let mut hashes = vec![PHash::default(); n];
    crossbeam::thread::scope(|s| {
        for (chunk_id, slot_chunk) in hashes.chunks_mut(chunk_len).enumerate() {
            s.spawn(move |_| {
                let hasher = PerceptualHasher::new();
                let mut scratch = HashScratch::new();
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    let post = &dataset.posts[chunk_id * chunk_len + off];
                    *slot = hasher.hash_into(&dataset.render_post_image(post), &mut scratch);
                }
            });
        }
    })
    .expect("hashing worker panicked");
    hashes
}

/// The full current hash stage: shared render cache + per-worker
/// scratch, mirroring `meme-core`'s clean `hash_posts` loop.
fn bench_hash_cached(
    dataset: &Dataset,
    cache: &RenderCache,
    threads: usize,
) -> (Vec<PHash>, RenderStats) {
    let n = dataset.posts.len();
    let threads = effective_threads(threads, n);
    let chunk_len = n.div_ceil(threads);
    let mut worker_stats = vec![RenderStats::default(); n.div_ceil(chunk_len)];
    let mut hashes = vec![PHash::default(); n];
    crossbeam::thread::scope(|s| {
        for ((chunk_id, slot_chunk), stats) in hashes
            .chunks_mut(chunk_len)
            .enumerate()
            .zip(worker_stats.iter_mut())
        {
            s.spawn(move |_| {
                let hasher = PerceptualHasher::new();
                let mut scratch = HashScratch::new();
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    let post = &dataset.posts[chunk_id * chunk_len + off];
                    let img = dataset.render_post_cached(post, cache, stats);
                    *slot = hasher.hash_into(img.as_image(), &mut scratch);
                }
            });
        }
    })
    .expect("hashing worker panicked");
    let mut stats = RenderStats::default();
    for s in &worker_stats {
        stats.merge(s);
    }
    (hashes, stats)
}

/// Compare the hash stage against the frozen pre-optimization path
/// ([`crate::legacy`]) at 1/2/8 threads; return the `BENCH_hash.json`
/// document. Three rungs per thread count — frozen legacy, the
/// scratch-reuse kernel over uncached renders, and the full cached
/// stage — with byte-equality asserted between all three. `max_n` caps
/// the post count (CI smoke runs pass a cap; the committed baseline
/// uses `usize::MAX`).
pub fn hash_baseline(scale: SimScale, seed: u64, max_n: usize) -> String {
    let mut dataset = SimConfig::new(scale, seed).generate();
    if dataset.posts.len() > max_n {
        dataset.posts.truncate(max_n);
    }
    let n = dataset.posts.len();
    let registry = Arc::new(Registry::new());
    let metrics = Metrics::from_registry(Arc::clone(&registry));
    metrics.add("hash_bench.images", n as u64);

    let span = metrics.span("hash/cache_build");
    let cache = RenderCache::build(&dataset);
    span.finish();
    metrics.gauge("hash.render_cache.entries", cache.entries() as f64);
    metrics.gauge("hash.render_cache.bytes", cache.bytes() as f64);

    for &threads in &HASH_BENCH_THREADS {
        let span = metrics.span(&format!("hash/{threads}/legacy"));
        let legacy = legacy_hash_posts(&dataset, threads);
        let legacy_elapsed = span.finish();

        let span = metrics.span(&format!("hash/{threads}/kernel_uncached"));
        let uncached = bench_hash_uncached(&dataset, threads);
        let uncached_elapsed = span.finish();

        let span = metrics.span(&format!("hash/{threads}/cached"));
        let (cached, stats) = bench_hash_cached(&dataset, &cache, threads);
        let cached_elapsed = span.finish();

        // A speedup over different bits would be meaningless.
        assert_eq!(uncached, legacy, "kernel diverged from legacy bits");
        assert_eq!(cached, legacy, "cached stage diverged from legacy bits");

        if threads == HASH_BENCH_THREADS[0] {
            metrics.add("hash.render_cache.hits", stats.hits);
            metrics.add("hash.render_cache.misses", stats.misses);
            metrics.add("hash.rendered.meme_variant", stats.meme_variant);
            metrics.add("hash.rendered.one_off", stats.one_off);
            metrics.add("hash.rendered.screenshot", stats.screenshot);
            metrics.add("hash.rendered.blank", stats.blank);
        }
        if legacy_elapsed > 0.0 {
            metrics.gauge(
                &format!("hash_bench.{threads}.legacy_images_per_sec"),
                n as f64 / legacy_elapsed,
            );
        }
        if uncached_elapsed > 0.0 {
            metrics.gauge(
                &format!("hash_bench.{threads}.kernel_images_per_sec"),
                n as f64 / uncached_elapsed,
            );
            metrics.gauge(
                &format!("hash_bench.{threads}.speedup_kernel"),
                legacy_elapsed / uncached_elapsed,
            );
        }
        if cached_elapsed > 0.0 {
            metrics.gauge(
                &format!("hash_bench.{threads}.cached_images_per_sec"),
                n as f64 / cached_elapsed,
            );
            metrics.gauge(
                &format!("hash_bench.{threads}.speedup_cached"),
                legacy_elapsed / cached_elapsed,
            );
        }
    }

    // Per-kind post mix, so the per-kind throughput story is readable
    // straight off the artifact.
    let mut kinds = [0u64; 4];
    for post in &dataset.posts {
        match post.image {
            ImageRef::MemeVariant { .. } => kinds[0] += 1,
            ImageRef::OneOff { .. } => kinds[1] += 1,
            ImageRef::Screenshot { .. } => kinds[2] += 1,
            ImageRef::Blank => kinds[3] += 1,
        }
    }
    metrics.add("hash_bench.posts.meme_variant", kinds[0]);
    metrics.add("hash_bench.posts.one_off", kinds[1]);
    metrics.add("hash_bench.posts.screenshot", kinds[2]);
    metrics.add("hash_bench.posts.blank", kinds[3]);

    wrap("hash", scale_label(scale), seed, &registry.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_baseline_is_valid_and_finds_clusters() {
        let doc = clustering_baseline(7, 2);
        // The wrapper embeds a registry export under "metrics".
        assert!(doc.contains("\"bench\": \"clustering\""));
        assert!(doc.contains("\"schema_version\""));
        assert!(doc.contains("clustering/mih/all_neighbors"));
        assert!(doc.contains("clustering.clusters"));
    }

    #[test]
    fn index_baseline_reports_speedups_at_reduced_scale() {
        // Capped at 1k so the test stays fast; the grid logic, span
        // names, and equality assertion are identical at full scale.
        let doc = index_baseline(7, 2, 1_000);
        for needle in [
            "\"bench\": \"index\"",
            "index/1000x0/legacy_all_neighbors",
            "index/1000x90/csr_all_neighbors",
            "index_bench.1000x50.collapse_ratio",
            "index_bench.1000x90.speedup_all_neighbors",
        ] {
            assert!(doc.contains(needle), "missing {needle}");
        }
        assert!(!doc.contains("index/10000x0"), "cap ignored");
    }

    #[test]
    fn hash_baseline_reports_speedups_at_reduced_scale() {
        // Capped at 400 posts so the test stays fast; the rung
        // structure, span names, and equality assertions are identical
        // at full scale.
        let doc = hash_baseline(SimScale::Tiny, 7, 400);
        for needle in [
            "\"bench\": \"hash\"",
            "hash/cache_build",
            "hash/1/legacy",
            "hash/1/kernel_uncached",
            "hash/8/cached",
            "hash_bench.1.speedup_cached",
            "hash_bench.1.speedup_kernel",
            "hash.render_cache.hits",
            "hash.render_cache.entries",
            "hash_bench.posts.meme_variant",
        ] {
            assert!(doc.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn duplicated_corpus_hits_requested_fraction() {
        for &pct in &INDEX_BENCH_DUP_PCTS {
            let corpus = duplicated_corpus(3, 1_000, pct);
            assert_eq!(corpus.len(), 1_000);
            let groups = HashGroups::new(&corpus);
            // Unique count can only be at most the non-duplicate base
            // (families add further collisions only by chance).
            assert!(groups.len_unique() <= 1_000 - 1_000 * pct / 100);
            if pct >= 50 {
                assert!(groups.collapse_ratio() <= 0.55, "pct {pct}");
            }
        }
    }

    /// Diagnostic (run with `--ignored --nocapture`): per-stage span
    /// comparison between the bare and supervised runner over paired
    /// rounds, to localize any supervision overhead to a stage before
    /// trusting the aggregate `supervise.overhead_ratio` gauge.
    #[test]
    #[ignore]
    fn supervision_overhead_profile() {
        use meme_core::runner::StageId;
        let dataset = SimConfig::new(SimScale::Tiny, 7).generate();
        let config = PipelineConfig {
            screenshot_filter: ScreenshotFilterMode::Oracle,
            ..PipelineConfig::default()
        };
        let mut bare = vec![f64::INFINITY; StageId::ALL.len() + 1];
        let mut sup = vec![f64::INFINITY; StageId::ALL.len() + 1];
        for round in 0..8 {
            let reg = Arc::new(Registry::new());
            let m = Metrics::from_registry(Arc::clone(&reg));
            let mins = if round % 2 == 0 {
                let _ = SupervisedRunner::new(Pipeline::new(config.clone()))
                    .with_metrics(m)
                    .run(&dataset)
                    .expect("supervised run")
                    .expect_complete();
                &mut sup
            } else {
                let _ = PipelineRunner::new(Pipeline::new(config.clone()))
                    .with_metrics(m)
                    .run(&dataset)
                    .expect("bare run")
                    .expect_complete();
                &mut bare
            };
            let snap = reg.snapshot();
            for (k, stage) in StageId::ALL.iter().enumerate() {
                let secs = snap.spans[&format!("pipeline/{stage}")].total_secs;
                mins[k] = mins[k].min(secs);
            }
            let total = snap.spans["pipeline"].total_secs;
            mins[StageId::ALL.len()] = mins[StageId::ALL.len()].min(total);
        }
        for (k, stage) in StageId::ALL.iter().enumerate() {
            println!(
                "{stage:>10}: bare {:8.4}s  supervised {:8.4}s  ({:+.2}%)",
                bare[k],
                sup[k],
                (sup[k] / bare[k] - 1.0) * 100.0
            );
        }
        let k = StageId::ALL.len();
        println!(
            "{:>10}: bare {:8.4}s  supervised {:8.4}s  ({:+.2}%)",
            "total",
            bare[k],
            sup[k],
            (sup[k] / bare[k] - 1.0) * 100.0
        );
    }

    #[test]
    fn pipeline_baseline_carries_stage_spans_and_hawkes_counters() {
        let doc = pipeline_baseline(SimScale::Tiny, 7, 0);
        assert!(doc.contains("\"bench\": \"pipeline\""));
        for needle in [
            "pipeline/hash",
            "pipeline/cluster",
            "pipeline/site",
            "pipeline/annotate",
            "pipeline/associate",
            "pipeline/influence",
            "hawkes.em_iterations_total",
            "hash.images_per_sec",
        ] {
            assert!(doc.contains(needle), "missing {needle}");
        }
    }
}
