//! Shared setup for the `repro-*` binaries.

use meme_core::pipeline::{Pipeline, PipelineConfig, PipelineOutput, ScreenshotFilterMode};
use meme_simweb::{Dataset, SimConfig, SimScale};
use std::time::Instant;

/// Parsed command-line options common to every repro binary.
#[derive(Debug, Clone)]
pub struct Options {
    /// Dataset scale.
    pub scale: SimScale,
    /// Master seed.
    pub seed: u64,
    /// Train the real CNN screenshot filter instead of the oracle.
    pub train_filter: bool,
    /// Worker threads (0 = all).
    pub threads: usize,
    /// Output directory for binaries that persist artifacts
    /// (`bench-baselines`); `None` means the current directory.
    pub out_dir: Option<String>,
    /// Cap on the index-benchmark corpus size (`bench-baselines`);
    /// lets CI smoke runs skip the largest grid cells.
    pub index_max_n: usize,
    /// Cap on the hash-benchmark post count (`bench-baselines`); lets
    /// CI smoke runs keep the slow frozen-legacy rung short.
    pub hash_max_n: usize,
}

impl Options {
    /// Parse from `std::env::args`. Recognized flags:
    /// `--scale tiny|small|default`, `--seed N`, `--train-filter`,
    /// `--threads N`, `--out-dir DIR`, `--index-max-n N`,
    /// `--hash-max-n N`.
    pub fn from_args() -> Self {
        let mut opts = Self {
            scale: SimScale::Small,
            seed: 1,
            train_filter: false,
            threads: 0,
            out_dir: None,
            index_max_n: usize::MAX,
            hash_max_n: usize::MAX,
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    opts.scale = match args.get(i).map(String::as_str) {
                        Some("tiny") => SimScale::Tiny,
                        Some("small") => SimScale::Small,
                        Some("default") => SimScale::Default,
                        other => {
                            eprintln!("unknown scale {other:?}; using small");
                            SimScale::Small
                        }
                    };
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("bad --seed; using 1");
                        1
                    });
                }
                "--train-filter" => opts.train_filter = true,
                "--threads" => {
                    i += 1;
                    opts.threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
                }
                "--out-dir" => {
                    i += 1;
                    opts.out_dir = args.get(i).cloned();
                }
                "--index-max-n" => {
                    i += 1;
                    opts.index_max_n = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(usize::MAX);
                }
                "--hash-max-n" => {
                    i += 1;
                    opts.hash_max_n = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(usize::MAX);
                }
                other => eprintln!("ignoring unknown flag {other}"),
            }
            i += 1;
        }
        opts
    }
}

/// A generated dataset plus the completed pipeline run.
pub struct Repro {
    /// The options used.
    pub opts: Options,
    /// The synthetic corpus.
    pub dataset: Dataset,
    /// Steps 1–6 output.
    pub output: PipelineOutput,
}

impl Repro {
    /// Generate the dataset and run the pipeline, logging wall times.
    pub fn build(opts: Options) -> Self {
        eprintln!(
            "[repro] generating dataset (scale {:?}, seed {})...",
            opts.scale, opts.seed
        );
        let t0 = Instant::now();
        let dataset = SimConfig::new(opts.scale, opts.seed).generate();
        eprintln!(
            "[repro]   {} image posts, {} memes, {} KYM entries ({:.1?})",
            dataset.posts.len(),
            dataset.universe.len(),
            dataset.kym_raw.len(),
            t0.elapsed()
        );
        let config = PipelineConfig {
            screenshot_filter: if opts.train_filter {
                ScreenshotFilterMode::Train {
                    corpus_scale: 0.01,
                    config: Default::default(),
                }
            } else {
                ScreenshotFilterMode::Oracle
            },
            threads: opts.threads,
            ..PipelineConfig::default()
        };
        let t1 = Instant::now();
        eprintln!("[repro] running pipeline (steps 1-6)...");
        let output = Pipeline::new(config)
            .run(&dataset)
            .expect("pipeline runs on generated data");
        eprintln!(
            "[repro]   {} clusters ({} annotated), {} matched posts ({:.1?})",
            output.clustering.n_clusters(),
            output.annotated_clusters().len(),
            output.occurrences.iter().flatten().count(),
            t1.elapsed()
        );
        Self {
            opts,
            dataset,
            output,
        }
    }

    /// Build from CLI args.
    pub fn from_args() -> Self {
        Self::build(Options::from_args())
    }
}

/// Print a section header matching the paper's table/figure numbering.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}
