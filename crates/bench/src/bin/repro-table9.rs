//! Regenerates Table 9 and Fig. 19 (Appendix C: screenshot classifier).
fn main() {
    let opts = meme_bench::harness::Options::from_args();
    meme_bench::sections::table9_fig19(opts.seed);
}
