//! `serve-load` — closed-loop load generator and adversarial client
//! harness for the serving layer, producing the committed
//! `BENCH_serve.json` baseline.
//!
//! ```text
//! serve-load [--scale tiny|small|default] [--seed N] [--clients C]
//!            [--requests N] [--workers W] [--no-swap] [--no-overload]
//!            [--mode steady|overload|slow-loris|idle-holder|
//!                    oversized-line|garbage-bytes|disconnect-mid-batch]
//!            [--out PATH]
//! ```
//!
//! The default run has two phases. **Steady**: the pipeline runs in
//! process at `--scale`/`--seed`, Step-7 influence is computed so hits
//! carry full payloads, a [`Server`] starts on a free loopback port,
//! and `C` closed-loop TCP clients (one in-flight request each, so
//! micro-batches form across connections) drive it through a seeded
//! query mix — medoid hashes perturbed by 0–12 bit flips, spanning
//! exact hits, near matches, and misses. Unless `--no-swap` is given,
//! the store hot-swaps a freshly built snapshot mid-run.
//!
//! **Overload** (skipped by `--no-overload`): a second server with a
//! connection cap sized exactly to the cohort plus one adversary wave
//! is attacked — slow-loris, idle-holder, oversized-line,
//! garbage-bytes, and disconnect-mid-batch all at once, plus an
//! accept-time flood past the cap — while the same well-behaved cohort
//! replays its schedule. The run asserts the production contract: the
//! cohort's transcripts are byte-identical to an attack-free pass,
//! every flooded accept got the typed `{"error":"overloaded"}` shed,
//! and the attackers got their typed rejections. The scenario's
//! `serve.shed` / `serve.timeouts` counters land in the baseline under
//! `overload.*` gauges.
//!
//! `--mode <adversary>` instead runs that single adversarial client
//! against an in-process server and exits 0 iff the server honoured
//! the contract — the shape the CI `serve-chaos` job scripts against.
//!
//! Client-side per-request latency lands in the `serve.latency_p50_us`
//! / `serve.latency_p99_us` / `serve.throughput_qps` gauges next to the
//! server's own `serve.*` metrics, and the whole registry is exported
//! in the `BENCH_*.json` wrapper form, so the output passes
//! `memes validate-metrics` and CI can archive it as a trend baseline.

use meme_bench::baseline::{scale_label, wrap};
use meme_bench::serveload::{
    flood_accepts, live_threads, peak_rss_kb, percentile, run_adversary, run_adversary_wave,
    run_cohort, Adversary,
};
use meme_core::pipeline::{Pipeline, PipelineConfig};
use meme_hawkes::InfluenceEstimator;
use meme_metrics::{Metrics, Registry};
use meme_phash::PHash;
use meme_serve::{protocol, Server, ServerConfig, Snapshot, SnapshotStore, DEFAULT_THETA};
use meme_simweb::{Community, SimConfig, SimScale};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Options {
    scale: SimScale,
    seed: u64,
    clients: usize,
    requests: usize,
    workers: usize,
    swap: bool,
    overload: bool,
    mode: Option<Adversary>,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let argv: Vec<String> = std::env::args().collect();
    let mut opts = Options {
        scale: SimScale::Tiny,
        seed: 7,
        clients: 4,
        requests: 2_000,
        workers: 2,
        swap: true,
        overload: true,
        mode: None,
        out: "BENCH_serve.json".to_string(),
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = match argv.get(i).map(String::as_str) {
                    Some("tiny") => SimScale::Tiny,
                    Some("small") => SimScale::Small,
                    Some("default") => SimScale::Default,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--seed" => {
                i += 1;
                opts.seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--clients" => {
                i += 1;
                opts.clients = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--clients needs a positive integer")?;
            }
            "--requests" => {
                i += 1;
                opts.requests = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--requests needs a positive integer")?;
            }
            "--workers" => {
                i += 1;
                opts.workers = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--workers needs a positive integer")?;
            }
            "--no-swap" => opts.swap = false,
            "--no-overload" => opts.overload = false,
            "--mode" => {
                i += 1;
                let label = argv.get(i).ok_or("--mode needs a name")?;
                opts.mode = match label.as_str() {
                    "steady" => {
                        opts.overload = false;
                        None
                    }
                    "overload" => None,
                    other => Some(Adversary::parse(other).ok_or_else(|| {
                        format!(
                            "unknown mode `{other}` (try steady, overload, slow-loris, \
                             idle-holder, oversized-line, garbage-bytes, disconnect-mid-batch)"
                        )
                    })?),
                };
            }
            "--out" => {
                i += 1;
                opts.out = argv.get(i).cloned().ok_or("--out needs a path")?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(opts)
}

/// Build the snapshot-backed store served in every phase.
struct Fixture {
    store: Arc<SnapshotStore>,
    medoids: Vec<PHash>,
    rebuild: Box<dyn Fn() -> Snapshot + Sync>,
}

fn build_fixture(opts: &Options) -> Option<Fixture> {
    eprintln!(
        "[serve-load] pipeline (scale {:?}, seed {})...",
        opts.scale, opts.seed
    );
    let dataset = SimConfig::new(opts.scale, opts.seed).generate();
    let output = Pipeline::new(PipelineConfig::default())
        .run(&dataset)
        .expect("pipeline runs on generated data");
    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
    let (influence, skipped) = output.estimate_influence_robust(&dataset, &estimator, 0);
    if !skipped.is_empty() {
        eprintln!(
            "[serve-load] influence: {} cluster(s) skipped",
            skipped.len()
        );
    }
    let snapshot = Snapshot::build(&output, Some(&influence), DEFAULT_THETA, 0)
        .expect("fresh artifact builds a snapshot");
    let medoids: Vec<PHash> = snapshot.records().iter().map(|r| r.medoid).collect();
    if medoids.is_empty() {
        eprintln!("[serve-load] run has no annotated clusters — nothing to serve");
        return None;
    }
    let store = Arc::new(SnapshotStore::new(snapshot));
    let rebuild = Box::new(move || {
        Snapshot::build(&output, Some(&influence), DEFAULT_THETA, 0)
            .expect("rebuild snapshot for swap")
    });
    Some(Fixture {
        store,
        medoids,
        rebuild,
    })
}

/// Phase 1 — the closed-loop steady-state benchmark (with optional
/// mid-run hot swap), writing latency/throughput gauges into `metrics`.
fn steady_phase(opts: &Options, fixture: &Fixture, metrics: &Metrics) {
    let server = Server::start(
        Arc::clone(&fixture.store),
        ServerConfig {
            workers: opts.workers,
            ..ServerConfig::default()
        },
        metrics.clone(),
    )
    .expect("bind a free loopback port");
    let addr = server.local_addr();
    eprintln!(
        "[serve-load] {} meme(s) on {addr}; {} client(s) x {} request(s), workers {}",
        fixture.store.load().len(),
        opts.clients,
        opts.requests,
        opts.workers
    );

    let started = Instant::now();
    let transcripts = std::thread::scope(|scope| {
        let cohort = scope.spawn(|| {
            run_cohort(
                addr,
                &fixture.medoids,
                opts.seed,
                opts.clients,
                opts.requests,
            )
        });
        if opts.swap {
            // Swap a freshly built snapshot in mid-run; clients must
            // not notice beyond the generation counter.
            std::thread::sleep(std::time::Duration::from_millis(50));
            fixture.store.swap((fixture.rebuild)());
            metrics.gauge(
                "serve.snapshot_generation",
                fixture.store.generation() as f64,
            );
            eprintln!(
                "[serve-load] hot-swapped to generation {}",
                fixture.store.generation()
            );
        }
        cohort.join().expect("cohort")
    });
    let wall = started.elapsed().as_secs_f64();
    server.shutdown();

    let mut latencies_us: Vec<f64> = transcripts
        .iter()
        .flat_map(|t| t.latencies_us.iter().copied())
        .collect();
    latencies_us.sort_by(f64::total_cmp);
    let total = latencies_us.len();
    let p50 = percentile(&latencies_us, 0.50);
    let p99 = percentile(&latencies_us, 0.99);
    let qps = total as f64 / wall;
    metrics.gauge("serve.latency_p50_us", p50);
    metrics.gauge("serve.latency_p99_us", p99);
    metrics.gauge("serve.throughput_qps", qps);
    metrics.gauge("serve.clients", opts.clients as f64);
    metrics.gauge("serve.wall_secs", wall);
    eprintln!(
        "[serve-load] {total} request(s) in {wall:.2}s: p50 {p50:.0}us, p99 {p99:.0}us, {qps:.0} qps"
    );
}

/// Configuration every overload-phase server shares; the short line
/// budget keeps the adversary wave fast, and the cap is sized so the
/// cohort plus one wave are admitted and the flood is shed.
fn overload_config(opts: &Options) -> ServerConfig {
    ServerConfig {
        workers: opts.workers,
        max_conns: opts.clients + Adversary::ALL.len(),
        read_timeout_ms: 400,
        max_line_bytes: 16 * 1024,
        ..ServerConfig::default()
    }
}

/// Phase 2 — the mixed-overload scenario. Returns `false` if any
/// contract assertion failed.
fn overload_phase(opts: &Options, fixture: &Fixture, metrics: &Metrics) -> bool {
    let config = overload_config(opts);
    let requests = opts.requests.min(500);
    // Attack-free reference pass: same server configuration, same
    // cohort schedule — the byte-identity baseline.
    let reference = {
        let server = Server::start(
            Arc::clone(&fixture.store),
            config.clone(),
            Metrics::disabled(),
        )
        .expect("bind reference server");
        let t = run_cohort(
            server.local_addr(),
            &fixture.medoids,
            opts.seed,
            opts.clients,
            requests,
        );
        server.shutdown();
        t
    };

    let registry = Arc::new(Registry::new());
    let overload_metrics = Metrics::from_registry(Arc::clone(&registry));
    let server = Server::start(
        Arc::clone(&fixture.store),
        config.clone(),
        overload_metrics.clone(),
    )
    .expect("bind overload server");
    let addr = server.local_addr();
    eprintln!(
        "[serve-load] overload: cohort {} + adversary wave {} vs cap {} (flood {})",
        opts.clients,
        Adversary::ALL.len(),
        config.max_conns,
        8,
    );

    let threads_before = live_threads();
    let (under_attack, wave) = std::thread::scope(|scope| {
        let wave =
            scope.spawn(|| run_adversary_wave(addr, config.read_timeout_ms, config.max_line_bytes));
        let cohort =
            scope.spawn(|| run_cohort(addr, &fixture.medoids, opts.seed, opts.clients, requests));
        (cohort.join().expect("cohort"), wave.join().expect("wave"))
    });
    // Fill every connection slot with idle holders, then flood: with
    // the cap provably reached, every extra accept must shed typed.
    let holders: Vec<std::net::TcpStream> = (0..config.max_conns)
        .map(|_| std::net::TcpStream::connect(addr).expect("holder connects"))
        .collect();
    while server.active_connections() < config.max_conns {
        std::thread::yield_now();
    }
    let flood = flood_accepts(addr, 8);
    let threads_during = live_threads();
    drop(holders);

    let mut ok = true;
    let identical = under_attack.len() == reference.len()
        && under_attack
            .iter()
            .zip(&reference)
            .all(|(a, b)| a.responses == b.responses);
    if !identical {
        eprintln!("[serve-load] FAIL: cohort transcripts diverged under attack");
        ok = false;
    }
    if flood.typed_sheds != 8 {
        eprintln!(
            "[serve-load] FAIL: only {}/8 flooded accepts shed typed",
            flood.typed_sheds
        );
        ok = false;
    }
    for report in &wave {
        let want_typed = matches!(
            report.adversary,
            Adversary::SlowLoris | Adversary::IdleHolder | Adversary::OversizedLine
        );
        if want_typed && report.rejection.is_none() {
            eprintln!(
                "[serve-load] FAIL: {} got no typed rejection",
                report.adversary.label()
            );
            ok = false;
        }
    }
    // Thread growth is bounded by the cap plus the worker pool (our own
    // client threads are gone by now; allow them slack while attacking).
    if let (Some(before), Some(during)) = (threads_before, threads_during) {
        let bound = before + config.max_conns + opts.workers + 4;
        if during > bound {
            eprintln!("[serve-load] FAIL: {during} threads live (bound {bound})");
            ok = false;
        }
        metrics.gauge("overload.threads_peak", during as f64);
    }
    server.shutdown();
    if let Some(after) = live_threads() {
        metrics.gauge("overload.threads_after_shutdown", after as f64);
    }
    if let Some(kb) = peak_rss_kb() {
        metrics.gauge("overload.peak_rss_kb", kb as f64);
    }

    // Fold the scenario's server-side counters into the baseline.
    let snap = registry.snapshot();
    for (name, value) in [
        ("overload.shed", snap.counters.get("serve.shed")),
        ("overload.timeouts", snap.counters.get("serve.timeouts")),
        ("overload.oversized", snap.counters.get("serve.oversized")),
    ] {
        metrics.gauge(name, value.copied().unwrap_or(0) as f64);
    }
    metrics.gauge("overload.cohort_identical", f64::from(identical));
    metrics.gauge("overload.flood_typed_sheds", flood.typed_sheds as f64);
    metrics.gauge("overload.attackers", Adversary::ALL.len() as f64);
    eprintln!(
        "[serve-load] overload: identical={identical}, flood sheds {} / 8, \
         server shed {} timeout {}",
        flood.typed_sheds,
        snap.counters.get("serve.shed").copied().unwrap_or(0),
        snap.counters.get("serve.timeouts").copied().unwrap_or(0),
    );
    ok
}

/// `--mode <adversary>`: one adversarial client against a live server;
/// exit 0 iff the server honoured the lifecycle contract.
fn adversary_mode(opts: &Options, fixture: &Fixture, adversary: Adversary) -> bool {
    let config = overload_config(opts);
    let registry = Arc::new(Registry::new());
    let server = Server::start(
        Arc::clone(&fixture.store),
        config.clone(),
        Metrics::from_registry(Arc::clone(&registry)),
    )
    .expect("bind server");
    let addr = server.local_addr();
    let report = run_adversary(
        addr,
        adversary,
        config.read_timeout_ms,
        config.max_line_bytes,
    );
    // Whatever the adversary did, a well-behaved client must still get
    // clean answers afterwards.
    let healthy = run_cohort(addr, &fixture.medoids, opts.seed, 1, 50);
    server.shutdown();
    let counters = registry.snapshot().counters;
    eprintln!(
        "[serve-load] {}: rejection={:?} closed={} (shed {}, timeouts {}, oversized {})",
        adversary.label(),
        report.rejection,
        report.closed,
        counters.get("serve.shed").copied().unwrap_or(0),
        counters.get("serve.timeouts").copied().unwrap_or(0),
        counters.get("serve.oversized").copied().unwrap_or(0),
    );
    let contract = match adversary {
        Adversary::SlowLoris | Adversary::IdleHolder => {
            report.closed
                && report.rejection.as_deref() == Some(protocol::READ_TIMEOUT)
                && counters.get("serve.timeouts").copied().unwrap_or(0) >= 1
        }
        Adversary::OversizedLine => {
            report.closed
                && report
                    .rejection
                    .as_deref()
                    .is_some_and(|r| r.contains("exceeds"))
                && counters.get("serve.oversized").copied().unwrap_or(0) >= 1
        }
        Adversary::GarbageBytes => report
            .rejection
            .as_deref()
            .is_some_and(|r| r.contains("error")),
        Adversary::DisconnectMidBatch => true, // surviving IS the contract
    };
    contract && healthy.len() == 1 && healthy[0].responses.len() == 50
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serve-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(fixture) = build_fixture(&opts) else {
        return ExitCode::FAILURE;
    };

    if let Some(adversary) = opts.mode {
        return if adversary_mode(&opts, &fixture, adversary) {
            eprintln!("[serve-load] {}: contract held", adversary.label());
            ExitCode::SUCCESS
        } else {
            eprintln!("[serve-load] {}: CONTRACT VIOLATED", adversary.label());
            ExitCode::FAILURE
        };
    }

    let registry = Arc::new(Registry::new());
    let metrics = Metrics::from_registry(Arc::clone(&registry));
    steady_phase(&opts, &fixture, &metrics);
    if opts.overload && !overload_phase(&opts, &fixture, &metrics) {
        return ExitCode::FAILURE;
    }

    let doc = wrap(
        "serve",
        scale_label(opts.scale),
        opts.seed,
        &registry.to_json(),
    );
    if let Err(e) = std::fs::write(&opts.out, doc) {
        eprintln!("serve-load: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    eprintln!("[serve-load] wrote {}", opts.out);
    ExitCode::SUCCESS
}
