//! `serve-load` — closed-loop load generator for the serving layer,
//! producing the committed `BENCH_serve.json` baseline.
//!
//! ```text
//! serve-load [--scale tiny|small|default] [--seed N] [--clients C]
//!            [--requests N] [--workers W] [--no-swap] [--out PATH]
//! ```
//!
//! Runs the pipeline in process at `--scale`/`--seed`, computes Step-7
//! influence so hits carry full payloads, starts a [`Server`] on a free
//! loopback port, and drives it with `C` closed-loop TCP clients (one
//! in-flight request each, so micro-batches form across connections).
//! The query mix is seeded and deterministic: medoid hashes perturbed
//! by 0–12 random bit flips, spanning exact hits, near matches, and
//! misses. Unless `--no-swap` is given, the store hot-swaps a freshly
//! built snapshot mid-run, so the baseline covers swap traffic too.
//!
//! Client-side per-request latency lands in the `serve.latency_p50_us`
//! / `serve.latency_p99_us` / `serve.throughput_qps` gauges next to the
//! server's own `serve.*` metrics (admission-latency histogram, batch
//! sizes, hit/miss counters), and the whole registry is exported in the
//! `BENCH_*.json` wrapper form, so the output passes
//! `memes validate-metrics` and CI can archive it as a trend baseline.

use meme_bench::baseline::{scale_label, wrap};
use meme_core::pipeline::{Pipeline, PipelineConfig};
use meme_hawkes::InfluenceEstimator;
use meme_metrics::{Metrics, Registry};
use meme_phash::PHash;
use meme_serve::{Server, ServerConfig, Snapshot, SnapshotStore, DEFAULT_THETA};
use meme_simweb::{Community, SimConfig, SimScale};
use meme_stats::seeded_rng;
use rand::RngExt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Options {
    scale: SimScale,
    seed: u64,
    clients: usize,
    requests: usize,
    workers: usize,
    swap: bool,
    out: String,
}

fn parse_args() -> Result<Options, String> {
    let argv: Vec<String> = std::env::args().collect();
    let mut opts = Options {
        scale: SimScale::Tiny,
        seed: 7,
        clients: 4,
        requests: 2_000,
        workers: 2,
        swap: true,
        out: "BENCH_serve.json".to_string(),
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = match argv.get(i).map(String::as_str) {
                    Some("tiny") => SimScale::Tiny,
                    Some("small") => SimScale::Small,
                    Some("default") => SimScale::Default,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--seed" => {
                i += 1;
                opts.seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--clients" => {
                i += 1;
                opts.clients = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--clients needs a positive integer")?;
            }
            "--requests" => {
                i += 1;
                opts.requests = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--requests needs a positive integer")?;
            }
            "--workers" => {
                i += 1;
                opts.workers = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--workers needs a positive integer")?;
            }
            "--no-swap" => opts.swap = false,
            "--out" => {
                i += 1;
                opts.out = argv.get(i).cloned().ok_or("--out needs a path")?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(opts)
}

/// The seeded per-client query schedule: each request perturbs a random
/// medoid by 0–12 bit flips, so ~2/3 land within θ = 8.
fn query_schedule(medoids: &[PHash], seed: u64, requests: usize) -> Vec<PHash> {
    let mut rng = seeded_rng(seed);
    (0..requests)
        .map(|_| {
            let mut bits = medoids[rng.random_range(0..medoids.len())].0;
            for _ in 0..rng.random_range(0..13usize) {
                bits ^= 1u64 << rng.random_range(0..64u32);
            }
            PHash(bits)
        })
        .collect()
}

/// Sorted-latency percentile (nearest-rank on the sorted slice).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serve-load: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "[serve-load] pipeline (scale {:?}, seed {})...",
        opts.scale, opts.seed
    );
    let dataset = SimConfig::new(opts.scale, opts.seed).generate();
    let output = Pipeline::new(PipelineConfig::default())
        .run(&dataset)
        .expect("pipeline runs on generated data");
    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
    let (influence, skipped) = output.estimate_influence_robust(&dataset, &estimator, 0);
    if !skipped.is_empty() {
        eprintln!(
            "[serve-load] influence: {} cluster(s) skipped",
            skipped.len()
        );
    }

    let registry = Arc::new(Registry::new());
    let metrics = Metrics::from_registry(Arc::clone(&registry));
    let snapshot = Snapshot::build(&output, Some(&influence), DEFAULT_THETA, 0)
        .expect("fresh artifact builds a snapshot");
    let medoids: Vec<PHash> = snapshot.records().iter().map(|r| r.medoid).collect();
    if medoids.is_empty() {
        eprintln!("[serve-load] run has no annotated clusters — nothing to serve");
        return ExitCode::FAILURE;
    }
    let store = Arc::new(SnapshotStore::new(snapshot));
    let server = Server::start(
        Arc::clone(&store),
        ServerConfig {
            workers: opts.workers,
            ..ServerConfig::default()
        },
        metrics.clone(),
    )
    .expect("bind a free loopback port");
    let addr = server.local_addr();
    eprintln!(
        "[serve-load] {} meme(s) on {addr}; {} client(s) x {} request(s), workers {}",
        store.load().len(),
        opts.clients,
        opts.requests,
        opts.workers
    );

    // Closed loop: each client owns one connection and keeps exactly
    // one request in flight, timing each round trip.
    let started = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|c| {
                let schedule = query_schedule(&medoids, opts.seed ^ (c as u64 + 1), opts.requests);
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect to own server");
                    stream.set_nodelay(true).expect("disable Nagle");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let mut writer = stream;
                    let mut line = String::new();
                    let mut lat = Vec::with_capacity(schedule.len());
                    for q in schedule {
                        let t0 = Instant::now();
                        writeln!(writer, "{{\"hash\":\"{q}\"}}").expect("send request");
                        line.clear();
                        reader.read_line(&mut line).expect("read response");
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        assert!(
                            line.starts_with("{\"found\""),
                            "unexpected response: {line}"
                        );
                    }
                    lat
                })
            })
            .collect();

        if opts.swap {
            // Swap a freshly built snapshot in mid-run; clients must
            // not notice beyond the generation counter.
            std::thread::sleep(std::time::Duration::from_millis(50));
            let next = Snapshot::build(&output, Some(&influence), DEFAULT_THETA, 0)
                .expect("rebuild snapshot for swap");
            store.swap(next);
            metrics.gauge("serve.snapshot_generation", store.generation() as f64);
            eprintln!(
                "[serve-load] hot-swapped to generation {}",
                store.generation()
            );
        }

        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    server.shutdown();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let total = latencies_us.len();
    let p50 = percentile(&latencies_us, 0.50);
    let p99 = percentile(&latencies_us, 0.99);
    let qps = total as f64 / wall;
    metrics.gauge("serve.latency_p50_us", p50);
    metrics.gauge("serve.latency_p99_us", p99);
    metrics.gauge("serve.throughput_qps", qps);
    metrics.gauge("serve.clients", opts.clients as f64);
    metrics.gauge("serve.wall_secs", wall);
    eprintln!(
        "[serve-load] {total} request(s) in {wall:.2}s: p50 {p50:.0}us, p99 {p99:.0}us, {qps:.0} qps"
    );

    let doc = wrap(
        "serve",
        scale_label(opts.scale),
        opts.seed,
        &registry.to_json(),
    );
    if let Err(e) = std::fs::write(&opts.out, doc) {
        eprintln!("serve-load: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    eprintln!("[serve-load] wrote {}", opts.out);
    ExitCode::SUCCESS
}
