//! Regenerates Table 7 (meme events per community).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::table7(&r);
}
