//! Regenerates Fig. 3 (r_perceptual decay curves).
fn main() {
    meme_bench::sections::fig3();
}
