//! Regenerates Table 1 (dataset overview).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::table1(&r);
}
