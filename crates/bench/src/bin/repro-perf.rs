//! Regenerates the §7 performance measurement (association throughput).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::perf(&r);
}
