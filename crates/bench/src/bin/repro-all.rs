//! Runs every experiment in sequence over one shared pipeline run —
//! the full evaluation of the paper in a single binary.
fn main() {
    meme_bench::sections::fig3();
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::table1(&r);
    let runs = meme_bench::sections::community_runs(&r);
    meme_bench::sections::table2(&r, &runs);
    meme_bench::sections::table3(&r, &runs);
    meme_bench::sections::table4(&r);
    meme_bench::sections::table5(&r);
    meme_bench::sections::table6(&r);
    meme_bench::sections::fig4(&r);
    meme_bench::sections::fig5(&r);
    meme_bench::sections::fig6(&r);
    meme_bench::sections::fig7(&r);
    meme_bench::sections::fig8(&r);
    meme_bench::sections::fig9(&r);
    meme_bench::sections::fig10(r.opts.seed);
    meme_bench::sections::table7(&r);
    meme_bench::sections::fig11_12(&r);
    meme_bench::sections::fig13_16(&r);
    meme_bench::sections::table8_fig17(&r);
    meme_bench::sections::table9_fig19(r.opts.seed);
    meme_bench::sections::perf(&r);
    meme_bench::ablations::ablation_hashers(&r);
    meme_bench::ablations::ablation_metric_weights(&r);
    meme_bench::ablations::ablation_min_pts(&r);
    meme_bench::ablations::ablation_beta(&r);
    meme_bench::ablations::provenance(&r);
}
