//! Regenerates Fig. 6 (frog-meme phylogeny dendrogram).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::fig6(&r);
}
