//! Regenerates Table 2 (clustering statistics) and the Appendix-B
//! annotation-quality panel.
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    let runs = meme_bench::sections::community_runs(&r);
    meme_bench::sections::table2(&r, &runs);
}
