//! Regenerates Fig. 8 (percentage of posts per day with memes).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::fig8(&r);
}
