//! Regenerates Table 3 (top KYM entries by clusters per fringe community).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    let runs = meme_bench::sections::community_runs(&r);
    meme_bench::sections::table3(&r, &runs);
}
