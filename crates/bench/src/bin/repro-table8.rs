//! Regenerates Table 8 and Fig. 17 (Appendix A: DBSCAN distance sweep).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::table8_fig17(&r);
}
