//! Regenerates Fig. 9 (score distributions on Reddit and Gab).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::fig9(&r);
}
