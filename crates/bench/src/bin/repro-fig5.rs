//! Regenerates Fig. 5 (entries-per-cluster / clusters-per-entry CDFs).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::fig5(&r);
}
