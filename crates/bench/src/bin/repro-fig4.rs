//! Regenerates Fig. 4 (KYM dataset statistics).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::fig4(&r);
}
