//! Regenerates Table 6 (top subreddits for all/racist/political memes).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::table6(&r);
}
