//! Regenerates Figs. 13-16 (influence split by racist/political groups).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::fig13_16(&r);
}
