//! Regenerates Fig. 10 (Hawkes mechanics illustration).
fn main() {
    let opts = meme_bench::harness::Options::from_args();
    meme_bench::sections::fig10(opts.seed);
}
