//! Runs the §7 future-work extensions: origin inference and virality.
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::ablations::provenance(&r);
}
