//! Regenerates Table 5 (top 'people' entries by posts per community).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::table5(&r);
}
