//! Regenerates Table 4 (top meme entries by posts per community).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::table4(&r);
}
