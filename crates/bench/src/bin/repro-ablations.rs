//! Runs the design-choice ablations: hashing algorithm, custom-metric
//! weights, DBSCAN minPts.
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::ablations::ablation_hashers(&r);
    meme_bench::ablations::ablation_metric_weights(&r);
    meme_bench::ablations::ablation_min_pts(&r);
    meme_bench::ablations::ablation_beta(&r);
}
