//! Regenerates Figs. 11-12 (raw and normalized community influence).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::table7(&r);
    meme_bench::sections::fig11_12(&r);
}
