//! `bench-baselines` — persist the observability baselines.
//!
//! ```text
//! bench-baselines [--scale tiny|small|default] [--seed N]
//!                 [--threads N] [--out-dir DIR] [--index-max-n N]
//!                 [--hash-max-n N]
//! ```
//!
//! Writes `BENCH_pipeline.json` (full pipeline + Step-7 influence under
//! per-stage spans), `BENCH_clustering.json` (per-engine build /
//! `all_neighbors` / DBSCAN timings), `BENCH_index.json` (CSR query
//! engine vs the frozen legacy engine over the N × duplicate-fraction
//! grid; `--index-max-n` caps the grid for smoke runs), and
//! `BENCH_hash.json` (the render-cached scratch-reuse hash stage vs the
//! frozen legacy hash path at 1/2/8 threads; `--hash-max-n` caps the
//! post count for smoke runs) into `--out-dir` (default: the current
//! directory). All files pass `memes validate-metrics`.

use meme_bench::baseline::{
    clustering_baseline, hash_baseline, index_baseline, pipeline_baseline,
    supervision_overhead_ratio,
};
use meme_bench::harness::Options;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = Options::from_args();
    let dir = opts.out_dir.clone().unwrap_or_else(|| ".".to_string());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {dir}: {e}");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "[bench-baselines] pipeline baseline (scale {:?}, seed {})...",
        opts.scale, opts.seed
    );
    let pipeline = pipeline_baseline(opts.scale, opts.seed, opts.threads);
    match supervision_overhead_ratio(&pipeline) {
        Some(ratio) if ratio > 1.02 => eprintln!(
            "[bench-baselines] WARNING: supervised runner overhead {:+.2}% exceeds the 2% budget",
            (ratio - 1.0) * 100.0
        ),
        Some(ratio) => eprintln!(
            "[bench-baselines] supervised runner overhead {:+.2}% (budget 2%)",
            (ratio - 1.0) * 100.0
        ),
        None => eprintln!("[bench-baselines] WARNING: no supervision overhead gauge recorded"),
    }
    let pipeline_path = Path::new(&dir).join("BENCH_pipeline.json");
    if let Err(e) = std::fs::write(&pipeline_path, pipeline) {
        eprintln!("cannot write {}: {e}", pipeline_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("[bench-baselines] wrote {}", pipeline_path.display());

    eprintln!(
        "[bench-baselines] clustering baseline (seed {})...",
        opts.seed
    );
    let clustering = clustering_baseline(opts.seed, opts.threads);
    let clustering_path = Path::new(&dir).join("BENCH_clustering.json");
    if let Err(e) = std::fs::write(&clustering_path, clustering) {
        eprintln!("cannot write {}: {e}", clustering_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("[bench-baselines] wrote {}", clustering_path.display());

    eprintln!("[bench-baselines] index baseline (seed {})...", opts.seed);
    let index = index_baseline(opts.seed, opts.threads, opts.index_max_n);
    let index_path = Path::new(&dir).join("BENCH_index.json");
    if let Err(e) = std::fs::write(&index_path, index) {
        eprintln!("cannot write {}: {e}", index_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("[bench-baselines] wrote {}", index_path.display());

    eprintln!(
        "[bench-baselines] hash baseline (scale {:?}, seed {})...",
        opts.scale, opts.seed
    );
    let hash = hash_baseline(opts.scale, opts.seed, opts.hash_max_n);
    let hash_path = Path::new(&dir).join("BENCH_hash.json");
    if let Err(e) = std::fs::write(&hash_path, hash) {
        eprintln!("cannot write {}: {e}", hash_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("[bench-baselines] wrote {}", hash_path.display());
    ExitCode::SUCCESS
}
