//! Regenerates Fig. 7 (cluster graph at kappa = 0.45, with DOT/JSON export).
fn main() {
    let r = meme_bench::harness::Repro::from_args();
    meme_bench::sections::fig7(&r);
}
