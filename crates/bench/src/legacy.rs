//! Frozen pre-CSR Hamming engine — the speedup denominator.
//!
//! `BENCH_index.json` reports the CSR engine's throughput as a ratio
//! against "the engine this change replaced". A ratio computed against a
//! remembered number from another machine is folklore; a ratio computed
//! against code that still compiles is a measurement. This module is a
//! verbatim-behaviour copy of the old `meme_index::MihIndex` (per-band
//! `HashMap<u64, Vec<usize>>` tables, per-query allocate + `sort +
//! dedup + retain`) and the old per-item `all_neighbors` driver (one
//! full query per *item*, duplicates and mirrored pairs recomputed).
//!
//! It is deliberately **not** public API of the workspace: nothing
//! outside the bench crate should ever run it. Do not "fix" or speed it
//! up — its only job is to stay slow the way the old engine was slow.

use meme_index::effective_threads;
use meme_phash::PHash;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Band {
    shift: u32,
    width: u32,
}

impl Band {
    #[inline]
    fn extract(&self, h: PHash) -> u64 {
        if self.width == 64 {
            h.bits()
        } else {
            (h.bits() >> self.shift) & ((1u64 << self.width) - 1)
        }
    }
}

/// The old hash-map-banded MIH engine, frozen at the pre-CSR revision.
#[derive(Debug, Clone)]
pub struct LegacyMihIndex {
    hashes: Vec<PHash>,
    bands: Vec<Band>,
    tables: Vec<HashMap<u64, Vec<usize>>>,
    max_radius: u32,
}

impl LegacyMihIndex {
    /// Build the legacy index (same banding split as the CSR engine).
    pub fn new(hashes: Vec<PHash>, max_radius: u32) -> Self {
        assert!(
            max_radius < 64,
            "MIH banding needs max_radius < 64; use brute force for larger radii"
        );
        let m = max_radius + 1;
        let base = 64 / m;
        let extra = 64 % m;
        let mut bands = Vec::with_capacity(m as usize);
        let mut shift = 0u32;
        for i in 0..m {
            let width = base + u32::from(i < extra);
            bands.push(Band { shift, width });
            shift += width;
        }
        debug_assert_eq!(shift, 64);

        let mut tables: Vec<HashMap<u64, Vec<usize>>> = vec![HashMap::new(); m as usize];
        for (i, &h) in hashes.iter().enumerate() {
            for (b, band) in bands.iter().enumerate() {
                tables[b].entry(band.extract(h)).or_default().push(i);
            }
        }
        Self {
            hashes,
            bands,
            tables,
            max_radius,
        }
    }

    /// Number of indexed hashes.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The old query path: gather from hash-map buckets into a fresh
    /// vector, then `sort_unstable + dedup + retain`.
    pub fn radius_query(&self, query: PHash, radius: u32) -> Vec<usize> {
        assert!(
            radius <= self.max_radius,
            "query radius {radius} exceeds index max_radius {}",
            self.max_radius
        );
        let mut candidates: Vec<usize> = Vec::new();
        for (b, band) in self.bands.iter().enumerate() {
            if let Some(bucket) = self.tables[b].get(&band.extract(query)) {
                candidates.extend_from_slice(bucket);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&i| query.distance(self.hashes[i]) <= radius);
        candidates
    }
}

/// The old pairwise driver: one full (allocating) radius query per
/// *item* — duplicates and both directions of every pair recomputed.
pub fn legacy_all_neighbors(
    index: &LegacyMihIndex,
    radius: u32,
    threads: usize,
) -> Vec<Vec<usize>> {
    let n = index.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, n);
    let chunk_len = n.div_ceil(threads);
    let mut result: Vec<Vec<usize>> = vec![Vec::new(); n];
    crossbeam::thread::scope(|s| {
        for (chunk_id, chunk) in result.chunks_mut(chunk_len).enumerate() {
            s.spawn(move |_| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    let i = chunk_id * chunk_len + k;
                    let mut neigh = index.radius_query(index.hashes[i], radius);
                    neigh.retain(|&j| j != i);
                    *slot = neigh;
                }
            });
        }
    })
    .expect("legacy worker thread panicked");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_index::{all_neighbors, BruteForceIndex, HammingIndex};
    use meme_stats::seeded_rng;
    use rand::RngExt;

    #[test]
    fn legacy_engine_still_matches_current_engines() {
        // The denominator must compute the same answers as the current
        // engine, or the speedup ratio compares different work.
        let mut rng = seeded_rng(21);
        let mut hashes: Vec<PHash> = (0..300).map(|_| PHash(rng.random())).collect();
        let dup = hashes[0];
        hashes.extend(std::iter::repeat_n(dup, 100));
        let legacy = LegacyMihIndex::new(hashes.clone(), 8);
        let brute = BruteForceIndex::new(hashes.clone());
        for &q in hashes.iter().take(30) {
            assert_eq!(legacy.radius_query(q, 8), brute.radius_query(q, 8));
        }
        assert_eq!(
            legacy_all_neighbors(&legacy, 8, 2),
            all_neighbors(&brute, 8, 2)
        );
    }
}
