//! Frozen pre-optimization paths — the speedup denominators.
//!
//! `BENCH_index.json` and `BENCH_hash.json` report throughput as ratios
//! against "the code this change replaced". A ratio computed against a
//! remembered number from another machine is folklore; a ratio computed
//! against code that still compiles is a measurement. This module holds
//! verbatim-behaviour copies of:
//!
//! * the old `meme_index::MihIndex` (per-band `HashMap<u64, Vec<usize>>`
//!   tables, per-query allocate + `sort + dedup + retain`) and the old
//!   per-item `all_neighbors` driver (one full query per *item*,
//!   duplicates and mirrored pairs recomputed);
//! * the old hash stage: per-post full renders (per-pixel `cos` template
//!   synthesis, no base-render memoization, screenshots re-rendered per
//!   post) and the old allocating `PerceptualHasher::hash` (resize into
//!   a fresh image, collect an f64 plane, full-size DCT, clone + sort by
//!   `partial_cmp` for the median).
//!
//! It is deliberately **not** public API of the workspace: nothing
//! outside the bench crate should ever run it. Do not "fix" or speed it
//! up — its only job is to stay slow the way the old code was slow.

use meme_annotate::screenshot::render_screenshot;
use meme_imaging::dct::Dct2d;
use meme_imaging::image::Image;
use meme_imaging::resize::resize_box;
use meme_imaging::synth::{JitterConfig, TemplateGenome, VariantGenome, VariantOp};
use meme_imaging::transform;
use meme_index::effective_threads;
use meme_phash::PHash;
use meme_simweb::{Dataset, ImageRef, Post, IMAGE_SIZE};
use meme_stats::{child_seed, seeded_rng};
use rand::{Rng, RngExt};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Band {
    shift: u32,
    width: u32,
}

impl Band {
    #[inline]
    fn extract(&self, h: PHash) -> u64 {
        if self.width == 64 {
            h.bits()
        } else {
            (h.bits() >> self.shift) & ((1u64 << self.width) - 1)
        }
    }
}

/// The old hash-map-banded MIH engine, frozen at the pre-CSR revision.
#[derive(Debug, Clone)]
pub struct LegacyMihIndex {
    hashes: Vec<PHash>,
    bands: Vec<Band>,
    tables: Vec<HashMap<u64, Vec<usize>>>,
    max_radius: u32,
}

impl LegacyMihIndex {
    /// Build the legacy index (same banding split as the CSR engine).
    pub fn new(hashes: Vec<PHash>, max_radius: u32) -> Self {
        assert!(
            max_radius < 64,
            "MIH banding needs max_radius < 64; use brute force for larger radii"
        );
        let m = max_radius + 1;
        let base = 64 / m;
        let extra = 64 % m;
        let mut bands = Vec::with_capacity(m as usize);
        let mut shift = 0u32;
        for i in 0..m {
            let width = base + u32::from(i < extra);
            bands.push(Band { shift, width });
            shift += width;
        }
        debug_assert_eq!(shift, 64);

        let mut tables: Vec<HashMap<u64, Vec<usize>>> = vec![HashMap::new(); m as usize];
        for (i, &h) in hashes.iter().enumerate() {
            for (b, band) in bands.iter().enumerate() {
                tables[b].entry(band.extract(h)).or_default().push(i);
            }
        }
        Self {
            hashes,
            bands,
            tables,
            max_radius,
        }
    }

    /// Number of indexed hashes.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The old query path: gather from hash-map buckets into a fresh
    /// vector, then `sort_unstable + dedup + retain`.
    pub fn radius_query(&self, query: PHash, radius: u32) -> Vec<usize> {
        assert!(
            radius <= self.max_radius,
            "query radius {radius} exceeds index max_radius {}",
            self.max_radius
        );
        let mut candidates: Vec<usize> = Vec::new();
        for (b, band) in self.bands.iter().enumerate() {
            if let Some(bucket) = self.tables[b].get(&band.extract(query)) {
                candidates.extend_from_slice(bucket);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&i| query.distance(self.hashes[i]) <= radius);
        candidates
    }
}

/// The old pairwise driver: one full (allocating) radius query per
/// *item* — duplicates and both directions of every pair recomputed.
pub fn legacy_all_neighbors(
    index: &LegacyMihIndex,
    radius: u32,
    threads: usize,
) -> Vec<Vec<usize>> {
    let n = index.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, n);
    let chunk_len = n.div_ceil(threads);
    let mut result: Vec<Vec<usize>> = vec![Vec::new(); n];
    crossbeam::thread::scope(|s| {
        for (chunk_id, chunk) in result.chunks_mut(chunk_len).enumerate() {
            s.spawn(move |_| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    let i = chunk_id * chunk_len + k;
                    let mut neigh = index.radius_query(index.hashes[i], radius);
                    neigh.retain(|&j| j != i);
                    *slot = neigh;
                }
            });
        }
    })
    .expect("legacy worker thread panicked");
    result
}

/// The old `TemplateGenome::render`: per-pixel `cos` evaluation of the
/// 6-mode cosine mixture (6 × 2 `cos` calls per pixel) instead of the
/// current 1-D table factorization. Draw order, normalization, and blob
/// placement are verbatim, so the output is bit-identical to the current
/// renderer — only slower.
pub fn legacy_render_template(genome: TemplateGenome, size: usize) -> Image {
    assert!(size >= 8, "template images need at least 8x8 pixels");
    let mut rng = seeded_rng(child_seed(genome.seed, 0xC0DE));
    let mut img = Image::new(size, size);
    let modes: Vec<(usize, usize, f64, f64)> = (0..6)
        .map(|_| {
            let u = rng.random_range(1..=5usize);
            let v = rng.random_range(1..=5usize);
            let amp =
                rng.random_range(0.35..1.0f64) * if rng.random_bool(0.5) { 1.0 } else { -1.0 };
            let phase = rng.random_range(0.0..std::f64::consts::TAU);
            (u, v, amp, phase)
        })
        .collect();
    let n = size as f64;
    for y in 0..size {
        for x in 0..size {
            let mut acc = 0.0f64;
            for &(u, v, amp, phase) in &modes {
                let cx = (std::f64::consts::PI * (x as f64 + 0.5) * u as f64 / n).cos();
                let cy = (std::f64::consts::PI * (y as f64 + 0.5) * v as f64 / n + phase).cos();
                acc += amp * cx * cy;
            }
            img.set(x, y, acc as f32);
        }
    }
    let (mut lo, mut hi) = (f32::MAX, f32::MIN);
    for &p in img.data() {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    let span = (hi - lo).max(1e-6);
    img.map_in_place(|p| 0.15 + 0.7 * (p - lo) / span);
    for _ in 0..3 {
        let cx = rng.random_range(0.2..0.8) * n;
        let cy = rng.random_range(0.2..0.8) * n;
        let r = rng.random_range(0.08..0.22) * n;
        let tone = if rng.random_bool(0.5) { 0.95 } else { 0.05 };
        img.blend_ellipse(cx, cy, r, r * rng.random_range(0.6..1.4), tone, 0.8);
    }
    img.clamp();
    img
}

/// The structural variant ops, copied from `VariantOp::apply` (which is
/// private to `meme-imaging`); the op fields are public, so the copy
/// reproduces the exact arithmetic through the same public transforms.
fn legacy_apply_op(op: &VariantOp, img: &Image) -> Image {
    let side = img.width() as f32;
    match *op {
        VariantOp::CaptionTop { height_frac, tone } => {
            transform::caption_band(img, true, height_frac, tone)
        }
        VariantOp::CaptionBottom { height_frac, tone } => {
            transform::caption_band(img, false, height_frac, tone)
        }
        VariantOp::Overlay { cx, cy, r, tone } => {
            let mut out = img.clone();
            out.blend_ellipse(
                (cx * side) as f64,
                (cy * img.height() as f32) as f64,
                (r * side) as f64,
                (r * side) as f64,
                tone,
                0.9,
            );
            out
        }
        VariantOp::InvertRegion { x0, y0, x1, y1 } => {
            let mut out = img.clone();
            let w = img.width() as f32;
            let h = img.height() as f32;
            let (ax, ay) = ((x0 * w) as usize, (y0 * h) as usize);
            let (bx, by) = ((x1 * w) as usize, (y1 * h) as usize);
            for y in ay..by.min(img.height()) {
                for x in ax..bx.min(img.width()) {
                    let p = out.get(x, y);
                    out.set(x, y, 1.0 - p);
                }
            }
            out
        }
        VariantOp::FlipH => transform::flip_horizontal(img),
    }
}

/// The old per-post jittered render: full template render (per-pixel
/// `cos`) + variant ops for *every* post, then the photometric jitter
/// chain, with the exact rng draw order of the current path.
pub fn legacy_render_jittered<R: Rng + ?Sized>(
    variant: &VariantGenome,
    size: usize,
    jitter: &JitterConfig,
    rng: &mut R,
) -> Image {
    let mut img = legacy_render_template(variant.template, size);
    for op in &variant.ops {
        img = legacy_apply_op(op, &img);
    }
    let b = rng.random_range(-jitter.brightness..=jitter.brightness);
    img = transform::brightness(&img, b);
    let c = 1.0 + rng.random_range(-jitter.contrast..=jitter.contrast);
    img = transform::contrast(&img, c);
    if jitter.noise_sigma > 0.0 {
        img = transform::gaussian_noise(&img, jitter.noise_sigma, rng);
    }
    if rng.random_bool(jitter.rescale_prob) {
        img = transform::rescale_cycle(&img, rng.random_range(0.7..0.95));
    }
    if jitter.crop_max > 0.0 && rng.random_bool(jitter.crop_prob) {
        img = transform::border_crop(&img, rng.random_range(0.0..jitter.crop_max));
    }
    img
}

/// The old `Dataset::render_post_image`: every kind rendered from
/// scratch per post — meme variants re-render the full template,
/// screenshots re-render the whole family image, one per post.
pub fn legacy_render_post_image(dataset: &Dataset, post: &Post) -> Image {
    match post.image {
        ImageRef::MemeVariant {
            meme,
            variant,
            jitter_seed,
        } => {
            let mut rng = seeded_rng(jitter_seed);
            legacy_render_jittered(
                &dataset.universe.specs[meme].variants[variant],
                IMAGE_SIZE,
                &JitterConfig::default(),
                &mut rng,
            )
        }
        ImageRef::OneOff { seed } => legacy_render_template(TemplateGenome::new(seed), IMAGE_SIZE),
        ImageRef::Screenshot {
            platform,
            family_seed,
        } => {
            let mut rng = seeded_rng(family_seed);
            render_screenshot(platform.to_source(), IMAGE_SIZE, &mut rng)
        }
        ImageRef::Blank => Image::filled(IMAGE_SIZE, IMAGE_SIZE, 0.0),
    }
}

/// The old allocating pHash: fresh resized image, collected f64 plane,
/// full-size DCT, block copy, clone + `partial_cmp` sort for the
/// median. Frozen at the pre-scratch revision.
#[derive(Debug, Clone)]
pub struct LegacyPerceptualHasher {
    hash_size: usize,
    plan: Dct2d,
}

impl LegacyPerceptualHasher {
    /// The 32×32 → 8×8 configuration from the paper.
    pub fn new() -> Self {
        Self {
            hash_size: 8,
            plan: Dct2d::new(32),
        }
    }

    /// The old `PerceptualHasher::hash` body, verbatim.
    pub fn hash(&self, img: &Image) -> PHash {
        let n = self.plan.n();
        let small = resize_box(img, n, n);
        let pixels: Vec<f64> = small.data().iter().map(|&p| p as f64).collect();
        let coeffs = self.plan.forward(&pixels);

        let hs = self.hash_size;
        let mut block = Vec::with_capacity(hs * hs);
        for y in 0..hs {
            for x in 0..hs {
                block.push(coeffs[y * n + x]);
            }
        }
        let mut sorted = block.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("DCT output is finite"));
        let median = (sorted[hs * hs / 2 - 1] + sorted[hs * hs / 2]) / 2.0;

        let mut bits = 0u64;
        for (i, &c) in block.iter().enumerate() {
            if c > median {
                bits |= 1u64 << (63 - i);
            }
        }
        PHash(bits)
    }
}

impl Default for LegacyPerceptualHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// The old `hash_posts` clean loop: chunked workers, one hasher per
/// worker, full per-post renders, allocating hash — no render cache,
/// no scratch.
pub fn legacy_hash_posts(dataset: &Dataset, threads: usize) -> Vec<PHash> {
    let n = dataset.posts.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, n);
    let chunk_len = n.div_ceil(threads);
    let mut hashes = vec![PHash::default(); n];
    crossbeam::thread::scope(|s| {
        for (chunk_id, slot_chunk) in hashes.chunks_mut(chunk_len).enumerate() {
            s.spawn(move |_| {
                let hasher = LegacyPerceptualHasher::new();
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    let post = &dataset.posts[chunk_id * chunk_len + off];
                    *slot = hasher.hash(&legacy_render_post_image(dataset, post));
                }
            });
        }
    })
    .expect("legacy hashing worker panicked");
    hashes
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_index::{all_neighbors, BruteForceIndex, HammingIndex};
    use meme_stats::seeded_rng;
    use rand::RngExt;

    #[test]
    fn legacy_hash_path_still_matches_current_kernel() {
        use meme_phash::{HashScratch, ImageHasher, PerceptualHasher};
        use meme_simweb::{RenderCache, RenderStats, SimConfig};
        // The denominator must compute the same bits as the current
        // cached + scratch-reuse path, or the speedup ratio compares
        // different work.
        let d = SimConfig::tiny(7).generate();
        let cache = RenderCache::build(&d);
        let legacy_hasher = LegacyPerceptualHasher::new();
        let hasher = PerceptualHasher::new();
        let mut scratch = HashScratch::new();
        let mut stats = RenderStats::default();
        let step = (d.posts.len() / 64).max(1);
        for post in d.posts.iter().step_by(step) {
            let legacy = legacy_hasher.hash(&legacy_render_post_image(&d, post));
            let img = d.render_post_cached(post, &cache, &mut stats);
            let current = hasher.hash_into(img.as_image(), &mut scratch);
            assert_eq!(legacy, current, "post {} diverged from legacy", post.id);
        }
    }

    #[test]
    fn legacy_engine_still_matches_current_engines() {
        // The denominator must compute the same answers as the current
        // engine, or the speedup ratio compares different work.
        let mut rng = seeded_rng(21);
        let mut hashes: Vec<PHash> = (0..300).map(|_| PHash(rng.random())).collect();
        let dup = hashes[0];
        hashes.extend(std::iter::repeat_n(dup, 100));
        let legacy = LegacyMihIndex::new(hashes.clone(), 8);
        let brute = BruteForceIndex::new(hashes.clone());
        for &q in hashes.iter().take(30) {
            assert_eq!(legacy.radius_query(q, 8), brute.radius_query(q, 8));
        }
        assert_eq!(
            legacy_all_neighbors(&legacy, 8, 2),
            all_neighbors(&brute, 8, 2)
        );
    }
}
