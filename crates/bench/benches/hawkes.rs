//! Step-7 benchmarks: Hawkes simulation, EM vs Gibbs fitting cost, and
//! root-cause attribution — the EM-vs-Gibbs ablation's cost half.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meme_hawkes::{
    fit_em, fit_gibbs, root_cause_matrix, simulate_branching, strip_lineage, EmConfig, Event,
    GibbsConfig, HawkesModel,
};
use meme_stats::seeded_rng;
use std::hint::black_box;

fn model() -> HawkesModel {
    HawkesModel::new(
        vec![0.5, 0.2, 0.1, 0.05, 0.08],
        vec![
            vec![0.30, 0.02, 0.02, 0.01, 0.02],
            vec![0.03, 0.33, 0.06, 0.01, 0.02],
            vec![0.02, 0.03, 0.30, 0.01, 0.01],
            vec![0.02, 0.02, 0.01, 0.25, 0.01],
            vec![0.10, 0.15, 0.08, 0.05, 0.30],
        ],
        3.0,
    )
    .expect("valid model")
}

fn events(horizon: f64, seed: u64) -> Vec<Event> {
    let mut rng = seeded_rng(seed);
    strip_lineage(&simulate_branching(&model(), horizon, &mut rng))
}

fn bench_simulation(c: &mut Criterion) {
    let m = model();
    let mut group = c.benchmark_group("simulate_branching");
    for &horizon in &[100.0f64, 1000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(horizon as u64),
            &horizon,
            |b, &h| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = seeded_rng(seed);
                    black_box(simulate_branching(&m, h, &mut rng))
                })
            },
        );
    }
    group.finish();
}

fn bench_fitting(c: &mut Criterion) {
    let evs = events(400.0, 11);
    let mut group = c.benchmark_group("fit");
    group.sample_size(10);
    group.bench_function(format!("em_{}events", evs.len()).as_str(), |b| {
        let cfg = EmConfig {
            beta: 3.0,
            max_iters: 50,
            ..EmConfig::default()
        };
        b.iter(|| black_box(fit_em(&evs, 5, 400.0, &cfg)))
    });
    group.bench_function(format!("gibbs_{}events", evs.len()).as_str(), |b| {
        let cfg = GibbsConfig {
            beta: 3.0,
            samples: 50,
            burn_in: 25,
            ..GibbsConfig::default()
        };
        b.iter(|| {
            let mut rng = seeded_rng(12);
            black_box(fit_gibbs(&evs, 5, 400.0, &cfg, &mut rng))
        })
    });
    group.finish();
}

fn bench_attribution(c: &mut Criterion) {
    let m = model();
    let evs = events(1000.0, 13);
    c.bench_function(format!("root_cause_{}events", evs.len()).as_str(), |b| {
        b.iter(|| black_box(root_cause_matrix(&m, &evs)))
    });
}

criterion_group!(benches, bench_simulation, bench_fitting, bench_attribution);
criterion_main!(benches);
