//! Data-substrate benchmarks: cascade generation and full dataset
//! assembly.

use criterion::{criterion_group, criterion_main, Criterion};
use meme_simweb::{generate_cascade, CascadeConfig, SimConfig, Universe, UniverseConfig};
use meme_stats::seeded_rng;
use std::hint::black_box;

fn bench_cascade(c: &mut Criterion) {
    let universe = Universe::generate(
        &UniverseConfig {
            n_memes: 40,
            ..UniverseConfig::default()
        },
        1,
    );
    let spec = &universe.specs[0];
    let cfg = CascadeConfig::default();
    c.bench_function("cascade_one_variant_396d", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            black_box(generate_cascade(spec, 0, &cfg, &mut rng))
        })
    });
}

fn bench_universe(c: &mut Criterion) {
    let mut group = c.benchmark_group("universe_generate");
    group.sample_size(20);
    group.bench_function("250_memes", |b| {
        let cfg = UniverseConfig {
            n_memes: 250,
            ..UniverseConfig::default()
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(Universe::generate(&cfg, seed))
        })
    });
    group.finish();
}

fn bench_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generate_posts");
    group.sample_size(10);
    group.bench_function("tiny", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(SimConfig::tiny(seed).generate().posts.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cascade, bench_universe, bench_dataset);
criterion_main!(benches);
