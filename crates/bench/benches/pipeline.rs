//! End-to-end pipeline benchmarks at test scale: dataset generation,
//! Step-1 hashing, and the full Steps-1–6 run.

use criterion::{criterion_group, criterion_main, Criterion};
use meme_core::pipeline::{Pipeline, PipelineConfig};
use meme_simweb::SimConfig;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generate");
    group.sample_size(10);
    group.bench_function("tiny", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(SimConfig::tiny(seed).generate())
        })
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let dataset = SimConfig::tiny(1).generate();
    let mut group = c.benchmark_group("pipeline_steps_1_6");
    group.sample_size(10);
    group.bench_function("tiny_oracle_filter", |b| {
        let pipeline = Pipeline::new(PipelineConfig::fast());
        b.iter(|| black_box(pipeline.run(&dataset).expect("runs")))
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_pipeline);
criterion_main!(benches);
