//! Step-1 benchmarks: image rendering, DCT, and the three hashing
//! algorithms.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use meme_imaging::dct::Dct2d;
use meme_imaging::synth::TemplateGenome;
use meme_phash::{AverageHasher, DifferenceHasher, ImageHasher, PerceptualHasher};
use std::hint::black_box;

fn bench_render(c: &mut Criterion) {
    c.bench_function("render_template_64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(TemplateGenome::new(seed).render(64))
        })
    });
}

fn bench_dct(c: &mut Criterion) {
    let plan = Dct2d::new(32);
    let input: Vec<f64> = (0..32 * 32).map(|i| (i as f64 * 0.37).sin()).collect();
    c.bench_function("dct2d_32x32", |b| {
        b.iter(|| black_box(plan.forward(black_box(&input))))
    });
}

fn bench_hashers(c: &mut Criterion) {
    let img = TemplateGenome::new(7).render(64);
    let mut group = c.benchmark_group("hashers");
    group.bench_function("phash", |b| {
        let h = PerceptualHasher::new();
        b.iter(|| black_box(h.hash(black_box(&img))))
    });
    group.bench_function("ahash", |b| {
        b.iter(|| black_box(AverageHasher.hash(black_box(&img))))
    });
    group.bench_function("dhash", |b| {
        b.iter(|| black_box(DifferenceHasher.hash(black_box(&img))))
    });
    group.finish();
}

fn bench_end_to_end_hash(c: &mut Criterion) {
    // The §7 unit of work: render + hash one image.
    c.bench_function("render_and_phash", |b| {
        let h = PerceptualHasher::new();
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                TemplateGenome::new(seed).render(64)
            },
            |img| black_box(h.hash(&img)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_render,
    bench_dct,
    bench_hashers,
    bench_end_to_end_hash
);
criterion_main!(benches);
