//! Step-2/6 benchmarks: the three Hamming radius-query engines.
//!
//! This is the reproduction's counterpart of §7's performance
//! discussion (73 images/sec on two Titan Xp GPUs against 12K medoids):
//! radius-8 queries of a stream of hashes against a medoid set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use meme_index::{BkTreeIndex, BruteForceIndex, HammingIndex, MihIndex};
use meme_phash::PHash;
use meme_stats::seeded_rng;
use rand::RngExt;
use std::hint::black_box;

fn clustered_hashes(n: usize, seed: u64) -> Vec<PHash> {
    // Realistic workload: clusters of near-duplicates + random mass.
    let mut rng = seeded_rng(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let center = PHash(rng.random());
        let family = rng.random_range(1..12usize).min(n - out.len());
        for _ in 0..family {
            let flips: Vec<u8> = (0..rng.random_range(0..5u8))
                .map(|_| rng.random_range(0..64u8))
                .collect();
            out.push(center.with_flipped_bits(&flips));
        }
    }
    out
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("radius_query_r8");
    for &n in &[1_000usize, 10_000, 50_000] {
        let hashes = clustered_hashes(n, 42);
        let queries = clustered_hashes(256, 43);
        group.throughput(Throughput::Elements(queries.len() as u64));

        let brute = BruteForceIndex::new(hashes.clone());
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    total += brute.radius_query(q, 8).len();
                }
                black_box(total)
            })
        });

        let bk = BkTreeIndex::new(hashes.clone());
        group.bench_with_input(BenchmarkId::new("bktree", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    total += bk.radius_query(q, 8).len();
                }
                black_box(total)
            })
        });

        let mih = MihIndex::new(hashes.clone(), 8);
        group.bench_with_input(BenchmarkId::new("mih", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    total += mih.radius_query(q, 8).len();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let hashes = clustered_hashes(20_000, 44);
    let mut group = c.benchmark_group("index_build_20k");
    group.bench_function("bktree", |b| {
        b.iter(|| black_box(BkTreeIndex::new(hashes.clone())))
    });
    group.bench_function("mih", |b| {
        b.iter(|| black_box(MihIndex::new(hashes.clone(), 8)))
    });
    group.finish();
}

criterion_group!(benches, bench_engines, bench_build);
criterion_main!(benches);
