//! Step-4/5 benchmarks: CNN inference/training and cluster annotation.

use criterion::{criterion_group, criterion_main, Criterion};
use meme_annotate::annotator::annotate_clusters;
use meme_annotate::kym::{KymCategory, KymEntry, KymSite};
use meme_annotate::nn::{Cnn, TrainConfig};
use meme_annotate::screenshot::ScreenshotCorpus;
use meme_phash::PHash;
use meme_stats::seeded_rng;
use rand::RngExt;
use std::hint::black_box;

fn bench_cnn_inference(c: &mut Criterion) {
    let corpus = ScreenshotCorpus::generate(0.002, 1);
    let net = Cnn::new(2);
    let input = &corpus.inputs[0];
    c.bench_function("cnn_inference_32x32", |b| {
        b.iter(|| black_box(net.predict_proba(black_box(input))))
    });
}

fn bench_cnn_training(c: &mut Criterion) {
    let corpus = ScreenshotCorpus::generate(0.002, 3);
    let mut group = c.benchmark_group("cnn_train_epoch");
    group.sample_size(10);
    group.bench_function(format!("{}_images", corpus.len()).as_str(), |b| {
        b.iter(|| {
            let mut net = Cnn::new(4);
            black_box(net.train(
                &corpus.inputs,
                &corpus.labels,
                &TrainConfig {
                    epochs: 1,
                    ..TrainConfig::default()
                },
            ))
        })
    });
    group.finish();
}

fn bench_annotation(c: &mut Criterion) {
    // 1K medoids vs a 200-entry site with 30-image galleries.
    let mut rng = seeded_rng(5);
    let entries: Vec<KymEntry> = (0..200)
        .map(|id| {
            let base = PHash(rng.random());
            KymEntry {
                id,
                name: format!("entry {id}"),
                category: KymCategory::Meme,
                tags: vec![],
                origin: "4chan".into(),
                gallery: (0..30)
                    .map(|k| base.with_flipped_bits(&[k as u8 % 64, (k * 7) as u8 % 64]))
                    .collect(),
                people: vec![],
                cultures: vec![],
            }
        })
        .collect();
    let site = KymSite::new(entries);
    let medoids: Vec<PHash> = (0..1000).map(|_| PHash(rng.random())).collect();
    let mut group = c.benchmark_group("annotate_clusters");
    group.sample_size(20);
    group.bench_function("1k_medoids_vs_6k_gallery", |b| {
        b.iter(|| black_box(annotate_clusters(&medoids, &site, 8)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cnn_inference,
    bench_cnn_training,
    bench_annotation
);
criterion_main!(benches);
