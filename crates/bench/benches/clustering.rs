//! Step-3 benchmarks: DBSCAN (via MIH adjacency) and hierarchical
//! clustering, including the Appendix-A eps ablation's cost profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meme_cluster::dbscan::{dbscan, dbscan_with_index, DbscanParams};
use meme_cluster::hier::{Dendrogram, Linkage};
use meme_index::{all_neighbors, MihIndex};
use meme_phash::PHash;
use meme_stats::seeded_rng;
use rand::RngExt;
use std::hint::black_box;

fn clustered_hashes(n: usize, seed: u64) -> Vec<PHash> {
    let mut rng = seeded_rng(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let center = PHash(rng.random());
        let family = rng.random_range(1..12usize).min(n - out.len());
        for _ in 0..family {
            let flips: Vec<u8> = (0..rng.random_range(0..5u8))
                .map(|_| rng.random_range(0..64u8))
                .collect();
            out.push(center.with_flipped_bits(&flips));
        }
    }
    out
}

fn bench_dbscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("dbscan_mih");
    group.sample_size(10);
    for &n in &[5_000usize, 20_000] {
        let hashes = clustered_hashes(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let index = MihIndex::new(hashes.clone(), 8);
            b.iter(|| black_box(dbscan_with_index(&index, DbscanParams::default(), 0)))
        });
    }
    group.finish();
}

fn bench_label_propagation(c: &mut Criterion) {
    // Isolate the graph-labeling half from the radius queries.
    let hashes = clustered_hashes(20_000, 8);
    let index = MihIndex::new(hashes, 8);
    let neighbors = all_neighbors(&index, 8, 0);
    c.bench_function("dbscan_labeling_20k", |b| {
        b.iter(|| black_box(dbscan(black_box(&neighbors), 5)))
    });
}

fn bench_hier(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchical_average_linkage");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let condensed: Vec<f64> = {
            let mut rng = seeded_rng(9);
            (0..n * (n - 1) / 2)
                .map(|_| rng.random_range(0.0..1.0))
                .collect()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Dendrogram::build(n, &condensed, Linkage::Average)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dbscan, bench_label_propagation, bench_hier);
criterion_main!(benches);
