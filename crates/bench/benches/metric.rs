//! §2.3 benchmarks: the custom distance metric, the τ ablation, and
//! Fig. 7 graph construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meme_core::graph::{ClusterGraph, GraphConfig};
use meme_core::metric::{ClusterDescriptor, ClusterDistance};
use meme_phash::PHash;
use meme_stats::seeded_rng;
use rand::RngExt;
use std::collections::HashSet;
use std::hint::black_box;

fn descriptors(n: usize, seed: u64) -> (Vec<ClusterDescriptor>, Vec<String>) {
    let mut rng = seeded_rng(seed);
    let memes = ["Smug Frog", "Sad Frog", "Pepe", "Roll Safe", "MAGA"];
    let mut ds = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let meme = memes[rng.random_range(0..memes.len())];
        ds.push(ClusterDescriptor {
            medoid: PHash(rng.random()),
            annotated: true,
            memes: HashSet::from([meme.to_string()]),
            people: HashSet::new(),
            cultures: HashSet::from(["Frog Memes".to_string()]),
        });
        labels.push(meme.to_string());
    }
    (ds, labels)
}

fn bench_distance(c: &mut Criterion) {
    let (ds, _) = descriptors(2, 1);
    let metric = ClusterDistance::default();
    c.bench_function("metric_distance_full_mode", |b| {
        b.iter(|| black_box(metric.distance(black_box(&ds[0]), black_box(&ds[1]))))
    });
}

fn bench_condensed(c: &mut Criterion) {
    let mut group = c.benchmark_group("condensed_matrix");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let (ds, _) = descriptors(n, 2);
        let metric = ClusterDistance::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(metric.condensed_matrix(&ds)))
        });
    }
    group.finish();
}

fn bench_tau_ablation(c: &mut Criterion) {
    // τ changes nothing about cost, but the ablation binary reuses this
    // to show throughput is τ-independent while clustering quality is
    // not.
    let (ds, _) = descriptors(200, 3);
    let mut group = c.benchmark_group("tau_ablation");
    group.sample_size(10);
    for &tau in &[1.0f64, 25.0, 64.0] {
        let metric = ClusterDistance::with_tau(tau);
        group.bench_with_input(BenchmarkId::from_parameter(tau as u64), &tau, |b, _| {
            b.iter(|| black_box(metric.condensed_matrix(&ds)))
        });
    }
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let (ds, labels) = descriptors(400, 4);
    let metric = ClusterDistance::default();
    let config = GraphConfig {
        kappa: 0.45,
        min_degree: 2,
    };
    let mut group = c.benchmark_group("fig7_graph_build");
    group.sample_size(10);
    group.bench_function("400_clusters", |b| {
        b.iter(|| black_box(ClusterGraph::build(&ds, &labels, &metric, &config)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_distance,
    bench_condensed,
    bench_tau_ablation,
    bench_graph
);
criterion_main!(benches);
