//! The serve chaos suite: adversarial clients against a live server.
//!
//! Asserts the connection-lifecycle contract from DESIGN.md §12
//! ("Connection lifecycle and overload") end to end, over real TCP:
//!
//! * every adversary gets its **typed** rejection (never a silent drop,
//!   never a hang, never a panic);
//! * the **well-behaved cohort answers byte-identically** to an
//!   attack-free run while the full adversary wave and an accept flood
//!   are live;
//! * live **threads stay bounded** by cap + workers under attack, and
//!   `Server::shutdown` joins every one of them;
//! * reader **memory stays bounded** under a newline-free blob attack.
//!
//! The suite drives the same adversary implementations as the
//! `serve-load --mode <adversary>` CLI (see `meme_bench::serveload`),
//! so CI's `serve-chaos` job and these tests can never drift apart.

use meme_bench::serveload::{
    flood_accepts, live_threads, peak_rss_kb, run_adversary, run_adversary_wave, run_cohort,
    Adversary,
};
use meme_core::pipeline::{Pipeline, PipelineConfig};
use meme_metrics::{Metrics, Registry};
use meme_phash::PHash;
use meme_serve::{protocol, Server, ServerConfig, Snapshot, SnapshotStore, DEFAULT_THETA};
use meme_simweb::SimConfig;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Thread-count and RSS assertions need the process to themselves:
/// every test in this binary serializes on this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One tiny pipeline run shared by the whole suite (the pipeline
/// dominates wall time; every test serves the same snapshot).
fn store() -> Arc<SnapshotStore> {
    Arc::clone(&fixture().0)
}

fn medoids() -> &'static [PHash] {
    &fixture().1
}

fn fixture() -> &'static (Arc<SnapshotStore>, Vec<PHash>) {
    static FIXTURE: OnceLock<(Arc<SnapshotStore>, Vec<PHash>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = SimConfig::tiny(17).generate();
        let output = Pipeline::new(PipelineConfig::fast())
            .run(&dataset)
            .expect("tiny pipeline runs");
        let snapshot = Snapshot::build(&output, None, DEFAULT_THETA, 0).expect("snapshot builds");
        let medoids: Vec<PHash> = snapshot.records().iter().map(|r| r.medoid).collect();
        assert!(!medoids.is_empty(), "tiny run must produce clusters");
        (Arc::new(SnapshotStore::new(snapshot)), medoids)
    })
}

/// The chaos server configuration: short line budget so attacks resolve
/// in milliseconds, cap sized to cohort + wave.
const COHORT: usize = 3;
const REQUESTS: usize = 150;

fn chaos_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        max_conns: COHORT + Adversary::ALL.len(),
        read_timeout_ms: 300,
        max_line_bytes: 8 * 1024,
        ..ServerConfig::default()
    }
}

#[test]
fn every_adversary_gets_its_typed_rejection_and_server_stays_healthy() {
    let _guard = serial();
    let registry = Arc::new(Registry::new());
    let server = Server::start(
        store(),
        chaos_config(),
        Metrics::from_registry(Arc::clone(&registry)),
    )
    .expect("start server");
    let addr = server.local_addr();
    let config = chaos_config();

    for adversary in Adversary::ALL {
        let report = run_adversary(
            addr,
            adversary,
            config.read_timeout_ms,
            config.max_line_bytes,
        );
        match adversary {
            Adversary::SlowLoris | Adversary::IdleHolder => {
                assert_eq!(
                    report.rejection.as_deref(),
                    Some(protocol::READ_TIMEOUT),
                    "{} must get the typed read-timeout",
                    adversary.label()
                );
                assert!(report.closed, "{} then closes", adversary.label());
            }
            Adversary::OversizedLine => {
                let line = report.rejection.expect("oversized-line gets a rejection");
                assert!(
                    line.contains("exceeds") && line.contains("8192"),
                    "typed oversize rejection names the cap: {line}"
                );
                assert!(report.closed, "oversized-line then closes");
            }
            Adversary::GarbageBytes => {
                let line = report.rejection.expect("garbage gets a typed error");
                assert!(line.contains("error"), "typed garbage rejection: {line}");
            }
            Adversary::DisconnectMidBatch => {
                // No response to read; the contract is that the server
                // survives, which the cohort check below proves.
            }
        }
        // After every attack the server still answers cleanly.
        let healthy = run_cohort(addr, medoids(), 7, 1, 25);
        assert_eq!(healthy[0].responses.len(), 25);
    }

    let counters = registry.snapshot().counters;
    assert!(
        counters.get("serve.timeouts").copied().unwrap_or(0) >= 2,
        "slow-loris and idle-holder both count as timeouts: {counters:?}"
    );
    assert!(
        counters.get("serve.oversized").copied().unwrap_or(0) >= 1,
        "oversized line is counted: {counters:?}"
    );
    server.shutdown();
}

#[test]
fn cohort_is_byte_identical_under_full_adversary_wave_and_flood() {
    let _guard = serial();
    let config = chaos_config();

    // Attack-free reference transcripts.
    let reference = {
        let server =
            Server::start(store(), config.clone(), Metrics::disabled()).expect("reference server");
        let t = run_cohort(server.local_addr(), medoids(), 7, COHORT, REQUESTS);
        server.shutdown();
        t
    };

    let registry = Arc::new(Registry::new());
    let server = Server::start(
        store(),
        config.clone(),
        Metrics::from_registry(Arc::clone(&registry)),
    )
    .expect("attacked server");
    let addr = server.local_addr();

    let threads_before = live_threads();
    let (under_attack, _wave) = std::thread::scope(|scope| {
        let wave = scope
            .spawn(move || run_adversary_wave(addr, config.read_timeout_ms, config.max_line_bytes));
        let cohort = scope.spawn(move || run_cohort(addr, medoids(), 7, COHORT, REQUESTS));
        (cohort.join().expect("cohort"), wave.join().expect("wave"))
    });

    // Fill every connection slot with idle holders, then flood: with
    // the cap provably reached, every extra accept must shed typed.
    let max_conns = chaos_config().max_conns;
    let holders: Vec<std::net::TcpStream> = (0..max_conns)
        .map(|_| std::net::TcpStream::connect(addr).expect("holder connects"))
        .collect();
    while server.active_connections() < max_conns {
        std::thread::yield_now();
    }
    let flood = flood_accepts(addr, 6);
    let threads_during = live_threads();
    drop(holders);

    // Byte-identical answers for the well-behaved cohort.
    assert_eq!(under_attack.len(), reference.len());
    for (i, (a, b)) in under_attack.iter().zip(&reference).enumerate() {
        assert_eq!(
            a.responses, b.responses,
            "client {i} transcript diverged under attack"
        );
    }

    // With the cap held, the whole flood sheds typed.
    assert_eq!(
        flood.typed_sheds, 6,
        "every flooded accept must shed typed: {flood:?}"
    );
    let shed = registry.snapshot().counters.get("serve.shed").copied();
    assert!(
        shed.unwrap_or(0) >= flood.typed_sheds as u64,
        "serve.shed counts every typed shed: {shed:?} vs {flood:?}"
    );

    // Threads stay bounded by cap + workers (plus harness slack).
    if let (Some(before), Some(during)) = (threads_before, threads_during) {
        let bound = before + chaos_config().max_conns + chaos_config().workers + 4;
        assert!(
            during <= bound,
            "threads unbounded under attack: {during} > {bound}"
        );
    }

    server.shutdown();
}

#[test]
fn shutdown_joins_every_thread_with_attackers_still_connected() {
    let _guard = serial();
    let Some(baseline) = live_threads() else {
        return; // no procfs — nothing to assert on this platform
    };
    let config = chaos_config();
    let server = Server::start(store(), config.clone(), Metrics::disabled()).expect("server");
    let addr = server.local_addr();

    // Park attackers on the server, then shut down underneath them:
    // idle holders (blocking reads) and a slow loris (mid-trickle).
    let holders: Vec<_> = (0..3)
        .map(|_| std::net::TcpStream::connect(addr).expect("holder connects"))
        .collect();
    let mut loris = std::net::TcpStream::connect(addr).expect("loris connects");
    use std::io::Write;
    let _ = loris.write_all(b"partial");
    // Let the acceptor admit everyone (reader threads spawn).
    while server.active_connections() < 4 {
        std::thread::yield_now();
    }
    assert!(live_threads().unwrap_or(0) > baseline, "readers are live");

    server.shutdown();

    // Every reader, worker, and acceptor thread is joined — the thread
    // count is back to the test's baseline immediately, no timeout wait.
    assert_eq!(
        live_threads().unwrap_or(0),
        baseline,
        "shutdown must join every server thread"
    );
    drop(holders);
    drop(loris);
}

#[test]
fn oversized_blob_attack_keeps_memory_bounded() {
    let _guard = serial();
    let config = ServerConfig {
        max_line_bytes: 64 * 1024,
        ..chaos_config()
    };
    let server = Server::start(store(), config.clone(), Metrics::disabled()).expect("server");
    let addr = server.local_addr();
    let rss_before = peak_rss_kb();

    // Three sequential newline-free blob attacks, each trying to grow a
    // reader buffer far past the cap.
    for _ in 0..3 {
        let report = run_adversary(
            addr,
            Adversary::OversizedLine,
            config.read_timeout_ms,
            config.max_line_bytes,
        );
        assert!(report.rejection.is_some(), "typed rejection each time");
    }

    if let (Some(before), Some(after)) = (rss_before, peak_rss_kb()) {
        // Each attack streams 4x the 64 KiB cap; bounded buffering means
        // peak RSS grows by at most a few MiB of slack, not by the blob.
        assert!(
            after.saturating_sub(before) < 64 * 1024,
            "peak RSS jumped {before} -> {after} kB under blob attack"
        );
    }
    server.shutdown();
}
