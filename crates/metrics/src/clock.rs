//! Monotonic deadlines for connection lifecycle enforcement.
//!
//! The workspace confines wall-clock reads to this crate
//! (`wallclock-outside-metrics`, DESIGN.md §8) so that timing stays
//! centralized and mockable. Spans cover *measurement*; [`Deadline`]
//! covers *enforcement* — the serving layer needs "this request line
//! must complete within its read budget" without reading `Instant`
//! itself. A `Deadline` is a start instant plus a budget; callers only
//! ever ask whether it has expired.

use std::time::{Duration, Instant};

/// A monotonic deadline: a fixed time budget measured from creation.
///
/// Used by the serve connection readers to bound how long one request
/// line may take end to end. A socket read timeout alone only bounds
/// the gap *between* bytes — a client trickling one byte per interval
/// ("slow loris") resets it forever; the deadline does not reset.
#[derive(Debug, Clone)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Self {
            start: Instant::now(),
            budget,
        }
    }

    /// Whether the budget has been exhausted.
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.budget
    }

    /// Budget not yet spent (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_has_budget_and_eventually_expires() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3000));

        let d = Deadline::within(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn expires_after_the_budget_elapses() {
        let d = Deadline::within(Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(20));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }
}
