//! The thread-safe metric store.

use crate::json::{write_escaped, write_f64};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Aggregated wall-time statistics of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Completed invocations.
    pub calls: u64,
    /// Sum of elapsed seconds over all invocations.
    pub total_secs: f64,
    /// Fastest invocation.
    pub min_secs: f64,
    /// Slowest invocation.
    pub max_secs: f64,
}

impl SpanStats {
    fn record(&mut self, secs: f64) {
        self.calls += 1;
        self.total_secs += secs;
        self.min_secs = self.min_secs.min(secs);
        self.max_secs = self.max_secs.max(secs);
    }

    fn new(secs: f64) -> Self {
        Self {
            calls: 1,
            total_secs: secs,
            min_secs: secs,
            max_secs: secs,
        }
    }
}

/// A fixed-bucket histogram. `bounds` are inclusive upper edges;
/// `counts` has one extra trailing slot for overflow observations.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper edge per bucket, ascending.
    pub bounds: Vec<f64>,
    /// Observations per bucket; `counts.len() == bounds.len() + 1`
    /// (the last slot counts values above every bound).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
    }
}

/// A point-in-time copy of every metric in a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span statistics by `/`-separated path.
    pub spans: BTreeMap<String, SpanStats>,
}

/// Version stamp of the exported JSON document shape.
pub const SCHEMA_VERSION: u64 = 1;

/// Thread-safe metric registry.
///
/// All maps are `BTreeMap`s so snapshots and JSON exports are
/// deterministically ordered. The single mutex is deliberate: metric
/// writes in this workspace are per-chunk or per-stage (thousands per
/// run, not millions), so contention is negligible and the
/// implementation stays dependency-free.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Snapshot>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter, creating it at zero first.
    pub fn add_counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current counter value (0 if never written).
    pub fn counter_value(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into a fixed-bucket histogram. The bounds
    /// are fixed on first use; later `bounds` arguments are ignored.
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramSnapshot::new(bounds))
            .observe(value);
    }

    /// Record one completed span invocation.
    pub fn record_span(&self, path: &str, secs: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.spans.get_mut(path) {
            Some(s) => s.record(secs),
            None => {
                inner.spans.insert(path.to_string(), SpanStats::new(secs));
            }
        }
    }

    /// Copy out every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .clone()
    }

    /// Export as pretty-printed JSON with deterministic key order.
    ///
    /// Document shape (see DESIGN.md §7 "Observability"):
    ///
    /// ```json
    /// {
    ///   "schema_version": 1,
    ///   "spans": { "<path>": { "calls": 1, "total_secs": 0.5,
    ///                          "min_secs": 0.5, "max_secs": 0.5 } },
    ///   "counters": { "<name>": 42 },
    ///   "gauges": { "<name>": 3.5 },
    ///   "histograms": { "<name>": { "bounds": [1.0], "counts": [2, 0],
    ///                               "count": 2, "sum": 1.5 } }
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");

        out.push_str("  \"spans\": {");
        for (i, (path, s)) in snap.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_escaped(&mut out, path);
            let _ = write!(out, ": {{\"calls\": {}, \"total_secs\": ", s.calls);
            write_f64(&mut out, s.total_secs);
            out.push_str(", \"min_secs\": ");
            write_f64(&mut out, s.min_secs);
            out.push_str(", \"max_secs\": ");
            write_f64(&mut out, s.max_secs);
            out.push('}');
        }
        out.push_str(if snap.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"counters\": {");
        for (i, (name, v)) in snap.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_escaped(&mut out, name);
            let _ = write!(out, ": {v}");
        }
        out.push_str(if snap.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in snap.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_escaped(&mut out, name);
            out.push_str(": ");
            write_f64(&mut out, *v);
        }
        out.push_str(if snap.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in snap.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_escaped(&mut out, name);
            out.push_str(": {\"bounds\": [");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                write_f64(&mut out, *b);
            }
            out.push_str("], \"counts\": [");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "], \"count\": {}, \"sum\": ", h.count);
            write_f64(&mut out, h.sum);
            out.push('}');
        }
        out.push_str(if snap.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });

        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.add_counter("a", 2);
        r.add_counter("a", 3);
        assert_eq!(r.counter_value("a"), 5);
        assert_eq!(r.counter_value("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = Registry::new();
        r.set_gauge("g", 1.0);
        r.set_gauge("g", 7.5);
        assert_eq!(r.snapshot().gauges["g"], 7.5);
    }

    #[test]
    fn histogram_buckets_by_upper_edge() {
        let r = Registry::new();
        let bounds = [1.0, 5.0, 10.0];
        for v in [0.5, 1.0, 3.0, 10.0, 99.0] {
            r.observe("h", &bounds, v);
        }
        let h = &r.snapshot().histograms["h"];
        // <=1: {0.5, 1.0}; <=5: {3.0}; <=10: {10.0}; overflow: {99.0}.
        assert_eq!(h.counts, vec![2, 1, 1, 1]);
        assert_eq!(h.count, 5);
        assert!((h.sum - 113.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_bounds_sorted_and_deduped() {
        let r = Registry::new();
        r.observe("h", &[5.0, 1.0, 5.0, f64::NAN], 2.0);
        let h = &r.snapshot().histograms["h"];
        assert_eq!(h.bounds, vec![1.0, 5.0]);
        assert_eq!(h.counts.len(), 3);
    }

    #[test]
    fn span_stats_track_extremes() {
        let r = Registry::new();
        r.record_span("p", 2.0);
        r.record_span("p", 0.5);
        r.record_span("p", 1.0);
        let s = &r.snapshot().spans["p"];
        assert_eq!(s.calls, 3);
        assert!((s.total_secs - 3.5).abs() < 1e-9);
        assert_eq!(s.min_secs, 0.5);
        assert_eq!(s.max_secs, 2.0);
    }

    #[test]
    fn concurrent_writes_are_safe_and_exact() {
        use std::sync::Arc;
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    r.add_counter("n", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter_value("n"), 8000);
    }

    #[test]
    fn empty_registry_exports_valid_shape() {
        let json = Registry::new().to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"spans\": {}"));
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn export_is_deterministically_ordered() {
        let build = || {
            let r = Registry::new();
            r.add_counter("zeta", 1);
            r.add_counter("alpha", 2);
            r.set_gauge("mid", 0.5);
            r.record_span("a/b", 1.0);
            r.to_json()
        };
        assert_eq!(build(), build());
        let json = build();
        assert!(json.find("\"alpha\"").unwrap() < json.find("\"zeta\"").unwrap());
    }
}
