//! Observability substrate for the meme pipeline.
//!
//! Morina & Bernstein's web-scale re-measurement of the paper and
//! MemeSequencer both treat matching/clustering throughput as a
//! first-class metric; this crate is the workspace's version of that
//! discipline. It is deliberately **offline and dependency-free**: a
//! thread-safe [`Registry`] of
//!
//! * **spans** — wall-time timers with hierarchical `/`-separated paths
//!   (`pipeline/hash`), aggregated as call-count / total / min / max;
//! * **counters** — monotonic `u64` event counts (images hashed,
//!   neighbor queries, EM iterations, degradations);
//! * **gauges** — last-write-wins `f64` readings (throughput,
//!   log-likelihoods);
//! * **histograms** — fixed-bucket distributions (EM iterations per
//!   cluster).
//!
//! Everything exports as deterministic, schema-stable JSON
//! ([`Registry::to_json`]; the schema is documented in DESIGN.md §7
//! "Observability" and validated by `memes validate-metrics`).
//!
//! The [`Metrics`] handle wraps an `Option<Arc<Registry>>` so
//! instrumented code pays a single branch when metrics are disabled —
//! hot paths never need `#[cfg]`s or separate uninstrumented twins.
//!
//! ```
//! use meme_metrics::Metrics;
//!
//! let metrics = Metrics::enabled();
//! let span = metrics.span("pipeline");
//! {
//!     let stage = span.child("hash");
//!     metrics.add("hash.images", 420);
//!     stage.finish();
//! }
//! span.finish();
//! let json = metrics.to_json().unwrap();
//! assert!(json.contains("\"pipeline/hash\""));
//! assert!(json.contains("\"hash.images\": 420"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod json;
mod registry;
mod span;

pub use clock::Deadline;
pub use registry::{HistogramSnapshot, Registry, Snapshot, SpanStats, SCHEMA_VERSION};
pub use span::Span;

use std::sync::Arc;

/// Bucket upper bounds for iteration-count style histograms (EM sweeps,
/// training epochs): roughly logarithmic, final bucket is overflow.
pub const ITERATION_BUCKETS: [f64; 9] = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0];

/// Bucket upper bounds for serving-path latencies in **microseconds**:
/// sub-millisecond resolution where in-memory lookups live, coarse
/// tail buckets for scheduling hiccups, final bucket is overflow.
pub const LATENCY_BUCKETS_US: [f64; 12] = [
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 50_000.0, 250_000.0,
];

/// Bucket upper bounds for admission-queue micro-batch sizes: size 1
/// means the server is keeping up (no batching needed); growth toward
/// the right edge shows queueing under load.
pub const BATCH_SIZE_BUCKETS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// A cheaply cloneable handle to an optional [`Registry`].
///
/// Disabled handles make every operation a no-op (spans still measure
/// elapsed time, so callers can compute throughput regardless), which
/// lets library code take a `&Metrics` unconditionally.
#[derive(Debug, Clone, Default)]
pub struct Metrics(Option<Arc<Registry>>);

impl Metrics {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Self(Some(Arc::new(Registry::new())))
    }

    /// Wrap an existing (possibly shared) registry.
    pub fn from_registry(registry: Arc<Registry>) -> Self {
        Self(Some(registry))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The backing registry, when enabled.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.0.as_ref()
    }

    /// Add `delta` to the named monotonic counter.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(r) = &self.0 {
            r.add_counter(name, delta);
        }
    }

    /// Increment the named counter by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Set the named gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(r) = &self.0 {
            r.set_gauge(name, value);
        }
    }

    /// Record `value` into the named fixed-bucket histogram. The bucket
    /// bounds are fixed by the first observation; later calls may pass
    /// the same `bounds` (or an empty slice) — they are not re-read.
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        if let Some(r) = &self.0 {
            r.observe(name, bounds, value);
        }
    }

    /// Current value of a counter (0 when disabled or never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.0.as_ref().map_or(0, |r| r.counter_value(name))
    }

    /// Start a span at `path`. Time is measured even when disabled (the
    /// returned guard's `finish` reports elapsed seconds); recording
    /// happens only when enabled.
    pub fn span(&self, path: &str) -> Span {
        Span::start(self.0.clone(), path.to_string())
    }

    /// Export the registry as JSON; `None` when disabled.
    pub fn to_json(&self) -> Option<String> {
        self.0.as_ref().map(|r| r.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let m = Metrics::disabled();
        m.inc("x");
        m.gauge("g", 1.0);
        m.observe("h", &[1.0], 0.5);
        let span = m.span("s");
        assert!(span.finish() >= 0.0);
        assert_eq!(m.counter("x"), 0);
        assert!(m.to_json().is_none());
        assert!(!m.is_enabled());
    }

    #[test]
    fn enabled_handle_records() {
        let m = Metrics::enabled();
        m.inc("jobs");
        m.add("jobs", 2);
        m.gauge("speed", 4.5);
        m.observe("iters", &ITERATION_BUCKETS, 3.0);
        assert_eq!(m.counter("jobs"), 3);
        let snap = m.registry().unwrap().snapshot();
        assert_eq!(snap.counters["jobs"], 3);
        assert_eq!(snap.gauges["speed"], 4.5);
        assert_eq!(snap.histograms["iters"].count, 1);
    }

    #[test]
    fn clones_share_the_registry() {
        let a = Metrics::enabled();
        let b = a.clone();
        a.inc("shared");
        b.inc("shared");
        assert_eq!(a.counter("shared"), 2);
    }

    #[test]
    fn spans_nest_by_path() {
        let m = Metrics::enabled();
        let parent = m.span("run");
        let child = parent.child("stage");
        child.finish();
        parent.finish();
        let snap = m.registry().unwrap().snapshot();
        assert!(snap.spans.contains_key("run"));
        assert!(snap.spans.contains_key("run/stage"));
        assert_eq!(snap.spans["run"].calls, 1);
    }
}
