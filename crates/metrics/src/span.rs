//! Hierarchical wall-time spans.

use crate::Registry;
use std::sync::Arc;
use std::time::Instant;

/// A running span. Records its elapsed wall time into the registry when
/// finished (explicitly via [`Span::finish`], or implicitly on drop).
///
/// Hierarchy is path-based: [`Span::child`] starts a span whose path is
/// `parent_path/name`, so exported JSON groups naturally by prefix and
/// spans can cross thread boundaries without thread-local state.
#[derive(Debug)]
pub struct Span {
    registry: Option<Arc<Registry>>,
    path: String,
    start: Instant,
    done: bool,
}

impl Span {
    pub(crate) fn start(registry: Option<Arc<Registry>>, path: String) -> Self {
        Self {
            registry,
            path,
            start: Instant::now(),
            done: false,
        }
    }

    /// This span's full `/`-separated path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Start a child span named `path/name`.
    pub fn child(&self, name: &str) -> Span {
        Span::start(self.registry.clone(), format!("{}/{}", self.path, name))
    }

    /// Seconds elapsed so far, without finishing the span.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stop the span, record it, and return the elapsed seconds.
    /// Elapsed time is returned even when the handle is disabled.
    pub fn finish(mut self) -> f64 {
        self.record()
    }

    fn record(&mut self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if !self.done {
            self.done = true;
            if let Some(r) = &self.registry {
                r.record_span(&self.path, secs);
            }
        }
        secs
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_records_once() {
        let r = Arc::new(Registry::new());
        let span = Span::start(Some(Arc::clone(&r)), "t".into());
        let secs = span.finish();
        assert!(secs >= 0.0);
        assert_eq!(r.snapshot().spans["t"].calls, 1);
    }

    #[test]
    fn drop_records_unfinished_span() {
        let r = Arc::new(Registry::new());
        {
            let _span = Span::start(Some(Arc::clone(&r)), "dropped".into());
        }
        assert_eq!(r.snapshot().spans["dropped"].calls, 1);
    }

    #[test]
    fn child_paths_compose() {
        let r = Arc::new(Registry::new());
        let parent = Span::start(Some(Arc::clone(&r)), "a".into());
        let child = parent.child("b");
        let grandchild = child.child("c");
        assert_eq!(grandchild.path(), "a/b/c");
        grandchild.finish();
        child.finish();
        parent.finish();
        let spans = r.snapshot().spans;
        assert!(spans.contains_key("a/b/c"));
    }

    #[test]
    fn disabled_span_still_measures() {
        let span = Span::start(None, "x".into());
        assert!(span.finish() >= 0.0);
    }
}
