//! Minimal JSON emission helpers (the crate is dependency-free).

use std::fmt::Write;

/// Append `s` as a JSON string literal (quoted, escaped).
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` as a JSON number. JSON has no NaN/Infinity, so non-finite
/// values are emitted as `null` (schema consumers treat that as
/// "measurement invalid", which it is).
pub(crate) fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` on f64 never produces exponent notation and round-trips all
    // finite values; integral values print without a fraction ("3"),
    // which is still a valid JSON number.
    let _ = write!(out, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esc(s: &str) -> String {
        let mut out = String::new();
        write_escaped(&mut out, s);
        out
    }

    fn num(v: f64) -> String {
        let mut out = String::new();
        write_f64(&mut out, v);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(esc("plain"), "\"plain\"");
        assert_eq!(esc("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(esc("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(esc("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(3.0), "3");
        assert_eq!(num(-0.25), "-0.25");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
