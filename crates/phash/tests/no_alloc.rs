//! Steady-state allocation audit for the scratch-reuse hash kernel.
//!
//! `PerceptualHasher::hash_into`'s contract is that once a worker's
//! [`HashScratch`] buffers have grown to the kernel's fixed geometry,
//! hashing performs **zero heap allocations**: the box resize writes
//! into the cached f64 plane, the truncated DCT fills caller-owned
//! temporaries, and the median threshold is in-place selection. Source
//! images of varying shapes (jitter crops change dimensions post to
//! post) must only re-derive the cached filter windows in place. A
//! counting global allocator makes that claim a test instead of a
//! comment.
//!
//! The whole file is one `#[test]` so the counter is never shared with
//! a concurrently running test (the test harness runs tests in threads;
//! a second test's allocations would show up in our window).

use meme_imaging::image::Image;
use meme_imaging::synth::{JitterConfig, TemplateGenome, VariantGenome};
use meme_phash::{HashScratch, ImageHasher, PerceptualHasher};
use meme_stats::seeded_rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation counter. Deallocations
/// are not counted — the assertion is about *new* heap traffic.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// The workspace lib crates `#![forbid(unsafe_code)]`; integration tests
// are separate crates, and a global allocator shim is exactly the kind
// of boundary where the unsafety is contained and auditable.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A deterministic image mix covering the shapes the hash stage sees:
/// canonical 64×64 renders, jittered re-posts (whose crop component
/// shrinks dimensions), and off-size renders.
fn workload() -> Vec<Image> {
    let mut rng = seeded_rng(0x5EED);
    let mut images = Vec::new();
    for seed in 0..5u64 {
        let v = VariantGenome::random(TemplateGenome::new(seed), seed, 2);
        images.push(v.render(64));
        for _ in 0..4 {
            images.push(v.render_jittered(64, &JitterConfig::default(), &mut rng));
        }
    }
    images.push(TemplateGenome::new(9).render(32));
    images.push(TemplateGenome::new(10).render(96));
    images.push(Image::filled(64, 64, 0.5));
    images
}

#[test]
fn steady_state_hashing_does_not_allocate() {
    let images = workload();
    let hasher = PerceptualHasher::new();
    let mut scratch = HashScratch::new();

    // Warmup: drive every buffer (plane, DCT temporaries, block, resize
    // windows) to its high-water mark across the full shape mix.
    let warmup: Vec<_> = images
        .iter()
        .map(|img| hasher.hash_into(img, &mut scratch))
        .collect();

    let before = allocations();
    for (img, &expect) in images.iter().zip(&warmup) {
        let got = hasher.hash_into(img, &mut scratch);
        assert_eq!(got, expect, "steady-state kernel must stay deterministic");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state hash_into must not touch the heap"
    );
}
