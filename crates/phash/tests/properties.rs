//! Property-based tests: perceptual-hash robustness over arbitrary
//! templates and perturbation magnitudes — Step 1's contract with the
//! rest of the pipeline.

use meme_imaging::synth::{JitterConfig, TemplateGenome, VariantGenome};
use meme_imaging::transform;
use meme_phash::{AverageHasher, DifferenceHasher, ImageHasher, PerceptualHasher};
use meme_stats::seeded_rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn hash_is_pure(seed: u64) {
        let img = TemplateGenome::new(seed).render(64);
        let h = PerceptualHasher::new();
        prop_assert_eq!(h.hash(&img), h.hash(&img));
    }

    #[test]
    fn brightness_and_contrast_within_threshold(seed: u64, delta in -0.08f32..0.08, factor in 0.85f32..1.18) {
        let img = TemplateGenome::new(seed).render(64);
        let h = PerceptualHasher::new();
        let base = h.hash(&img);
        let moved = h.hash(&transform::contrast(&transform::brightness(&img, delta), factor));
        prop_assert!(
            base.distance(moved) <= 8,
            "photometric jitter moved hash by {}",
            base.distance(moved)
        );
    }

    #[test]
    fn rescale_within_threshold(seed: u64, factor in 0.6f32..1.5) {
        let img = TemplateGenome::new(seed).render(64);
        let h = PerceptualHasher::new();
        let base = h.hash(&img);
        let moved = h.hash(&transform::rescale_cycle(&img, factor));
        prop_assert!(base.distance(moved) <= 8);
    }

    #[test]
    fn photometric_jitter_within_clustering_threshold(template_seed: u64, variant_seed: u64, jitter_seed: u64) {
        // Crop-free jitter must always stay within eps = 8; the crop
        // component is allowed to push individual re-posts further (the
        // DBSCAN chain absorbs them), bounded below.
        let v = VariantGenome::random(TemplateGenome::new(template_seed), variant_seed, 1);
        let h = PerceptualHasher::new();
        let canon = h.hash(&v.render(64));
        let mut rng = seeded_rng(jitter_seed);
        let photometric = JitterConfig { crop_prob: 0.0, ..JitterConfig::default() };
        let jittered = h.hash(&v.render_jittered(64, &photometric, &mut rng));
        prop_assert!(
            canon.distance(jittered) <= 8,
            "photometric jitter broke clustering contract: distance {}",
            canon.distance(jittered)
        );
    }

    #[test]
    fn full_jitter_stays_moderate(template_seed: u64, variant_seed: u64, jitter_seed: u64) {
        let v = VariantGenome::random(TemplateGenome::new(template_seed), variant_seed, 1);
        let h = PerceptualHasher::new();
        let canon = h.hash(&v.render(64));
        let mut rng = seeded_rng(jitter_seed);
        let jittered = h.hash(&v.render_jittered(64, &JitterConfig::default(), &mut rng));
        prop_assert!(
            canon.distance(jittered) <= 18,
            "full jitter escaped the cluster: distance {}",
            canon.distance(jittered)
        );
    }

    #[test]
    fn distinct_templates_rarely_collide(a: u64, b: u64) {
        prop_assume!(a != b);
        let h = PerceptualHasher::new();
        let ha = h.hash(&TemplateGenome::new(a).render(64));
        let hb = h.hash(&TemplateGenome::new(b).render(64));
        // Random 64-bit fingerprints of independent low-frequency fields
        // concentrate around distance 32; anything below the clustering
        // threshold would poison DBSCAN. Allow a tiny margin above θ=8
        // for pathological draws.
        prop_assert!(
            ha.distance(hb) > 10,
            "templates {a} and {b} collide at distance {}",
            ha.distance(hb)
        );
    }

    #[test]
    fn all_hashers_are_deterministic_and_distinct(seed: u64) {
        let img = TemplateGenome::new(seed).render(64);
        let p = PerceptualHasher::new().hash(&img);
        let a = AverageHasher.hash(&img);
        let d = DifferenceHasher.hash(&img);
        prop_assert_eq!(PerceptualHasher::new().hash(&img), p);
        prop_assert_eq!(AverageHasher.hash(&img), a);
        prop_assert_eq!(DifferenceHasher.hash(&img), d);
    }
}
