//! Reusable workspace for the allocation-free hashing path.
//!
//! Mirrors `meme_index::QueryScratch` and `meme_serve`'s `ServeScratch`:
//! each hashing worker owns one [`HashScratch`] and threads it through
//! [`ImageHasher::hash_into`](crate::ImageHasher::hash_into), so the
//! resize geometry, the f64 pixel plane, the DCT temporaries, and the
//! low-frequency coefficient block are allocated once and reused for
//! every image. Steady state, hashing performs zero heap allocations
//! (proven by `crates/phash/tests/no_alloc.rs`).

use meme_imaging::resize::BoxResizeScratch;

/// Per-worker scratch buffers for [`PerceptualHasher`]'s kernel.
///
/// All buffers grow to the hasher's fixed geometry on first use
/// (`32×32` plane, `8×32` DCT temporary, `8×8` block for the default
/// configuration) and never shrink. Source images of varying shapes —
/// jitter crops change dimensions post to post — only re-derive the
/// cached box-filter windows in place; the window vectors' capacity is
/// bounded by the destination side, which is constant.
///
/// A scratch is not tied to one hasher instance: any `PerceptualHasher`
/// (or other [`ImageHasher`](crate::ImageHasher)) may use it, resizing
/// the buffers as needed.
///
/// [`PerceptualHasher`]: crate::PerceptualHasher
#[derive(Debug, Clone, Default)]
pub struct HashScratch {
    /// Cached box-filter source windows.
    pub(crate) resize: BoxResizeScratch,
    /// The resized image as an `n × n` f64 plane (DCT input).
    pub(crate) plane: Vec<f64>,
    /// Row-pass DCT temporary (`hs × n`).
    pub(crate) tmp: Vec<f64>,
    /// Top-left `hs × hs` low-frequency coefficient block.
    pub(crate) block: Vec<f64>,
    /// Working copy of the block for median selection.
    pub(crate) sorted: Vec<f64>,
}

impl HashScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}
