//! The 64-bit perceptual fingerprint type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Maximum possible Hamming distance between two [`PHash`] values. The
/// paper's Eq. 2 uses this as `max` ("recall that each pHash has a size of
/// |d|=64, hence max=64").
pub const MAX_DISTANCE: u32 = 64;

/// A 64-bit perceptual hash.
///
/// Displayed and parsed as 16 lowercase hex digits, matching the paper's
/// examples (`55352b0b8d8b5b53`, `55952b0bb58b5353`, …).
///
/// ```
/// use meme_phash::PHash;
/// let a: PHash = "55352b0b8d8b5b53".parse().unwrap();
/// let b: PHash = "55952b0bb58b5353".parse().unwrap();
/// assert_eq!(a.to_string(), "55352b0b8d8b5b53");
/// assert!(a.distance(b) <= 8); // same Smug Frog cluster
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PHash(pub u64);

impl PHash {
    /// Construct from raw bits.
    pub const fn from_bits(bits: u64) -> Self {
        Self(bits)
    }

    /// The raw bits.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Hamming distance to another hash (number of differing bits).
    #[inline]
    pub const fn distance(self, other: PHash) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Perceptual similarity in `[0, 1]`: `1 - d / 64`.
    pub fn similarity(self, other: PHash) -> f64 {
        1.0 - self.distance(other) as f64 / MAX_DISTANCE as f64
    }

    /// Flip `k` deterministic bit positions; test helper for constructing
    /// hashes at a known distance.
    pub fn with_flipped_bits(self, positions: &[u8]) -> Self {
        let mut bits = self.0;
        for &p in positions {
            bits ^= 1u64 << (p % 64);
        }
        Self(bits)
    }
}

/// SWAR (SIMD-within-a-register) population count: the classic
/// shift-mask-accumulate bit-slicing kernel, branch-free and constant
/// time. Identical to `u64::count_ones` (property-tested below); the
/// index crate's batch-verify loop uses it so the candidate-distance
/// kernel stays a straight line of ALU ops that the compiler can unroll
/// and schedule across four candidates at once, independent of whether
/// the target lowers `count_ones` to a POPCNT instruction.
#[inline(always)]
pub const fn swar_popcount(x: u64) -> u32 {
    let x = x - ((x >> 1) & 0x5555_5555_5555_5555);
    let x = (x & 0x3333_3333_3333_3333) + ((x >> 2) & 0x3333_3333_3333_3333);
    let x = (x + (x >> 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    (x.wrapping_mul(0x0101_0101_0101_0101) >> 56) as u32
}

/// Hamming distance via [`swar_popcount`] — the batch-verify kernels'
/// primitive. Equivalent to [`PHash::distance`].
#[inline(always)]
pub const fn swar_distance(a: PHash, b: PHash) -> u32 {
    swar_popcount(a.0 ^ b.0)
}

impl fmt::Display for PHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Error when parsing a [`PHash`] from a hex string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hash64ParseError {
    /// Input was not exactly 16 characters.
    BadLength(usize),
    /// Input contained a non-hex character.
    BadDigit(char),
}

impl fmt::Display for Hash64ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadLength(n) => write!(f, "expected 16 hex digits, got {n} characters"),
            Self::BadDigit(c) => write!(f, "invalid hex digit {c:?}"),
        }
    }
}

impl std::error::Error for Hash64ParseError {}

impl FromStr for PHash {
    type Err = Hash64ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 16 {
            return Err(Hash64ParseError::BadLength(s.len()));
        }
        let mut bits = 0u64;
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(Hash64ParseError::BadDigit(c))? as u64;
            bits = (bits << 4) | d;
        }
        Ok(Self(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_hashes_roundtrip() {
        for s in ["55352b0b8d8b5b53", "55952b0bb58b5353", "55952b2b9da58a53"] {
            let h: PHash = s.parse().unwrap();
            assert_eq!(h.to_string(), s);
        }
    }

    #[test]
    fn paper_cluster_hashes_are_close() {
        // The three Smug Frog "cluster N" hashes from §2.2 should all be
        // within the clustering threshold of each other.
        // DBSCAN chains points through eps-neighbourhoods, so not every
        // pair in a cluster is within eps; but at least one link must be,
        // and all pairs stay far below random (expected distance 32).
        let a: PHash = "55352b0b8d8b5b53".parse().unwrap();
        let b: PHash = "55952b0bb58b5353".parse().unwrap();
        let c: PHash = "55952b2b9da58a53".parse().unwrap();
        assert!(a.distance(b) <= 8, "d(a,b) = {}", a.distance(b));
        assert!(b.distance(c) <= 16, "d(b,c) = {}", b.distance(c));
        assert!(a.distance(c) <= 16, "d(a,c) = {}", a.distance(c));
    }

    #[test]
    fn distance_properties() {
        let a = PHash(0);
        let b = PHash(u64::MAX);
        assert_eq!(a.distance(a), 0);
        assert_eq!(a.distance(b), 64);
        assert_eq!(a.similarity(b), 0.0);
        assert_eq!(a.similarity(a), 1.0);
    }

    #[test]
    fn parse_errors() {
        assert_eq!("abc".parse::<PHash>(), Err(Hash64ParseError::BadLength(3)));
        assert_eq!(
            "g5352b0b8d8b5b53".parse::<PHash>(),
            Err(Hash64ParseError::BadDigit('g'))
        );
    }

    #[test]
    fn flipped_bits_distance() {
        let h = PHash(0x1234_5678_9abc_def0);
        let f = h.with_flipped_bits(&[0, 5, 63]);
        assert_eq!(h.distance(f), 3);
        // Flipping the same bit twice cancels.
        let g = h.with_flipped_bits(&[7, 7]);
        assert_eq!(h.distance(g), 0);
    }

    proptest! {
        #[test]
        fn swar_popcount_matches_count_ones(bits: u64) {
            prop_assert_eq!(swar_popcount(bits), bits.count_ones());
        }

        #[test]
        fn swar_distance_matches_distance(a: u64, b: u64) {
            prop_assert_eq!(swar_distance(PHash(a), PHash(b)), PHash(a).distance(PHash(b)));
        }

        #[test]
        fn display_parse_roundtrip(bits: u64) {
            let h = PHash(bits);
            let s = h.to_string();
            prop_assert_eq!(s.parse::<PHash>().unwrap(), h);
        }

        #[test]
        fn metric_axioms(a: u64, b: u64, c: u64) {
            let (a, b, c) = (PHash(a), PHash(b), PHash(c));
            // Symmetry.
            prop_assert_eq!(a.distance(b), b.distance(a));
            // Identity of indiscernibles.
            prop_assert_eq!(a.distance(a), 0);
            // Triangle inequality.
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c));
            // Bounded by 64.
            prop_assert!(a.distance(b) <= MAX_DISTANCE);
        }
    }
}
