//! Perceptual image hashing — Step 1 of the paper's pipeline.
//!
//! "We use the Perceptual Hashing (pHash) algorithm to calculate a
//! fingerprint of each image in such a way that any two images that look
//! similar to the human eye map to a 'similar' hash value. pHash generates
//! a feature vector of 64 elements that describe an image, computed from
//! the Discrete Cosine Transform among the different frequency domains of
//! the image." (§2.2)
//!
//! This crate provides:
//!
//! * [`PHash`] — a 64-bit fingerprint with Hamming distance and the hex
//!   string format the paper prints (`55352b0b8d8b5b53`);
//! * [`PerceptualHasher`] — the classic DCT pHash (resize to 32×32, 2-D
//!   DCT-II, keep the 8×8 low-frequency block, threshold at the median of
//!   the AC coefficients);
//! * [`AverageHasher`] and [`DifferenceHasher`] — the standard aHash and
//!   dHash baselines, used by the ablation benches to show why the paper
//!   chose pHash;
//! * the [`ImageHasher`] trait that the rest of the pipeline is generic
//!   over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash64;
pub mod hashers;
pub mod scratch;

pub use hash64::{swar_distance, swar_popcount, Hash64ParseError, PHash, MAX_DISTANCE};
pub use hashers::{AverageHasher, DifferenceHasher, ImageHasher, PerceptualHasher};
pub use scratch::HashScratch;
