//! Hashing algorithms: DCT pHash plus the aHash/dHash baselines.

use crate::hash64::PHash;
use crate::scratch::HashScratch;
use meme_imaging::dct::Dct2d;
use meme_imaging::image::Image;
use meme_imaging::resize::{resize_box, resize_box_into_f64};

/// A perceptual hashing algorithm mapping an image to a 64-bit
/// fingerprint. The pipeline (`meme-core`) is generic over this trait so
/// the ablation benches can swap algorithms.
pub trait ImageHasher {
    /// Hash an image.
    fn hash(&self, img: &Image) -> PHash;

    /// Hash an image reusing caller-owned [`HashScratch`] buffers.
    ///
    /// Returns exactly what [`ImageHasher::hash`] returns; the scratch
    /// only amortizes allocations across calls. Hashing workers hold one
    /// scratch each and call this in their hot loop. The default simply
    /// delegates to `hash`; algorithms with allocation-free kernels
    /// override it.
    fn hash_into(&self, img: &Image, scratch: &mut HashScratch) -> PHash {
        let _ = scratch;
        self.hash(img)
    }

    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// The classic DCT perceptual hash used by the paper (via the Python
/// `ImageHash` library).
///
/// Algorithm: box-resize to `hash_size * highfreq_factor` square
/// (default 32×32), 2-D DCT-II, keep the top-left
/// `hash_size × hash_size` low-frequency block (default 8×8), and set
/// each bit to whether its coefficient exceeds the **median** of that
/// block (DC included, matching `ImageHash.phash`).
#[derive(Debug, Clone)]
pub struct PerceptualHasher {
    hash_size: usize,
    plan: Dct2d,
}

impl PerceptualHasher {
    /// The 32×32 → 8×8 configuration from the paper.
    pub fn new() -> Self {
        Self::with_sizes(8, 4)
    }

    /// Custom configuration: `hash_size²` bits must equal 64, so
    /// `hash_size` must be 8; `highfreq_factor` scales the DCT input
    /// (the paper's ImageHash default is 4 → 32×32 input).
    ///
    /// # Panics
    /// Panics when `hash_size != 8` (the fingerprint type is 64-bit) or
    /// `highfreq_factor == 0`.
    pub fn with_sizes(hash_size: usize, highfreq_factor: usize) -> Self {
        assert!(hash_size == 8, "PHash is 64-bit: hash_size must be 8");
        assert!(highfreq_factor > 0, "highfreq_factor must be non-zero");
        let input = hash_size * highfreq_factor;
        Self {
            hash_size,
            plan: Dct2d::new(input),
        }
    }

    /// Side length of the DCT input (e.g. 32).
    pub fn input_size(&self) -> usize {
        self.plan.n()
    }
}

impl Default for PerceptualHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl ImageHasher for PerceptualHasher {
    fn hash(&self, img: &Image) -> PHash {
        // One-shot convenience wrapper: there is exactly one live kernel
        // (`hash_into`), so the cached, uncached, and scratch-reuse paths
        // cannot drift apart.
        self.hash_into(img, &mut HashScratch::new())
    }

    // The pipeline's hash stage funnels every image through this kernel;
    // steady state it must not allocate (see crates/phash/tests/no_alloc.rs).
    // lint:hotpath(per-image pHash kernel; the scratch buffers amortize allocation)
    fn hash_into(&self, img: &Image, scratch: &mut HashScratch) -> PHash {
        let n = self.plan.n();
        let hs = self.hash_size;
        scratch.plane.resize(n * n, 0.0);
        scratch.tmp.resize(hs * n, 0.0);
        scratch.block.resize(hs * hs, 0.0);

        // Resize straight into the f64 DCT input plane, then compute only
        // the top-left hash_size × hash_size low-frequency block. Both
        // steps are bit-identical to the allocating resize → full DCT →
        // crop path (and `forward_topleft_into` emits the block already
        // in the row-major `coeffs[y * n + x]` order the bits read).
        resize_box_into_f64(img, n, n, &mut scratch.resize, &mut scratch.plane);
        self.plan
            .forward_topleft_into(&scratch.plane, hs, &mut scratch.tmp, &mut scratch.block);

        // Median threshold over the block (ImageHash convention), via
        // total-order selection instead of a `partial_cmp(..).expect(..)`
        // full sort: `total_cmp` and `partial_cmp` order finite values
        // identically (they can disagree only on NaN, which the DCT of
        // finite pixels never produces, and on -0.0 vs +0.0 ties — whose
        // values are numerically equal, leaving the median unchanged).
        scratch.sorted.clear();
        scratch.sorted.extend_from_slice(&scratch.block);
        let half = hs * hs / 2;
        let (_, lo, rest) = scratch
            .sorted
            .select_nth_unstable_by(half - 1, f64::total_cmp);
        let lo = *lo;
        let hi = rest.iter().copied().min_by(f64::total_cmp).unwrap_or(lo);
        let median = (lo + hi) / 2.0;

        let mut bits = 0u64;
        for (i, &c) in scratch.block.iter().enumerate() {
            if c > median {
                bits |= 1u64 << (63 - i);
            }
        }
        PHash(bits)
    }

    fn name(&self) -> &'static str {
        "phash"
    }
}

/// Average hash: resize to 8×8 and threshold each pixel at the mean.
/// Cheaper but markedly less robust than pHash; kept as an ablation
/// baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct AverageHasher;

impl ImageHasher for AverageHasher {
    fn hash(&self, img: &Image) -> PHash {
        let small = resize_box(img, 8, 8);
        let mean = small.mean();
        let mut bits = 0u64;
        for (i, &p) in small.data().iter().enumerate() {
            if p > mean {
                bits |= 1u64 << (63 - i);
            }
        }
        PHash(bits)
    }

    fn name(&self) -> &'static str {
        "ahash"
    }
}

/// Difference hash: resize to 9×8 and record the sign of each horizontal
/// gradient. Another standard baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DifferenceHasher;

impl ImageHasher for DifferenceHasher {
    fn hash(&self, img: &Image) -> PHash {
        let small = resize_box(img, 9, 8);
        let mut bits = 0u64;
        let mut i = 0;
        for y in 0..8 {
            for x in 0..8 {
                if small.get(x + 1, y) > small.get(x, y) {
                    bits |= 1u64 << (63 - i);
                }
                i += 1;
            }
        }
        PHash(bits)
    }

    fn name(&self) -> &'static str {
        "dhash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_imaging::synth::{JitterConfig, TemplateGenome, VariantGenome};
    use meme_imaging::transform;
    use meme_stats::seeded_rng;

    fn hasher() -> PerceptualHasher {
        PerceptualHasher::new()
    }

    #[test]
    fn hash_is_deterministic() {
        let img = TemplateGenome::new(3).render(64);
        let h = hasher();
        assert_eq!(h.hash(&img), h.hash(&img));
    }

    #[test]
    fn distinct_templates_hash_far_apart() {
        let h = hasher();
        let hashes: Vec<PHash> = (0..30)
            .map(|s| h.hash(&TemplateGenome::new(s).render(64)))
            .collect();
        let mut min_d = 64;
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                min_d = min_d.min(hashes[i].distance(hashes[j]));
            }
        }
        // Templates must be well-separated: far beyond the clustering
        // threshold of 8.
        assert!(min_d > 12, "min inter-template distance {min_d}");
    }

    #[test]
    fn brightness_invariance() {
        let h = hasher();
        let img = TemplateGenome::new(10).render(64);
        let base = h.hash(&img);
        for delta in [-0.1, -0.05, 0.05, 0.1] {
            let d = base.distance(h.hash(&transform::brightness(&img, delta)));
            assert!(d <= 4, "brightness {delta} moved hash by {d}");
        }
    }

    #[test]
    fn contrast_invariance() {
        let h = hasher();
        let img = TemplateGenome::new(11).render(64);
        let base = h.hash(&img);
        for factor in [0.8, 0.9, 1.1, 1.25] {
            let d = base.distance(h.hash(&transform::contrast(&img, factor)));
            assert!(d <= 4, "contrast {factor} moved hash by {d}");
        }
    }

    #[test]
    fn noise_robustness() {
        let h = hasher();
        let img = TemplateGenome::new(12).render(64);
        let base = h.hash(&img);
        let mut rng = seeded_rng(7);
        for _ in 0..5 {
            let noisy = transform::gaussian_noise(&img, 0.02, &mut rng);
            let d = base.distance(h.hash(&noisy));
            assert!(d <= 6, "noise moved hash by {d}");
        }
    }

    #[test]
    fn rescale_robustness() {
        let h = hasher();
        let img = TemplateGenome::new(13).render(64);
        let base = h.hash(&img);
        for factor in [0.5, 0.75, 1.5] {
            let d = base.distance(h.hash(&transform::rescale_cycle(&img, factor)));
            assert!(d <= 6, "rescale {factor} moved hash by {d}");
        }
    }

    #[test]
    fn quantization_robustness() {
        let h = hasher();
        let img = TemplateGenome::new(14).render(64);
        let base = h.hash(&img);
        let q = transform::quantize_dct(&img, 8, 0.05);
        let d = base.distance(h.hash(&q));
        assert!(d <= 8, "quantization moved hash by {d}");
    }

    #[test]
    fn jittered_variants_stay_clusterable() {
        // DBSCAN needs chain-reachability, not all-pairs proximity: the
        // bulk of a variant's re-posts must sit within eps = 8 of the
        // canonical image, and even cropped outliers must stay moderate
        // so the density chain absorbs them.
        let h = hasher();
        let mut rng = seeded_rng(20);
        let mut within = 0usize;
        let mut total = 0usize;
        for seed in 0..10 {
            let v = VariantGenome::random(TemplateGenome::new(seed), seed, 1);
            let canon = h.hash(&v.render(64));
            for _ in 0..8 {
                let img = v.render_jittered(64, &JitterConfig::default(), &mut rng);
                let d = canon.distance(h.hash(&img));
                total += 1;
                if d <= 8 {
                    within += 1;
                }
                assert!(d <= 18, "template {seed}: jitter moved hash by {d}");
            }
        }
        let frac = within as f64 / total as f64;
        assert!(frac >= 0.75, "only {frac:.2} of jittered posts within eps");
    }

    #[test]
    fn photometric_jitter_alone_stays_within_threshold() {
        // Without the crop component, every jittered re-post must stay
        // within the clustering threshold of the canonical image.
        let h = hasher();
        let mut rng = seeded_rng(21);
        let photometric = JitterConfig {
            crop_prob: 0.0,
            ..JitterConfig::default()
        };
        for seed in 0..10 {
            let v = VariantGenome::random(TemplateGenome::new(seed), seed, 1);
            let canon = h.hash(&v.render(64));
            for _ in 0..5 {
                let img = v.render_jittered(64, &photometric, &mut rng);
                let d = canon.distance(h.hash(&img));
                assert!(
                    d <= 8,
                    "template {seed}: photometric jitter moved hash by {d}"
                );
            }
        }
    }

    #[test]
    fn hash_size_independent_of_render_resolution() {
        let h = hasher();
        let t = TemplateGenome::new(15);
        let h64 = h.hash(&t.render(64));
        let h128 = h.hash(&t.render(128));
        let d = h64.distance(h128);
        assert!(d <= 8, "resolution changed hash by {d}");
    }

    #[test]
    fn ahash_and_dhash_produce_different_algorithms() {
        let img = TemplateGenome::new(16).render(64);
        let p = PerceptualHasher::new().hash(&img);
        let a = AverageHasher.hash(&img);
        let d = DifferenceHasher.hash(&img);
        // Not a correctness requirement, but the three algorithms should
        // not collapse to the same bits on structured input.
        assert!(p != a || p != d);
        assert_eq!(AverageHasher.name(), "ahash");
        assert_eq!(DifferenceHasher.name(), "dhash");
        assert_eq!(PerceptualHasher::new().name(), "phash");
    }

    #[test]
    fn hash_into_matches_hash_with_reused_scratch() {
        let h = hasher();
        let mut scratch = HashScratch::new();
        let mut rng = seeded_rng(33);
        for seed in 0..6 {
            let v = VariantGenome::random(TemplateGenome::new(seed), seed, 2);
            for _ in 0..4 {
                let img = v.render_jittered(64, &JitterConfig::default(), &mut rng);
                assert_eq!(h.hash_into(&img, &mut scratch), h.hash(&img));
            }
        }
        // Shape changes between calls must not corrupt the scratch.
        let small = TemplateGenome::new(40).render(32);
        let big = TemplateGenome::new(41).render(128);
        assert_eq!(h.hash_into(&small, &mut scratch), h.hash(&small));
        assert_eq!(h.hash_into(&big, &mut scratch), h.hash(&big));
        assert_eq!(h.hash_into(&small, &mut scratch), h.hash(&small));
    }

    #[test]
    fn default_hash_into_delegates_to_hash() {
        let img = TemplateGenome::new(16).render(64);
        let mut scratch = HashScratch::new();
        assert_eq!(
            AverageHasher.hash_into(&img, &mut scratch),
            AverageHasher.hash(&img)
        );
        assert_eq!(
            DifferenceHasher.hash_into(&img, &mut scratch),
            DifferenceHasher.hash(&img)
        );
    }

    #[test]
    fn constant_image_hashes_stably() {
        // Degenerate flat image: all DCT AC coefficients are ~0; the hash
        // must still be computed without NaN/panic and be reproducible.
        let img = Image::filled(64, 64, 0.5);
        let h = hasher();
        assert_eq!(h.hash(&img), h.hash(&img));
    }

    #[test]
    #[should_panic(expected = "hash_size")]
    fn wrong_hash_size_panics() {
        let _ = PerceptualHasher::with_sizes(16, 4);
    }
}
