//! Annotation — Steps 4 and 5 of the paper's pipeline.
//!
//! The paper annotates image clusters with Know Your Meme (KYM)
//! metadata: cluster medoids are matched against KYM gallery hashes at
//! Hamming threshold θ = 8 (Step 5), after a CNN filters social-network
//! screenshots out of the galleries (Step 4, Appendix C). Annotation
//! quality is evaluated with a three-annotator panel and Fleiss' κ
//! (Appendix B).
//!
//! * [`kym`] — the KYM data model (entries, six categories, tags,
//!   origins, galleries);
//! * [`nn`] — a from-scratch convolutional neural network (conv /
//!   maxpool / dense / dropout / Adam) mirroring the Appendix-C
//!   architecture;
//! * [`screenshot`] — synthetic screenshot rendering, the training
//!   corpus (Table 9), and classifier evaluation (Fig. 19: ROC / AUC,
//!   accuracy, precision, recall, F1);
//! * [`annotator`] — medoid↔entry matching and representative-entry
//!   selection;
//! * [`agreement`] — the simulated annotation panel reproducing the
//!   Appendix-B κ computation.

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // matrix/conv kernels read clearer with explicit indices
#![warn(missing_docs)]

pub mod agreement;
pub mod annotator;
pub mod error;
pub mod kym;
pub mod nn;
pub mod screenshot;

pub use annotator::{annotate_clusters, ClusterAnnotation, EntryMatch, ANNOTATION_THETA};
pub use error::AnnotateError;
pub use kym::{KymCategory, KymEntry, KymSite};
pub use nn::{Cnn, TrainConfig};
pub use screenshot::{ClassifierMetrics, ScreenshotCorpus, ScreenshotFilter, SourcePlatform};
