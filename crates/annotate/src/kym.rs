//! The Know Your Meme data model.
//!
//! "KYM is a sort of encyclopedia of Internet memes: for each meme, it
//! provides information such as its origin … In addition, for each
//! entry, KYM provides a set of keywords, called tags … Also, KYM
//! provides a variety of higher-level categories that group meme
//! entries; namely, cultures, subcultures, people, events, and sites"
//! (§3.2). The paper's racist/political meme groups are defined over
//! tags (§4.2.1), and the custom distance metric consumes the per-entry
//! name / culture / people annotations (§2.3).

use meme_phash::PHash;
use serde::{Deserialize, Serialize};

/// The six KYM entry categories (Fig. 4a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KymCategory {
    /// A meme proper (57% of entries).
    Meme,
    /// A subculture grouping related memes (30%).
    Subculture,
    /// A broad culture (3%), e.g. "Alt-right".
    Culture,
    /// An event, e.g. "#CNNBlackmail".
    Event,
    /// A website, e.g. "/pol/".
    Site,
    /// A person, e.g. "Donald Trump".
    Person,
}

impl KymCategory {
    /// All categories in Fig. 4a's display order.
    pub const ALL: [KymCategory; 6] = [
        KymCategory::Meme,
        KymCategory::Subculture,
        KymCategory::Event,
        KymCategory::Culture,
        KymCategory::Site,
        KymCategory::Person,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            KymCategory::Meme => "Memes",
            KymCategory::Subculture => "Subcultures",
            KymCategory::Culture => "Cultures",
            KymCategory::Event => "Events",
            KymCategory::Site => "Sites",
            KymCategory::Person => "People",
        }
    }
}

/// Tags the paper uses to form its two high-level meme groups
/// (§4.2.1): politics and racism.
pub mod tags {
    /// Tags marking a politics-related entry.
    pub const POLITICS: [&str; 5] = [
        "politics",
        "2016 us presidential election",
        "presidential election",
        "trump",
        "clinton",
    ];
    /// Tags marking a racism-related entry.
    pub const RACISM: [&str; 3] = ["racism", "racist", "antisemitism"];
}

/// One KYM entry with the fields the pipeline consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KymEntry {
    /// Stable entry id (index into the site's entry list).
    pub id: usize,
    /// Entry name ("Smug Frog", "Donald Trump", …) — the `meme` feature
    /// of the custom metric when the category is [`KymCategory::Meme`].
    pub name: String,
    /// Entry category.
    pub category: KymCategory,
    /// Keyword tags.
    pub tags: Vec<String>,
    /// Platform of origin ("4chan", "Twitter", "Unknown", …; Fig. 4c).
    pub origin: String,
    /// pHashes of the entry's image gallery (post screenshot filtering).
    pub gallery: Vec<PHash>,
    /// People referenced by the entry (the `people` metric feature).
    pub people: Vec<String>,
    /// Cultures referenced by the entry (the `culture` metric feature).
    pub cultures: Vec<String>,
}

impl KymEntry {
    /// Whether the entry belongs to the paper's politics group.
    pub fn is_political(&self) -> bool {
        self.tags
            .iter()
            .any(|t| tags::POLITICS.contains(&t.to_lowercase().as_str()))
    }

    /// Whether the entry belongs to the paper's racism group.
    pub fn is_racist(&self) -> bool {
        self.tags
            .iter()
            .any(|t| tags::RACISM.contains(&t.to_lowercase().as_str()))
    }
}

/// A full annotation site: the entry list plus index lookups.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KymSite {
    /// All entries, `entries[i].id == i`.
    pub entries: Vec<KymEntry>,
}

impl KymSite {
    /// Build from entries, re-assigning ids to positions.
    pub fn new(mut entries: Vec<KymEntry>) -> Self {
        for (i, e) in entries.iter_mut().enumerate() {
            e.id = i;
        }
        Self { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the site has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry by id.
    ///
    /// # Panics
    /// Panics when `id` is out of range; [`KymSite::get`] returns
    /// `None` instead.
    pub fn entry(&self, id: usize) -> &KymEntry {
        &self.entries[id]
    }

    /// Entry by id, or `None` when `id` is out of range — entry ids a
    /// crawl never produces but a corrupt checkpoint can carry.
    pub fn get(&self, id: usize) -> Option<&KymEntry> {
        self.entries.get(id)
    }

    /// Total gallery images across entries (Table 1's KYM row).
    pub fn total_gallery_images(&self) -> usize {
        self.entries.iter().map(|e| e.gallery.len()).sum()
    }

    /// Share of entries per category (Fig. 4a).
    pub fn category_shares(&self) -> Vec<(KymCategory, f64)> {
        let n = self.entries.len().max(1) as f64;
        KymCategory::ALL
            .iter()
            .map(|&c| {
                let count = self.entries.iter().filter(|e| e.category == c).count();
                (c, 100.0 * count as f64 / n)
            })
            .collect()
    }

    /// Share of entries per origin platform (Fig. 4c), descending.
    pub fn origin_shares(&self) -> Vec<(String, f64)> {
        use std::collections::HashMap;
        let n = self.entries.len().max(1) as f64;
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for e in &self.entries {
            *counts.entry(e.origin.as_str()).or_insert(0) += 1;
        }
        let mut shares: Vec<(String, f64)> = counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), 100.0 * v as f64 / n))
            .collect();
        // total_cmp + name tiebreak: `counts` is a HashMap, so without
        // the tiebreak equal shares surfaced in hasher order.
        shares.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        shares
    }

    /// Gallery sizes (the Fig. 4b CDF sample).
    pub fn gallery_sizes(&self) -> Vec<u64> {
        self.entries
            .iter()
            .map(|e| e.gallery.len() as u64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, category: KymCategory, tags: &[&str]) -> KymEntry {
        KymEntry {
            id: 0,
            name: name.into(),
            category,
            tags: tags.iter().map(|s| s.to_string()).collect(),
            origin: "4chan".into(),
            gallery: vec![PHash(1), PHash(2)],
            people: vec![],
            cultures: vec![],
        }
    }

    #[test]
    fn tag_groups() {
        let e = entry("MAGA", KymCategory::Meme, &["Trump", "election"]);
        assert!(e.is_political());
        assert!(!e.is_racist());
        let r = entry("Happy Merchant", KymCategory::Meme, &["antisemitism"]);
        assert!(r.is_racist());
        let n = entry("Roll Safe", KymCategory::Meme, &["reaction"]);
        assert!(!n.is_political() && !n.is_racist());
    }

    #[test]
    fn site_reassigns_ids() {
        let site = KymSite::new(vec![
            entry("a", KymCategory::Meme, &[]),
            entry("b", KymCategory::Person, &[]),
        ]);
        assert_eq!(site.entry(0).name, "a");
        assert_eq!(site.entry(1).id, 1);
        assert_eq!(site.len(), 2);
        assert_eq!(site.total_gallery_images(), 4);
    }

    #[test]
    fn category_shares_sum_to_100() {
        let site = KymSite::new(vec![
            entry("a", KymCategory::Meme, &[]),
            entry("b", KymCategory::Meme, &[]),
            entry("c", KymCategory::Person, &[]),
            entry("d", KymCategory::Site, &[]),
        ]);
        let shares = site.category_shares();
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 100.0).abs() < 1e-9);
        let memes = shares
            .iter()
            .find(|(c, _)| *c == KymCategory::Meme)
            .unwrap()
            .1;
        assert!((memes - 50.0).abs() < 1e-9);
    }

    #[test]
    fn origin_shares_sorted_descending() {
        let mut entries = vec![
            entry("a", KymCategory::Meme, &[]),
            entry("b", KymCategory::Meme, &[]),
        ];
        entries.push(KymEntry {
            origin: "Twitter".into(),
            ..entry("c", KymCategory::Meme, &[])
        });
        let site = KymSite::new(entries);
        let shares = site.origin_shares();
        assert_eq!(shares[0].0, "4chan");
        assert!(shares[0].1 > shares[1].1);
    }

    #[test]
    fn empty_site() {
        let site = KymSite::default();
        assert!(site.is_empty());
        assert_eq!(site.total_gallery_images(), 0);
        assert_eq!(site.gallery_sizes(), Vec::<u64>::new());
    }
}
