//! Cluster annotation — Step 5 of the pipeline.
//!
//! "The clusters' medoids are compared with all images from meme
//! annotation sites, by calculating the Hamming distance between each
//! pair of pHash vectors. We consider that an image matches a cluster
//! if the distance is less than or equal to a threshold θ, which we set
//! to 8 … To find the representative KYM entry for each cluster, we
//! select the one with the largest proportion of matches of KYM images
//! with the cluster medoid. In case of ties, we select the one with the
//! minimum average Hamming distance." (§2.2)

use crate::kym::KymSite;
use meme_index::{HammingIndex, MihIndex};
use meme_phash::PHash;
use serde::{Deserialize, Serialize};

/// The paper's annotation threshold θ.
pub const ANNOTATION_THETA: u32 = 8;

/// One KYM entry's match against a cluster medoid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntryMatch {
    /// Matched entry id.
    pub entry_id: usize,
    /// Number of the entry's gallery images within θ of the medoid.
    pub matched_images: usize,
    /// The entry's gallery size (denominator of the match proportion).
    pub gallery_size: usize,
    /// Mean Hamming distance of the matching images to the medoid.
    pub avg_distance: f64,
}

impl EntryMatch {
    /// Match proportion used for representative selection.
    pub fn proportion(&self) -> f64 {
        if self.gallery_size == 0 {
            0.0
        } else {
            self.matched_images as f64 / self.gallery_size as f64
        }
    }
}

/// The annotation of one cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterAnnotation {
    /// Cluster id (position in the medoid list).
    pub cluster: usize,
    /// All matching entries, sorted by descending proportion then
    /// ascending average distance.
    pub matches: Vec<EntryMatch>,
    /// The representative entry (best match), when any entry matched.
    pub representative: Option<usize>,
}

impl ClusterAnnotation {
    /// Whether this cluster received any KYM annotation.
    pub fn is_annotated(&self) -> bool {
        self.representative.is_some()
    }

    /// Number of distinct KYM entries matching this cluster (the Fig. 5a
    /// sample).
    pub fn entry_count(&self) -> usize {
        self.matches.len()
    }
}

/// Work accounting for one [`annotate_clusters_with_stats`] call — the
/// observability record behind the pipeline's Step-5 throughput metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnotateStats {
    /// Radius queries issued (one per medoid).
    pub medoid_queries: usize,
    /// Gallery hashes indexed.
    pub gallery_hashes: usize,
    /// Clusters that ended up with a representative entry.
    pub annotated_clusters: usize,
}

/// [`annotate_clusters`] plus work accounting.
pub fn annotate_clusters_with_stats(
    medoids: &[PHash],
    site: &KymSite,
    theta: u32,
) -> (Vec<ClusterAnnotation>, AnnotateStats) {
    let annotations = annotate_clusters(medoids, site, theta);
    let stats = AnnotateStats {
        medoid_queries: medoids.len(),
        gallery_hashes: site.entries.iter().map(|e| e.gallery.len()).sum(),
        annotated_clusters: annotations.iter().filter(|a| a.is_annotated()).count(),
    };
    (annotations, stats)
}

/// Annotate every cluster medoid against a KYM site at threshold
/// `theta`.
///
/// Implementation: one multi-index over all gallery hashes (tagged with
/// their entry), one radius query per medoid — the same two-sided
/// speedup the paper got from its GPU pairwise engine.
pub fn annotate_clusters(medoids: &[PHash], site: &KymSite, theta: u32) -> Vec<ClusterAnnotation> {
    // Flatten galleries with back-pointers.
    let mut gallery_hashes: Vec<PHash> = Vec::new();
    let mut owner: Vec<usize> = Vec::new();
    for entry in &site.entries {
        for &h in &entry.gallery {
            gallery_hashes.push(h);
            owner.push(entry.id);
        }
    }
    // lint:allow(panic-reachable): theta is a hash-distance threshold bounded far below MihIndex::new's 64-band limit
    let index = MihIndex::new(gallery_hashes, theta);

    medoids
        .iter()
        .enumerate()
        .map(|(cluster, &medoid)| {
            let hits = index.radius_query(medoid, theta);
            // Group hits by entry.
            use std::collections::HashMap;
            let mut per_entry: HashMap<usize, (usize, f64)> = HashMap::new();
            for hit in hits {
                let d = medoid.distance(index.hash_at(hit)) as f64;
                let e = per_entry.entry(owner[hit]).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += d;
            }
            let mut matches: Vec<EntryMatch> = per_entry
                .into_iter()
                .map(|(entry_id, (count, dist_sum))| EntryMatch {
                    entry_id,
                    matched_images: count,
                    gallery_size: site.entry(entry_id).gallery.len(),
                    avg_distance: dist_sum / count as f64,
                })
                .collect();
            matches.sort_by(|a, b| {
                b.proportion()
                    .total_cmp(&a.proportion())
                    .then(a.avg_distance.total_cmp(&b.avg_distance))
                    .then(a.entry_id.cmp(&b.entry_id))
            });
            let representative = matches.first().map(|m| m.entry_id);
            ClusterAnnotation {
                cluster,
                matches,
                representative,
            }
        })
        .collect()
}

/// Fig. 5b's sample: for each KYM entry, how many clusters it annotates
/// (counting all matches, not just representatives). Entries annotating
/// zero clusters are included as zeros, matching the paper's x = 0 bin.
pub fn clusters_per_entry(annotations: &[ClusterAnnotation], n_entries: usize) -> Vec<u64> {
    let mut counts = vec![0u64; n_entries];
    for ann in annotations {
        for m in &ann.matches {
            counts[m.entry_id] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kym::{KymCategory, KymEntry};

    fn entry(id: usize, name: &str, gallery: Vec<PHash>) -> KymEntry {
        KymEntry {
            id,
            name: name.into(),
            category: KymCategory::Meme,
            tags: vec![],
            origin: "4chan".into(),
            gallery,
            people: vec![],
            cultures: vec![],
        }
    }

    fn site() -> KymSite {
        let base = PHash(0xAAAA_BBBB_CCCC_DDDD);
        let far = PHash(0x1111_2222_3333_4444);
        KymSite::new(vec![
            // Entry 0: two of three gallery images near `base`.
            entry(
                0,
                "Smug Frog",
                vec![base, base.with_flipped_bits(&[1, 2]), far],
            ),
            // Entry 1: one of one image near `base` (higher proportion).
            entry(1, "Pepe", vec![base.with_flipped_bits(&[3])]),
            // Entry 2: nothing near `base`.
            entry(2, "Roll Safe", vec![far, far.with_flipped_bits(&[0])]),
        ])
    }

    #[test]
    fn matches_and_representative() {
        let s = site();
        let medoid = PHash(0xAAAA_BBBB_CCCC_DDDD);
        let anns = annotate_clusters(&[medoid], &s, ANNOTATION_THETA);
        assert_eq!(anns.len(), 1);
        let a = &anns[0];
        assert!(a.is_annotated());
        assert_eq!(a.entry_count(), 2);
        // Entry 1 matches 1/1 = 100%; entry 0 matches 2/3.
        assert_eq!(a.representative, Some(1));
        let m0 = a.matches.iter().find(|m| m.entry_id == 0).unwrap();
        assert_eq!(m0.matched_images, 2);
        assert_eq!(m0.gallery_size, 3);
        assert!((m0.proportion() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unmatched_medoid_is_unannotated() {
        let s = site();
        let medoid = PHash(0xFFFF_0000_FFFF_0000);
        let anns = annotate_clusters(&[medoid], &s, ANNOTATION_THETA);
        assert!(!anns[0].is_annotated());
        assert_eq!(anns[0].entry_count(), 0);
    }

    #[test]
    fn tie_breaks_by_avg_distance() {
        let base = PHash(0);
        // Both entries have 1/1 proportion; entry 1 is closer.
        let s = KymSite::new(vec![
            entry(0, "A", vec![base.with_flipped_bits(&[0, 1, 2])]),
            entry(1, "B", vec![base.with_flipped_bits(&[0])]),
        ]);
        let anns = annotate_clusters(&[base], &s, 8);
        assert_eq!(anns[0].representative, Some(1));
    }

    #[test]
    fn theta_zero_requires_exact_match() {
        let base = PHash(42);
        let s = KymSite::new(vec![entry(0, "A", vec![base])]);
        let exact = annotate_clusters(&[base], &s, 0);
        assert!(exact[0].is_annotated());
        let near = annotate_clusters(&[base.with_flipped_bits(&[5])], &s, 0);
        assert!(!near[0].is_annotated());
    }

    #[test]
    fn clusters_per_entry_counts_all_matches() {
        let s = site();
        let base = PHash(0xAAAA_BBBB_CCCC_DDDD);
        let anns = annotate_clusters(&[base, base.with_flipped_bits(&[4])], &s, ANNOTATION_THETA);
        let cpe = clusters_per_entry(&anns, s.len());
        assert_eq!(cpe[0], 2); // entry 0 matches both medoids
        assert_eq!(cpe[1], 2);
        assert_eq!(cpe[2], 0);
    }

    #[test]
    fn empty_inputs() {
        let s = site();
        assert!(annotate_clusters(&[], &s, 8).is_empty());
        let empty = KymSite::default();
        let anns = annotate_clusters(&[PHash(0)], &empty, 8);
        assert!(!anns[0].is_annotated());
    }

    #[test]
    fn stats_variant_counts_work_and_matches_plain() {
        let s = site();
        let medoids = [PHash(0xAAAA_BBBB_CCCC_DDDD), PHash(0xFFFF_0000_FFFF_0000)];
        let (anns, stats) = annotate_clusters_with_stats(&medoids, &s, ANNOTATION_THETA);
        assert_eq!(anns, annotate_clusters(&medoids, &s, ANNOTATION_THETA));
        assert_eq!(stats.medoid_queries, 2);
        assert_eq!(stats.gallery_hashes, 6);
        assert_eq!(stats.annotated_clusters, 1);
    }
}
