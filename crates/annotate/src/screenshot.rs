//! Screenshot rendering, training corpus, and classifier evaluation —
//! Step 4 of the pipeline and Appendix C of the paper.
//!
//! "Meme annotation sites like KYM often include, in their image
//! galleries, screenshots of social network posts that are not variants
//! of a meme but just comments about it. Hence, we discard
//! social-network screenshots from the annotation sites data sources
//! using a deep learning classifier."
//!
//! The original classifier was trained on 28.8K curated screenshots
//! scraped from subreddits, Pinterest boards and the Wayback Machine
//! (Table 9). That corpus is unavailable, so [`render_screenshot`]
//! synthesizes platform-styled post screenshots (header bar, avatar,
//! text lines, reply separators) whose *structure* — strong horizontal
//! stripes and flat panels — is what distinguishes real screenshots from
//! meme imagery.

use crate::error::AnnotateError;
use crate::nn::{Cnn, TrainConfig};
use meme_imaging::image::Image;
use meme_imaging::synth::{TemplateGenome, VariantGenome};
use meme_stats::{child_seed, seeded_rng, WsRng};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// The five platforms of the Table-9 training corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourcePlatform {
    /// Twitter post screenshots (14,602 in the paper's corpus).
    Twitter,
    /// 4chan thread screenshots (10,127).
    FourChan,
    /// Reddit screenshots (2,181).
    Reddit,
    /// Facebook screenshots (1,414).
    Facebook,
    /// Instagram screenshots (497).
    Instagram,
}

impl SourcePlatform {
    /// All platforms in Table 9 order.
    pub const ALL: [SourcePlatform; 5] = [
        SourcePlatform::Twitter,
        SourcePlatform::FourChan,
        SourcePlatform::Reddit,
        SourcePlatform::Facebook,
        SourcePlatform::Instagram,
    ];

    /// Paper corpus size for this platform (Table 9).
    pub fn paper_count(self) -> usize {
        match self {
            SourcePlatform::Twitter => 14_602,
            SourcePlatform::FourChan => 10_127,
            SourcePlatform::Reddit => 2_181,
            SourcePlatform::Facebook => 1_414,
            SourcePlatform::Instagram => 497,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SourcePlatform::Twitter => "Twitter",
            SourcePlatform::FourChan => "4chan",
            SourcePlatform::Reddit => "Reddit",
            SourcePlatform::Facebook => "Facebook",
            SourcePlatform::Instagram => "Instagram",
        }
    }

    /// Background/accent tones giving each platform a distinct but
    /// consistent look.
    fn palette(self) -> (f32, f32) {
        match self {
            SourcePlatform::Twitter => (0.97, 0.55),
            SourcePlatform::FourChan => (0.82, 0.35),
            SourcePlatform::Reddit => (0.95, 0.65),
            SourcePlatform::Facebook => (0.92, 0.45),
            SourcePlatform::Instagram => (0.99, 0.6),
        }
    }
}

/// Render a synthetic social-network post screenshot at `size × size`.
pub fn render_screenshot(platform: SourcePlatform, size: usize, rng: &mut WsRng) -> Image {
    assert!(size >= 16, "screenshots need at least 16x16 pixels");
    let (bg, accent) = platform.palette();
    // lint:allow(panic-reachable): size >= 16 is asserted above, so the canvas dimensions are non-zero
    let mut img = Image::filled(size, size, bg);
    let text_tone = bg - 0.65;

    // Header bar.
    let header_h = size / 8 + rng.random_range(0..size / 16 + 1);
    img.fill_rect(0, 0, size, header_h, accent);

    // Avatar square below the header.
    let av = size / 6;
    let av_y = header_h + size / 16;
    img.fill_rect(size / 16, av_y, size / 16 + av, av_y + av, text_tone + 0.25);

    // Username line next to the avatar.
    let name_y = av_y + av / 3;
    img.fill_rect(
        size / 16 + av + size / 16,
        name_y,
        size / 2 + rng.random_range(0..size / 4),
        name_y + size / 24 + 1,
        text_tone,
    );

    // Body text lines: thin horizontal stripes with ragged right edges.
    let mut y = av_y + av + size / 12;
    let line_h = (size / 24).max(1);
    let gap = (size / 16).max(2);
    while y + line_h < size - size / 8 {
        let len = rng.random_range(size / 3..(size - size / 8));
        img.fill_rect(size / 16, y, size / 16 + len, y + line_h, text_tone);
        y += line_h + gap;
    }

    // Footer separator (like/retweet row).
    img.fill_rect(
        0,
        size - size / 12,
        size,
        size - size / 12 + 1,
        text_tone + 0.3,
    );

    // Mild sensor noise so the classifier cannot key on exact constants.
    for p in img.data_mut() {
        *p += 0.02 * (rng.random::<f32>() - 0.5);
    }
    img.clamp();
    img
}

/// A labeled train/test corpus: screenshots (label 1) vs meme/other
/// images (label 0), in Table 9's platform mix scaled by `scale`.
#[derive(Debug, Clone)]
pub struct ScreenshotCorpus {
    /// Prepared network inputs.
    pub inputs: Vec<Vec<f32>>,
    /// 1 = screenshot, 0 = other.
    pub labels: Vec<usize>,
    /// Per-platform screenshot counts (Table 9 row).
    pub platform_counts: Vec<(SourcePlatform, usize)>,
    /// Count of non-screenshot images.
    pub other_count: usize,
}

impl ScreenshotCorpus {
    /// Generate a corpus with roughly `scale` × the paper's 28.8K
    /// images (e.g. `scale = 0.02` → ~580 images). Deterministic in
    /// `seed`.
    pub fn generate(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let mut rng = seeded_rng(child_seed(seed, 0x5C12EE));
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        let mut platform_counts = Vec::new();
        let size = 32;

        for platform in SourcePlatform::ALL {
            let count = ((platform.paper_count() as f64 * scale).round() as usize).max(3);
            platform_counts.push((platform, count));
            for _ in 0..count {
                let img = render_screenshot(platform, size, &mut rng);
                inputs.push(Cnn::prepare(&img));
                labels.push(1);
            }
        }

        // "Other": random meme images from the procedural renderer
        // (10,630 in the paper).
        let other_count = ((10_630.0 * scale).round() as usize).max(10);
        for i in 0..other_count {
            let template = TemplateGenome::new(child_seed(seed, 0xA11CE + i as u64));
            let v = VariantGenome::random(template, i as u64, (i % 3).min(2));
            let img = v.render(size);
            inputs.push(Cnn::prepare(&img));
            labels.push(0);
        }

        Self {
            inputs,
            labels,
            platform_counts,
            other_count,
        }
    }

    /// Split into (train, test) index sets with the paper's 80/20 ratio,
    /// shuffled deterministically.
    pub fn split(&self, seed: u64) -> (Vec<usize>, Vec<usize>) {
        use rand::seq::SliceRandom;
        let mut rng = seeded_rng(child_seed(seed, 0x59117));
        let mut order: Vec<usize> = (0..self.inputs.len()).collect();
        order.shuffle(&mut rng);
        let cut = (order.len() * 4) / 5;
        let train = order[..cut].to_vec();
        let test = order[cut..].to_vec();
        (train, test)
    }

    /// Total images.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the corpus is empty (cannot happen for generated corpora).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Evaluation of a binary classifier — the Appendix-C metric set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierMetrics {
    /// Accuracy at threshold 0.5.
    pub accuracy: f64,
    /// Precision for the screenshot class.
    pub precision: f64,
    /// Recall for the screenshot class.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
    /// Area under the ROC curve.
    pub auc: f64,
    /// ROC curve points `(false positive rate, true positive rate)`.
    pub roc: Vec<(f64, f64)>,
}

impl ClassifierMetrics {
    /// Compute metrics from scores (probability of class 1) and labels.
    ///
    /// # Panics
    /// Panics on empty or mismatched input, or when only one class is
    /// present (AUC undefined).
    pub fn from_scores(scores: &[f64], labels: &[usize]) -> Self {
        assert!(!scores.is_empty(), "need at least one score");
        assert_eq!(scores.len(), labels.len(), "scores/labels mismatch");
        let pos: f64 = labels.iter().filter(|&&l| l == 1).count() as f64;
        let neg = labels.len() as f64 - pos;
        assert!(pos > 0.0 && neg > 0.0, "need both classes for evaluation");

        // Confusion at 0.5.
        let (mut tp, mut fp, mut tn, mut fne) = (0.0f64, 0.0, 0.0, 0.0);
        for (&s, &l) in scores.iter().zip(labels) {
            match (s >= 0.5, l == 1) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, false) => tn += 1.0,
                (false, true) => fne += 1.0,
            }
        }
        let accuracy = (tp + tn) / (pos + neg);
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fne > 0.0 { tp / (tp + fne) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };

        // ROC by sweeping thresholds over sorted scores.
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let mut roc = vec![(0.0, 0.0)];
        let (mut tpc, mut fpc) = (0.0f64, 0.0f64);
        let mut auc = 0.0;
        let mut i = 0;
        while i < order.len() {
            // Process ties together.
            let s = scores[order[i]];
            let (mut dtp, mut dfp) = (0.0, 0.0);
            while i < order.len() && scores[order[i]] == s {
                if labels[order[i]] == 1 {
                    dtp += 1.0;
                } else {
                    dfp += 1.0;
                }
                i += 1;
            }
            // Trapezoid for the tie block.
            auc += (dfp / neg) * (tpc / pos + 0.5 * dtp / pos);
            tpc += dtp;
            fpc += dfp;
            roc.push((fpc / neg, tpc / pos));
        }
        Self {
            accuracy,
            precision,
            recall,
            f1,
            auc,
            roc,
        }
    }
}

/// A trained screenshot filter wrapping the CNN.
#[derive(Debug, Clone)]
pub struct ScreenshotFilter {
    cnn: Cnn,
}

impl ScreenshotFilter {
    /// Train a filter on a generated corpus. Returns the filter and its
    /// held-out test metrics (the Fig. 19 / Appendix C numbers).
    ///
    /// # Panics
    /// Panics when training diverges; use
    /// [`ScreenshotFilter::try_train`] to handle that case.
    pub fn train(corpus: &ScreenshotCorpus, config: &TrainConfig) -> (Self, ClassifierMetrics) {
        // lint:allow(panic-in-pipeline): documented panicking wrapper; try_train is the fallible API
        Self::try_train(corpus, config).expect("CNN training diverged")
    }

    /// Train a filter, reporting divergence as a typed error instead of
    /// handing back a network full of NaNs: an empty corpus or a
    /// non-finite epoch loss (NaN learning rate, exploding gradients)
    /// is an [`AnnotateError`].
    pub fn try_train(
        corpus: &ScreenshotCorpus,
        config: &TrainConfig,
    ) -> Result<(Self, ClassifierMetrics), AnnotateError> {
        if corpus.is_empty() {
            return Err(AnnotateError::EmptyCorpus);
        }
        let (train_idx, test_idx) = corpus.split(config.seed);
        let train_in: Vec<Vec<f32>> = train_idx
            .iter()
            .map(|&i| corpus.inputs[i].clone())
            .collect();
        let train_lab: Vec<usize> = train_idx.iter().map(|&i| corpus.labels[i]).collect();
        let mut cnn = Cnn::new(config.seed);
        let losses = cnn.train(&train_in, &train_lab, config);
        if let Some(&bad) = losses.iter().find(|l| !l.is_finite()) {
            return Err(AnnotateError::TrainingDiverged {
                loss: bad as f64,
                epochs: losses.len(),
            });
        }

        let scores: Vec<f64> = test_idx
            .iter()
            .map(|&i| cnn.predict_proba(&corpus.inputs[i]) as f64)
            .collect();
        // NaN weights can slip past the loss check (the cross-entropy
        // clamp turns NaN probabilities into a finite floor), so also
        // test what the network actually predicts.
        if scores.iter().any(|s| !s.is_finite()) {
            return Err(AnnotateError::TrainingDiverged {
                loss: f64::NAN,
                epochs: losses.len(),
            });
        }
        let labels: Vec<usize> = test_idx.iter().map(|&i| corpus.labels[i]).collect();
        // lint:allow(panic-reachable): the corpus split keeps both classes and aligned score/label lengths, satisfying from_scores' contract
        let metrics = ClassifierMetrics::from_scores(&scores, &labels);
        Ok((Self { cnn }, metrics))
    }

    /// Wrap an already-trained network.
    pub fn from_cnn(cnn: Cnn) -> Self {
        Self { cnn }
    }

    /// Whether an image looks like a social-network screenshot.
    pub fn is_screenshot(&self, img: &Image) -> bool {
        self.cnn.predict(&Cnn::prepare(img)) == 1
    }

    /// Screenshot probability for an image.
    pub fn screenshot_proba(&self, img: &Image) -> f64 {
        self.cnn.predict_proba(&Cnn::prepare(img)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screenshot_rendering_is_structured() {
        let mut rng = seeded_rng(1);
        let img = render_screenshot(SourcePlatform::Twitter, 32, &mut rng);
        assert_eq!(img.width(), 32);
        // Header row differs from body background.
        assert!((img.get(16, 1) - img.get(16, 20)).abs() > 0.1);
    }

    #[test]
    fn corpus_matches_table9_proportions() {
        let corpus = ScreenshotCorpus::generate(0.01, 7);
        let twitter = corpus
            .platform_counts
            .iter()
            .find(|(p, _)| *p == SourcePlatform::Twitter)
            .unwrap()
            .1;
        let fourchan = corpus
            .platform_counts
            .iter()
            .find(|(p, _)| *p == SourcePlatform::FourChan)
            .unwrap()
            .1;
        assert!(twitter > fourchan);
        assert_eq!(twitter, 146);
        assert_eq!(corpus.other_count, 106);
        let screenshots: usize = corpus.platform_counts.iter().map(|(_, c)| c).sum();
        assert_eq!(corpus.len(), screenshots + corpus.other_count);
    }

    #[test]
    fn split_is_80_20_and_disjoint() {
        let corpus = ScreenshotCorpus::generate(0.005, 8);
        let (train, test) = corpus.split(9);
        assert_eq!(train.len() + test.len(), corpus.len());
        let diff = train.len() as f64 / corpus.len() as f64;
        assert!((diff - 0.8).abs() < 0.02);
        let overlap = train.iter().filter(|i| test.contains(i)).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn metrics_on_perfect_classifier() {
        let scores = vec![0.9, 0.8, 0.1, 0.2];
        let labels = vec![1, 1, 0, 0];
        let m = ClassifierMetrics::from_scores(&scores, &labels);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert!((m.auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_on_random_classifier() {
        // Constant scores: AUC should be 0.5 by the tie rule.
        let scores = vec![0.5; 100];
        let labels: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let m = ClassifierMetrics::from_scores(&scores, &labels);
        assert!((m.auc - 0.5).abs() < 1e-9);
    }

    #[test]
    fn metrics_on_inverted_classifier() {
        let scores = vec![0.1, 0.2, 0.9, 0.8];
        let labels = vec![1, 1, 0, 0];
        let m = ClassifierMetrics::from_scores(&scores, &labels);
        assert!((m.auc - 0.0).abs() < 1e-12);
        assert_eq!(m.accuracy, 0.0);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_evaluation_panics() {
        let _ = ClassifierMetrics::from_scores(&[0.5, 0.6], &[1, 1]);
    }

    #[test]
    fn trained_filter_beats_paper_auc() {
        // End-to-end Appendix C at reduced scale: AUC must be at least
        // the paper's 0.96.
        let corpus = ScreenshotCorpus::generate(0.015, 11);
        let cfg = TrainConfig {
            epochs: 6,
            seed: 12,
            ..TrainConfig::default()
        };
        let (filter, metrics) = ScreenshotFilter::train(&corpus, &cfg);
        assert!(metrics.auc >= 0.96, "AUC {}", metrics.auc);
        assert!(metrics.accuracy >= 0.9, "accuracy {}", metrics.accuracy);

        // Filter behaves sensibly on fresh images.
        let mut rng = seeded_rng(13);
        let shot = render_screenshot(SourcePlatform::Reddit, 32, &mut rng);
        let meme = TemplateGenome::new(777).render(32);
        assert!(filter.screenshot_proba(&shot) > filter.screenshot_proba(&meme));
    }

    #[test]
    fn try_train_reports_divergence() {
        let corpus = ScreenshotCorpus::generate(0.004, 3);
        let cfg = TrainConfig {
            epochs: 1,
            learning_rate: f32::NAN,
            ..TrainConfig::default()
        };
        match ScreenshotFilter::try_train(&corpus, &cfg) {
            Err(AnnotateError::TrainingDiverged { loss, .. }) => {
                assert!(!loss.is_finite())
            }
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("NaN learning rate should diverge"),
        }
    }

    #[test]
    fn try_train_rejects_empty_corpus() {
        let corpus = ScreenshotCorpus {
            inputs: Vec::new(),
            labels: Vec::new(),
            platform_counts: Vec::new(),
            other_count: 0,
        };
        assert_eq!(
            ScreenshotFilter::try_train(&corpus, &TrainConfig::default()).err(),
            Some(AnnotateError::EmptyCorpus)
        );
    }
}
