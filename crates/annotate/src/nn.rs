//! A from-scratch convolutional neural network.
//!
//! Appendix C: "It includes two Convolutional Neural Networks, each
//! followed by a max-pooling layer. The output of these layers is fed to
//! a fully-connected dense layer … Finally, we have another
//! fully-connected layer with two units, which outputs the probability
//! that a particular image is a screenshot … we apply Dropout with
//! d = 0.5."
//!
//! The original is ~20 lines of Keras; no deep-learning framework is
//! available here, so this module implements the same architecture
//! directly: conv → ReLU → maxpool → conv → ReLU → maxpool → dense →
//! ReLU → dropout → dense → softmax, trained with Adam on cross-entropy.
//! Input resolution is 32×32 grayscale (the substrate's native size)
//! with proportionally narrower dense layers.

use meme_imaging::image::Image;
use meme_imaging::resize::resize_box;
use meme_stats::{seeded_rng, WsRng};
use rand::seq::SliceRandom;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Side length of the network input.
pub const INPUT_SIZE: usize = 32;

const C1: usize = 8; // conv1 output channels
const C2: usize = 16; // conv2 output channels
const K: usize = 3; // kernel size
const H1: usize = INPUT_SIZE - K + 1; // 30
const P1: usize = H1 / 2; // 15
const H2: usize = P1 - K + 1; // 13
const P2: usize = H2 / 2; // 6
const FLAT: usize = C2 * P2 * P2; // 576
const HIDDEN: usize = 64;
const CLASSES: usize = 2;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Dropout keep probability complement (0.5 in the paper).
    pub dropout: f32,
    /// RNG seed for init, shuffling and dropout masks.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            batch_size: 32,
            learning_rate: 1e-3,
            dropout: 0.5,
            seed: 0xC1A55,
        }
    }
}

/// A learnable parameter tensor with Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Param {
    w: Vec<f32>,
    grad: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Param {
    fn zeros(n: usize) -> Self {
        Self {
            w: vec![0.0; n],
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    fn he_init(n: usize, fan_in: usize, rng: &mut WsRng) -> Self {
        let scale = (2.0 / fan_in as f32).sqrt();
        let mut p = Self::zeros(n);
        for w in &mut p.w {
            *w = meme_stats::dist::normal_sample(rng) as f32 * scale;
        }
        p
    }

    fn adam_step(&mut self, lr: f32, t: usize, batch: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.w.len() {
            let g = self.grad[i] / batch;
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * g;
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            self.w[i] -= lr * mhat / (vhat.sqrt() + EPS);
            self.grad[i] = 0.0;
        }
    }
}

/// Per-sample activation cache for backprop.
struct Cache {
    input: Vec<f32>,
    conv1_out: Vec<f32>, // post-ReLU, C1 x H1 x H1
    pool1_out: Vec<f32>, // C1 x P1 x P1
    pool1_arg: Vec<usize>,
    conv2_out: Vec<f32>, // post-ReLU, C2 x H2 x H2
    pool2_out: Vec<f32>, // C2 x P2 x P2
    pool2_arg: Vec<usize>,
    fc1_out: Vec<f32>, // post-ReLU + dropout, HIDDEN
    drop_mask: Vec<f32>,
    probs: Vec<f32>, // CLASSES
}

/// The Appendix-C screenshot classifier network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cnn {
    conv1_w: Param, // C1 x 1 x K x K
    conv1_b: Param,
    conv2_w: Param, // C2 x C1 x K x K
    conv2_b: Param,
    fc1_w: Param, // HIDDEN x FLAT
    fc1_b: Param,
    fc2_w: Param, // CLASSES x HIDDEN
    fc2_b: Param,
    steps: usize,
}

impl Cnn {
    /// He-initialized network from a seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        Self {
            conv1_w: Param::he_init(C1 * K * K, K * K, &mut rng),
            conv1_b: Param::zeros(C1),
            conv2_w: Param::he_init(C2 * C1 * K * K, C1 * K * K, &mut rng),
            conv2_b: Param::zeros(C2),
            fc1_w: Param::he_init(HIDDEN * FLAT, FLAT, &mut rng),
            fc1_b: Param::zeros(HIDDEN),
            fc2_w: Param::he_init(CLASSES * HIDDEN, HIDDEN, &mut rng),
            fc2_b: Param::zeros(CLASSES),
            steps: 0,
        }
    }

    /// Convert an image to a normalized input vector (resizing to 32×32
    /// and centering around zero).
    pub fn prepare(img: &Image) -> Vec<f32> {
        let small = if img.width() == INPUT_SIZE && img.height() == INPUT_SIZE {
            img.clone()
        } else {
            // lint:allow(panic-reachable): INPUT_SIZE is a non-zero constant, so the resize cannot hit Image::filled's zero-dim panic
            resize_box(img, INPUT_SIZE, INPUT_SIZE)
        };
        small.data().iter().map(|p| p - 0.5).collect()
    }

    fn forward(&self, input: &[f32], drop_mask: Option<&[f32]>) -> Cache {
        // conv1 + ReLU.
        let mut conv1_out = vec![0.0f32; C1 * H1 * H1];
        for oc in 0..C1 {
            let wbase = oc * K * K;
            for y in 0..H1 {
                for x in 0..H1 {
                    let mut acc = self.conv1_b.w[oc];
                    for ky in 0..K {
                        let row = (y + ky) * INPUT_SIZE + x;
                        for kx in 0..K {
                            acc += self.conv1_w.w[wbase + ky * K + kx] * input[row + kx];
                        }
                    }
                    conv1_out[oc * H1 * H1 + y * H1 + x] = acc.max(0.0);
                }
            }
        }
        // pool1.
        let (pool1_out, pool1_arg) = maxpool(&conv1_out, C1, H1);
        // conv2 + ReLU.
        let mut conv2_out = vec![0.0f32; C2 * H2 * H2];
        for oc in 0..C2 {
            for y in 0..H2 {
                for x in 0..H2 {
                    let mut acc = self.conv2_b.w[oc];
                    for ic in 0..C1 {
                        let wbase = (oc * C1 + ic) * K * K;
                        let ibase = ic * P1 * P1;
                        for ky in 0..K {
                            let row = ibase + (y + ky) * P1 + x;
                            for kx in 0..K {
                                acc += self.conv2_w.w[wbase + ky * K + kx] * pool1_out[row + kx];
                            }
                        }
                    }
                    conv2_out[oc * H2 * H2 + y * H2 + x] = acc.max(0.0);
                }
            }
        }
        // pool2.
        let (pool2_out, pool2_arg) = maxpool(&conv2_out, C2, H2);
        // fc1 + ReLU + dropout.
        let mut fc1_out = vec![0.0f32; HIDDEN];
        for h in 0..HIDDEN {
            let mut acc = self.fc1_b.w[h];
            let wbase = h * FLAT;
            for i in 0..FLAT {
                acc += self.fc1_w.w[wbase + i] * pool2_out[i];
            }
            fc1_out[h] = acc.max(0.0);
        }
        let mask: Vec<f32> = match drop_mask {
            Some(m) => m.to_vec(),
            None => vec![1.0; HIDDEN],
        };
        for h in 0..HIDDEN {
            fc1_out[h] *= mask[h];
        }
        // fc2 + softmax.
        let mut logits = [0.0f32; CLASSES];
        for c in 0..CLASSES {
            let mut acc = self.fc2_b.w[c];
            let wbase = c * HIDDEN;
            for h in 0..HIDDEN {
                acc += self.fc2_w.w[wbase + h] * fc1_out[h];
            }
            logits[c] = acc;
        }
        let max = logits.iter().cloned().fold(f32::MIN, f32::max);
        let mut probs: Vec<f32> = logits.iter().map(|l| (l - max).exp()).collect();
        let total: f32 = probs.iter().sum();
        for p in &mut probs {
            *p /= total;
        }
        Cache {
            input: input.to_vec(),
            conv1_out,
            pool1_out,
            pool1_arg,
            conv2_out,
            pool2_out,
            pool2_arg,
            fc1_out,
            drop_mask: mask,
            probs,
        }
    }

    /// Accumulate gradients for one sample with true class `label`.
    fn backward(&mut self, cache: &Cache, label: usize) {
        // dL/dlogits for softmax + CE.
        let mut dlogits = cache.probs.clone();
        dlogits[label] -= 1.0;
        // fc2 grads and dL/dfc1.
        let mut dfc1 = vec![0.0f32; HIDDEN];
        for c in 0..CLASSES {
            let wbase = c * HIDDEN;
            self.fc2_b.grad[c] += dlogits[c];
            for h in 0..HIDDEN {
                self.fc2_w.grad[wbase + h] += dlogits[c] * cache.fc1_out[h];
                dfc1[h] += dlogits[c] * self.fc2_w.w[wbase + h];
            }
        }
        // Through dropout and ReLU.
        for h in 0..HIDDEN {
            dfc1[h] *= cache.drop_mask[h];
            if cache.fc1_out[h] <= 0.0 {
                dfc1[h] = 0.0;
            }
        }
        // fc1 grads and dL/dpool2.
        let mut dpool2 = vec![0.0f32; FLAT];
        for h in 0..HIDDEN {
            if dfc1[h] == 0.0 {
                continue;
            }
            let wbase = h * FLAT;
            self.fc1_b.grad[h] += dfc1[h];
            for i in 0..FLAT {
                self.fc1_w.grad[wbase + i] += dfc1[h] * cache.pool2_out[i];
                dpool2[i] += dfc1[h] * self.fc1_w.w[wbase + i];
            }
        }
        // Unpool2 (route gradient to argmax) + ReLU mask of conv2.
        let mut dconv2 = vec![0.0f32; C2 * H2 * H2];
        for (i, &arg) in cache.pool2_arg.iter().enumerate() {
            if cache.conv2_out[arg] > 0.0 {
                dconv2[arg] += dpool2[i];
            }
        }
        // conv2 grads and dL/dpool1.
        let mut dpool1 = vec![0.0f32; C1 * P1 * P1];
        for oc in 0..C2 {
            for y in 0..H2 {
                for x in 0..H2 {
                    let g = dconv2[oc * H2 * H2 + y * H2 + x];
                    if g == 0.0 {
                        continue;
                    }
                    self.conv2_b.grad[oc] += g;
                    for ic in 0..C1 {
                        let wbase = (oc * C1 + ic) * K * K;
                        let ibase = ic * P1 * P1;
                        for ky in 0..K {
                            let row = ibase + (y + ky) * P1 + x;
                            for kx in 0..K {
                                self.conv2_w.grad[wbase + ky * K + kx] +=
                                    g * cache.pool1_out[row + kx];
                                dpool1[row + kx] += g * self.conv2_w.w[wbase + ky * K + kx];
                            }
                        }
                    }
                }
            }
        }
        // Unpool1 + ReLU mask of conv1.
        let mut dconv1 = vec![0.0f32; C1 * H1 * H1];
        for (i, &arg) in cache.pool1_arg.iter().enumerate() {
            if cache.conv1_out[arg] > 0.0 {
                dconv1[arg] += dpool1[i];
            }
        }
        // conv1 grads.
        for oc in 0..C1 {
            let wbase = oc * K * K;
            for y in 0..H1 {
                for x in 0..H1 {
                    let g = dconv1[oc * H1 * H1 + y * H1 + x];
                    if g == 0.0 {
                        continue;
                    }
                    self.conv1_b.grad[oc] += g;
                    for ky in 0..K {
                        let row = (y + ky) * INPUT_SIZE + x;
                        for kx in 0..K {
                            self.conv1_w.grad[wbase + ky * K + kx] += g * cache.input[row + kx];
                        }
                    }
                }
            }
        }
    }

    fn step(&mut self, lr: f32, batch: f32) {
        self.steps += 1;
        let t = self.steps;
        self.conv1_w.adam_step(lr, t, batch);
        self.conv1_b.adam_step(lr, t, batch);
        self.conv2_w.adam_step(lr, t, batch);
        self.conv2_b.adam_step(lr, t, batch);
        self.fc1_w.adam_step(lr, t, batch);
        self.fc1_b.adam_step(lr, t, batch);
        self.fc2_w.adam_step(lr, t, batch);
        self.fc2_b.adam_step(lr, t, batch);
    }

    /// Train on `(input, label)` pairs (inputs from [`Cnn::prepare`],
    /// labels 0/1). Returns the mean training loss per epoch.
    ///
    /// # Panics
    /// Panics on empty data, mismatched lengths, or out-of-range labels.
    pub fn train(
        &mut self,
        inputs: &[Vec<f32>],
        labels: &[usize],
        config: &TrainConfig,
    ) -> Vec<f32> {
        assert!(!inputs.is_empty(), "training set must not be empty");
        assert_eq!(inputs.len(), labels.len(), "inputs/labels mismatch");
        assert!(labels.iter().all(|&l| l < CLASSES), "labels must be 0 or 1");
        let mut rng = seeded_rng(config.seed);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        let mut epoch_losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f32;
            for batch in order.chunks(config.batch_size.max(1)) {
                for &i in batch {
                    let mask: Vec<f32> = (0..HIDDEN)
                        .map(|_| {
                            if rng.random::<f32>() < config.dropout {
                                0.0
                            } else {
                                // Inverted dropout keeps inference scale.
                                1.0 / (1.0 - config.dropout)
                            }
                        })
                        .collect();
                    let cache = self.forward(&inputs[i], Some(&mask));
                    loss_sum += -(cache.probs[labels[i]].max(1e-12)).ln();
                    self.backward(&cache, labels[i]);
                }
                self.step(config.learning_rate, batch.len() as f32);
            }
            epoch_losses.push(loss_sum / inputs.len() as f32);
        }
        epoch_losses
    }

    /// Probability that `input` belongs to class 1 (screenshot).
    pub fn predict_proba(&self, input: &[f32]) -> f32 {
        // lint:allow(panic-in-pipeline): probs always has CLASSES = 2 softmax outputs
        self.forward(input, None).probs[1]
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, input: &[f32]) -> usize {
        usize::from(self.predict_proba(input) >= 0.5)
    }
}

/// 2×2 max-pooling with stride 2 over `ch` channels of `side × side`
/// maps; returns the pooled values and flat argmax indices.
fn maxpool(x: &[f32], ch: usize, side: usize) -> (Vec<f32>, Vec<usize>) {
    let out_side = side / 2;
    let mut out = vec![0.0f32; ch * out_side * out_side];
    let mut arg = vec![0usize; ch * out_side * out_side];
    for c in 0..ch {
        for y in 0..out_side {
            for x0 in 0..out_side {
                let mut best = f32::MIN;
                let mut best_i = 0usize;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let i = c * side * side + (2 * y + dy) * side + (2 * x0 + dx);
                        if x[i] > best {
                            best = x[i];
                            best_i = i;
                        }
                    }
                }
                let o = c * out_side * out_side + y * out_side + x0;
                out[o] = best;
                arg[o] = best_i;
            }
        }
    }
    (out, arg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable toy task: class 1 images are bright on top,
    /// class 0 bright on the bottom.
    fn toy_dataset(n_per_class: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for label in 0..2usize {
            for _ in 0..n_per_class {
                let mut img = Image::new(INPUT_SIZE, INPUT_SIZE);
                for y in 0..INPUT_SIZE {
                    for x in 0..INPUT_SIZE {
                        let bright = if label == 1 {
                            y < INPUT_SIZE / 2
                        } else {
                            y >= INPUT_SIZE / 2
                        };
                        let base = if bright { 0.8 } else { 0.2 };
                        img.set(x, y, base + 0.1 * (rng.random::<f32>() - 0.5));
                    }
                }
                inputs.push(Cnn::prepare(&img));
                labels.push(label);
            }
        }
        (inputs, labels)
    }

    #[test]
    fn forward_produces_probabilities() {
        let net = Cnn::new(1);
        let input = vec![0.0f32; INPUT_SIZE * INPUT_SIZE];
        let p = net.predict_proba(&input);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn training_reduces_loss() {
        let (inputs, labels) = toy_dataset(20, 2);
        let mut net = Cnn::new(3);
        let losses = net.train(
            &inputs,
            &labels,
            &TrainConfig {
                epochs: 5,
                batch_size: 8,
                ..TrainConfig::default()
            },
        );
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "losses {losses:?}"
        );
    }

    #[test]
    fn learns_separable_task() {
        let (inputs, labels) = toy_dataset(30, 4);
        let mut net = Cnn::new(5);
        net.train(
            &inputs,
            &labels,
            &TrainConfig {
                epochs: 6,
                batch_size: 16,
                ..TrainConfig::default()
            },
        );
        let (test_in, test_lab) = toy_dataset(20, 99);
        let correct = test_in
            .iter()
            .zip(&test_lab)
            .filter(|(x, y)| net.predict(x) == **y)
            .count();
        let acc = correct as f64 / test_in.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn prepare_resizes_and_centers() {
        let img = Image::filled(64, 64, 1.0);
        let v = Cnn::prepare(&img);
        assert_eq!(v.len(), INPUT_SIZE * INPUT_SIZE);
        assert!(v.iter().all(|x| (x - 0.5).abs() < 1e-6));
    }

    #[test]
    fn maxpool_routes_argmax() {
        // One channel, 4x4 map with known maxima.
        let mut x = vec![0.0f32; 16];
        x[5] = 3.0; // block (0,0): positions 0,1,4,5
        x[2] = 2.0; // block (0,1): positions 2,3,6,7
        let (out, arg) = maxpool(&x, 1, 4);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], 3.0);
        assert_eq!(arg[0], 5);
        assert_eq!(out[1], 2.0);
        assert_eq!(arg[1], 2);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_set_panics() {
        let mut net = Cnn::new(0);
        let _ = net.train(&[], &[], &TrainConfig::default());
    }

    #[test]
    fn deterministic_training() {
        let (inputs, labels) = toy_dataset(10, 6);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let mut a = Cnn::new(7);
        let la = a.train(&inputs, &labels, &cfg);
        let mut b = Cnn::new(7);
        let lb = b.train(&inputs, &labels, &cfg);
        assert_eq!(la, lb);
        assert_eq!(a.predict_proba(&inputs[0]), b.predict_proba(&inputs[0]));
    }
}
