//! Typed errors for the annotation substrate.

use std::fmt;

/// Failures in annotation-side training.
#[derive(Debug, Clone, PartialEq)]
pub enum AnnotateError {
    /// The training corpus contained no images.
    EmptyCorpus,
    /// CNN training produced a non-finite epoch loss (NaN learning
    /// rate, exploding gradients…); the resulting network is unusable.
    TrainingDiverged {
        /// The first non-finite epoch loss observed.
        loss: f64,
        /// Epochs completed when divergence was detected.
        epochs: usize,
    },
}

impl fmt::Display for AnnotateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyCorpus => write!(f, "training corpus is empty"),
            Self::TrainingDiverged { loss, epochs } => write!(
                f,
                "CNN training diverged (loss {loss} within {epochs} epochs)"
            ),
        }
    }
}

impl std::error::Error for AnnotateError {}
