//! Simulated annotation panel — Appendix B.
//!
//! The paper had three authors judge 200 annotated clusters
//! ("correct label" vs "incorrect label"), reported Fleiss κ = 0.67
//! ("substantial") and 89% majority-vote accuracy. Human annotators are
//! not available to a reproduction, but the *computation* is: the
//! simulator knows which annotations are truly correct, and this module
//! models annotators as noisy observers of that truth, then runs the
//! identical κ/accuracy analysis.

use meme_stats::agreement::{fleiss_kappa, interpret_kappa};
use meme_stats::WsRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Outcome of an Appendix-B style panel evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelReport {
    /// Fleiss' kappa across the panel.
    pub fleiss_kappa: f64,
    /// Landis–Koch interpretation of the kappa.
    pub interpretation: &'static str,
    /// Fraction of clusters whose majority vote matches ground truth.
    pub majority_accuracy: f64,
    /// Fraction of clusters the majority judged "correctly annotated"
    /// (the paper's 89% headline is this number under the assumption the
    /// majority is right).
    pub majority_positive_rate: f64,
    /// Number of clusters assessed.
    pub n_clusters: usize,
    /// Number of annotators.
    pub n_raters: usize,
}

/// Simulate `n_raters` annotators judging each cluster annotation.
///
/// `truth[i]` is whether cluster `i`'s annotation is actually correct;
/// each rater reports the truth independently with probability
/// `1 - error_rate`. Returns `None` when inputs are degenerate
/// (no clusters, fewer than 2 raters, error rate outside `[0, 1]`).
pub fn simulate_panel(
    truth: &[bool],
    n_raters: usize,
    error_rate: f64,
    rng: &mut WsRng,
) -> Option<PanelReport> {
    if truth.is_empty() || n_raters < 2 || !(0.0..=1.0).contains(&error_rate) {
        return None;
    }
    // ratings[i] = [votes "incorrect", votes "correct"].
    let mut ratings: Vec<Vec<usize>> = Vec::with_capacity(truth.len());
    let mut majority_correct = 0usize;
    let mut majority_positive = 0usize;
    for &t in truth {
        let mut votes = [0usize; 2];
        for _ in 0..n_raters {
            let observed = if rng.random::<f64>() < error_rate {
                !t
            } else {
                t
            };
            votes[usize::from(observed)] += 1;
        }
        // lint:allow(panic-in-pipeline): votes is [usize; 2], indices 0/1 in range by construction
        let majority_says_correct = votes[1] > votes[0];
        if majority_says_correct == t {
            majority_correct += 1;
        }
        if majority_says_correct {
            majority_positive += 1;
        }
        ratings.push(votes.to_vec());
    }
    let kappa = fleiss_kappa(&ratings)?;
    Some(PanelReport {
        fleiss_kappa: kappa,
        interpretation: interpret_kappa(kappa),
        majority_accuracy: majority_correct as f64 / truth.len() as f64,
        majority_positive_rate: majority_positive as f64 / truth.len() as f64,
        n_clusters: truth.len(),
        n_raters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_stats::seeded_rng;

    #[test]
    fn rejects_degenerate_input() {
        let mut rng = seeded_rng(1);
        assert!(simulate_panel(&[], 3, 0.1, &mut rng).is_none());
        assert!(simulate_panel(&[true], 1, 0.1, &mut rng).is_none());
        assert!(simulate_panel(&[true], 3, 1.5, &mut rng).is_none());
    }

    #[test]
    fn perfect_raters_give_kappa_one() {
        let mut rng = seeded_rng(2);
        // Mixed truth so both categories appear.
        let truth: Vec<bool> = (0..100).map(|i| i % 3 != 0).collect();
        let report = simulate_panel(&truth, 3, 0.0, &mut rng).unwrap();
        assert!((report.fleiss_kappa - 1.0).abs() < 1e-12);
        assert_eq!(report.majority_accuracy, 1.0);
        assert_eq!(report.interpretation, "almost perfect");
    }

    #[test]
    fn random_raters_give_kappa_near_zero() {
        let mut rng = seeded_rng(3);
        let truth: Vec<bool> = (0..500).map(|i| i % 2 == 0).collect();
        let report = simulate_panel(&truth, 3, 0.5, &mut rng).unwrap();
        assert!(
            report.fleiss_kappa.abs() < 0.1,
            "kappa {}",
            report.fleiss_kappa
        );
    }

    #[test]
    fn moderate_noise_reproduces_paper_band() {
        // With ~5% individual error over an 89%-correct annotation set
        // (the paper's imbalance), the panel lands in the "substantial
        // agreement" band — κ is deflated by the skewed marginals, the
        // same effect behind the paper's κ = 0.67 despite 89% accuracy.
        let mut rng = seeded_rng(4);
        let truth: Vec<bool> = (0..200).map(|i| i % 10 != 0).collect();
        let report = simulate_panel(&truth, 3, 0.05, &mut rng).unwrap();
        assert!(
            (0.4..0.85).contains(&report.fleiss_kappa),
            "kappa {}",
            report.fleiss_kappa
        );
        assert!(
            report.majority_accuracy > 0.85,
            "accuracy {}",
            report.majority_accuracy
        );
        assert_eq!(report.n_clusters, 200);
        assert_eq!(report.n_raters, 3);
    }
}
