//! Pass 1 of the workspace analysis: the symbol table and call model.
//!
//! Built once per lint run from the already-lexed token streams, this
//! module extracts every function definition (free functions and
//! `impl`/`trait` methods), every call site, every lock acquisition,
//! every blocking primitive, and every `// lint:hotpath(<reason>)`
//! annotation — and resolves calls to workspace definitions where the
//! resolution is *unambiguous*. Anything else is recorded as
//! unresolved; the interprocedural rules never guess (DESIGN.md §13).
//!
//! The extraction is token-level, like the rest of the linter: no type
//! information, no trait dispatch. The resolution rules are therefore
//! deliberately conservative:
//!
//! * `name(…)` (bare) resolves iff exactly one free function `name`
//!   exists at the narrowest matching scope — same file, then same
//!   crate, then workspace.
//! * `recv.name(…)` (method) resolves iff exactly one workspace method
//!   is called `name` across all `impl`/`trait` blocks.
//! * `Type::name(…)` (path) resolves by the qualifier's last segment:
//!   a capitalized segment must match the defining `impl` type, a
//!   lowercase one the defining file stem or crate.

use crate::context::FileContext;
use crate::lexer::{Comment, Token, TokenKind};
use std::collections::BTreeMap;

/// A `// lint:hotpath(<reason>)` annotation attached to a function.
#[derive(Debug, Clone)]
pub struct Hotpath {
    /// The reviewed reason; `None` when the annotation is malformed
    /// (empty or unterminated reason) — itself a finding.
    pub reason: Option<String>,
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// 1-based column of the annotation comment.
    pub col: u32,
}

/// One function (or method) definition.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    /// The function's name.
    pub name: String,
    /// The enclosing `impl`/`trait` type, when this is a method.
    pub qself: Option<String>,
    /// Index into the lint run's file list.
    pub file: usize,
    /// 1-based line of the function name.
    pub line: u32,
    /// 1-based column of the function name.
    pub col: u32,
    /// Token range `[open, close]` of the body braces; `None` for
    /// bodiless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the definition sits in test code.
    pub is_test: bool,
    /// Whether the doc comment above carries a `# Panics` section —
    /// the workspace's documented-panicking-wrapper contract.
    pub panics_doc: bool,
    /// The `lint:hotpath` annotation, when present.
    pub hotpath: Option<Hotpath>,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)`.
    Bare,
    /// `recv.name(…)`.
    Method,
    /// `Qualifier::name(…)` — the qualifier is the last path segment.
    Path(String),
}

impl CallKind {
    /// Wire label for the call-graph dump.
    pub fn label(&self) -> &'static str {
        match self {
            CallKind::Bare => "bare",
            CallKind::Method => "method",
            CallKind::Path(_) => "path",
        }
    }
}

/// Why a call site did not resolve to a workspace definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unresolved {
    /// More than one workspace definition matched.
    Ambiguous,
    /// No workspace definition matched (std / vendored callee).
    Unknown,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Bare / method / path form.
    pub kind: CallKind,
    /// Token index of the callee name in the defining file's stream.
    pub token: usize,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
    /// Resolved callee (index into [`WorkspaceModel::functions`]).
    pub resolved: Option<usize>,
    /// Set when unresolved; `None` while `resolved` is `Some`.
    pub why_unresolved: Option<Unresolved>,
    /// True for function-*reference* arguments (`.map(double)`) rather
    /// than direct calls. These create edges only when they resolve
    /// unambiguously to a workspace free function; otherwise they are
    /// dropped silently (the name is usually a plain variable).
    pub implicit: bool,
}

/// A `.lock()`/`.read()`/`.write()` guard acquisition.
#[derive(Debug, Clone)]
pub struct LockEvent {
    /// Canonical lock id: `Type::field` for `self.field` receivers in
    /// a known `impl`, the raw receiver chain otherwise.
    pub lock: String,
    /// Which acquisition method (`lock`, `read`, `write`).
    pub method: String,
    /// Guard binding name, when let-bound.
    pub guard: Option<String>,
    /// Token index of the acquisition method name.
    pub token: usize,
    /// One past the last token index where the guard is live: end of
    /// the enclosing block for let-bound guards (truncated at a
    /// `drop(<guard>)`), end of statement for temporaries.
    pub until: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// 1-based column of the acquisition.
    pub col: u32,
}

/// A call to a blocking primitive (condvar wait, channel recv, file or
/// socket I/O, thread join).
#[derive(Debug, Clone)]
pub struct BlockingCall {
    /// Display form, e.g. `.recv()`.
    pub what: String,
    /// Token index of the method/function name.
    pub token: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// For `.wait(guard)`/`.wait_timeout(guard, …)`: the guard variable
    /// the condvar atomically releases for the duration of the wait.
    pub releases: Option<String>,
}

/// An unresolved call, deduplicated for the call-graph dump.
#[derive(Debug, Clone)]
pub struct UnresolvedCall {
    /// Calling function (index into [`WorkspaceModel::functions`]).
    pub caller: usize,
    /// Callee name as written.
    pub name: String,
    /// Bare / method / path label.
    pub kind: String,
    /// Ambiguous vs unknown.
    pub why: Unresolved,
    /// First occurrence.
    pub line: u32,
    /// First occurrence column.
    pub col: u32,
    /// Number of call sites collapsed into this entry.
    pub count: u32,
}

/// The workspace symbol table and call model (pass 1 output).
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// Every function definition, in (file, body-start) order.
    pub functions: Vec<FunctionDef>,
    /// Call sites per function (same index as `functions`).
    pub calls: Vec<Vec<CallSite>>,
    /// Lock acquisitions per function.
    pub locks: Vec<Vec<LockEvent>>,
    /// Blocking primitives per function.
    pub blocking: Vec<Vec<BlockingCall>>,
    /// Alloc-capable macro uses (`format!`, `vec!`) per function, as
    /// (macro name, token, line, col).
    pub alloc_macros: Vec<Vec<(String, usize, u32, u32)>>,
    /// Unresolved calls worth reporting (ambiguous, or unknown bare /
    /// path calls — unknown *method* calls are std/vendor noise and
    /// are out of the model by design).
    pub unresolved: Vec<UnresolvedCall>,
}

impl WorkspaceModel {
    /// Build the model over an already-lexed file set.
    pub fn build(ctxs: &[FileContext<'_>]) -> Self {
        let mut model = WorkspaceModel::default();
        for (fi, ctx) in ctxs.iter().enumerate() {
            extract_functions(fi, ctx, &mut model.functions);
        }
        let n = model.functions.len();
        model.calls = vec![Vec::new(); n];
        model.locks = vec![Vec::new(); n];
        model.blocking = vec![Vec::new(); n];
        model.alloc_macros = vec![Vec::new(); n];
        for (fi, ctx) in ctxs.iter().enumerate() {
            extract_bodies(fi, ctx, &mut model);
        }
        resolve_calls(ctxs, &mut model);
        model
    }

    /// `crate::Type::name` / `crate::name` display form.
    pub fn qualified(&self, ctxs: &[FileContext<'_>], id: usize) -> String {
        let f = &self.functions[id];
        let krate = &ctxs[f.file].file.crate_name;
        match &f.qself {
            Some(t) => format!("{krate}::{t}::{}", f.name),
            None => format!("{krate}::{}", f.name),
        }
    }

    /// Resolved call edges of `id`, in source order.
    pub fn resolved_calls(&self, id: usize) -> impl Iterator<Item = &CallSite> {
        self.calls[id].iter().filter(|c| c.resolved.is_some())
    }
}

/// Keywords that can be directly followed by `(` without being calls.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "match", "return", "for", "in", "as", "move", "let", "fn",
];

/// Higher-order combinators whose single argument may be a function
/// reference worth an implicit call edge (`.map(double)`).
const HOF_COMBINATORS: [&str; 20] = [
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "map_while",
    "for_each",
    "retain",
    "and_then",
    "or_else",
    "map_err",
    "unwrap_or_else",
    "is_some_and",
    "is_none_or",
    "position",
    "find_map",
    "take_while",
    "skip_while",
    "inspect",
    "then",
    "spawn",
];

/// Method names shared with std collections / iterators / io: a
/// workspace method with one of these names is never resolved by
/// name-uniqueness alone, because the receiver is far more likely to
/// be a `HashMap`/`Vec`/`str` than the workspace type. Calls through
/// `self.name(...)` or an explicit `Type::name(...)` path still
/// resolve — there the receiver type is known.
const STD_METHOD_NAMES: [&str; 44] = [
    "entry",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "append",
    "extend",
    "clear",
    "take",
    "replace",
    "contains",
    "contains_key",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "next",
    "peek",
    "clone",
    "join",
    "split",
    "parse",
    "find",
    "fmt",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "min",
    "max",
    "send",
    "recv",
    "flush",
    "read",
    "write",
    "lock",
    "wait",
    "count",
    "sum",
];

// ------------------------------------------------- function extraction

fn extract_functions(fi: usize, ctx: &FileContext<'_>, out: &mut Vec<FunctionDef>) {
    let toks = &ctx.tokens;
    let comments_by_line = comments_by_line(&ctx.comments);
    let token_lines = token_line_info(toks);
    let mut depth: i32 = 0;
    // (depth of the impl/trait body, type name).
    let mut impl_stack: Vec<(i32, String)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            while impl_stack.last().is_some_and(|(d, _)| *d > depth) {
                impl_stack.pop();
            }
        } else if (t.is_ident("impl") || t.is_ident("trait")) && !in_type_position(toks, i) {
            if let Some(ty) = impl_subject(toks, i) {
                impl_stack.push((depth + 1, ty));
            }
        } else if t.is_ident("fn") && toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) {
            let name_tok = &toks[i + 1];
            let (panics_doc, hotpath) =
                doc_block_info(name_tok.line, &comments_by_line, &token_lines);
            out.push(FunctionDef {
                name: name_tok.text.clone(),
                qself: impl_stack.last().map(|(_, t)| t.clone()),
                file: fi,
                line: name_tok.line,
                col: name_tok.col,
                body: find_body(toks, i + 2),
                is_test: ctx.is_test_line(name_tok.line),
                panics_doc,
                hotpath,
            });
        }
        i += 1;
    }
}

/// `impl` as part of a type (`-> impl Iterator`, `&impl Fn()`, `dyn`)
/// rather than the start of an impl block.
fn in_type_position(toks: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|j| &toks[j]) else {
        return false;
    };
    if prev.kind == TokenKind::Punct {
        return matches!(
            prev.text.as_str(),
            "->" | "(" | "," | "<" | "&" | ":" | "=" | "+" | "|"
        );
    }
    prev.is_ident("dyn")
}

/// The type an `impl`/`trait` block defines methods on: the segment
/// after the final `for` when present (`impl Trait for Type`), the last
/// path segment otherwise. Generics and `where` clauses are skipped.
fn impl_subject(toks: &[Token], i: usize) -> Option<String> {
    let is_trait = toks[i].is_ident("trait");
    let mut segs: Vec<&str> = Vec::new();
    let mut angle = 0i32;
    let mut j = i + 1;
    while j < toks.len() {
        let t = &toks[j];
        if angle == 0 {
            if t.is_punct("{") {
                break;
            }
            if t.is_punct(";") {
                return None;
            }
            if t.is_ident("where") || (is_trait && t.is_punct(":")) {
                break;
            }
        }
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if angle == 0 && t.kind == TokenKind::Ident {
            segs.push(&t.text);
        }
        j += 1;
    }
    if is_trait {
        return segs.first().map(|s| s.to_string());
    }
    if let Some(pos) = segs.iter().rposition(|s| *s == "for") {
        return segs.get(pos + 1).map(|s| s.to_string());
    }
    segs.last().map(|s| s.to_string())
}

/// The `{…}` body token range of a fn whose signature starts at `j`,
/// or `None` for a bodiless (`;`-terminated) declaration.
fn find_body(toks: &[Token], mut j: usize) -> Option<(usize, usize)> {
    while j < toks.len() {
        if toks[j].is_punct(";") {
            return None;
        }
        if toks[j].is_punct("{") {
            break;
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let open = j;
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct("{") {
            depth += 1;
        } else if toks[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some((open, j));
            }
        }
        j += 1;
    }
    Some((open, toks.len().saturating_sub(1)))
}

fn comments_by_line(comments: &[Comment]) -> BTreeMap<u32, Vec<&Comment>> {
    let mut map: BTreeMap<u32, Vec<&Comment>> = BTreeMap::new();
    for c in comments {
        map.entry(c.line).or_default().push(c);
    }
    map
}

/// For each 1-based line: (has any token, first token text).
fn token_line_info(toks: &[Token]) -> BTreeMap<u32, String> {
    let mut map: BTreeMap<u32, String> = BTreeMap::new();
    for t in toks {
        map.entry(t.line).or_insert_with(|| t.text.clone());
    }
    map
}

/// Walk the doc/attribute block directly above a `fn` at `fn_line`:
/// doc comments are scanned for a `# Panics` section, plain comments
/// for a `lint:hotpath(<reason>)` annotation. Attribute lines (first
/// token `#`, or continuation punctuation) are stepped over; anything
/// else ends the block.
fn doc_block_info(
    fn_line: u32,
    comments: &BTreeMap<u32, Vec<&Comment>>,
    token_lines: &BTreeMap<u32, String>,
) -> (bool, Option<Hotpath>) {
    let mut panics = false;
    let mut hotpath: Option<Hotpath> = None;
    let scan = |ln: u32, panics: &mut bool, hotpath: &mut Option<Hotpath>| {
        for c in comments.get(&ln).map(Vec::as_slice).unwrap_or(&[]) {
            if ["///", "/**"].iter().any(|p| c.text.starts_with(p)) {
                if c.text.contains("# Panics") {
                    *panics = true;
                }
            } else if let Some(h) = parse_hotpath(c) {
                *hotpath = Some(h);
            }
        }
    };
    // Trailing annotation on the signature line itself also counts.
    scan(fn_line, &mut panics, &mut hotpath);
    let mut ln = fn_line;
    while ln > 1 {
        ln -= 1;
        match token_lines.get(&ln) {
            // Attribute line (`#[…]`) or a multi-line attribute tail:
            // step over it, ignoring any trailing comment.
            Some(first) if first == "#" || first == ")" || first == "]" => continue,
            // Any other code line ends the item's block — a trailing
            // comment there belongs to *that* line's item.
            Some(_) => break,
            // Comment-only line: part of this item's doc block.
            None if comments.contains_key(&ln) => {
                scan(ln, &mut panics, &mut hotpath);
            }
            // Blank line: ends the block.
            None => break,
        }
    }
    (panics, hotpath)
}

/// Parse `lint:hotpath(<reason>)` out of a plain comment.
fn parse_hotpath(c: &Comment) -> Option<Hotpath> {
    const MARKER: &str = "lint:hotpath";
    let start = c.text.find(MARKER)?;
    let after = &c.text[start + MARKER.len()..];
    let reason = after
        .strip_prefix('(')
        .and_then(|rest| rest.find(')').map(|end| rest[..end].trim().to_string()))
        .filter(|r| !r.is_empty());
    Some(Hotpath {
        reason,
        line: c.line,
        col: c.col,
    })
}

// ----------------------------------------------------- body extraction

/// Methods that block the calling thread outright.
const BLOCKING_METHODS: [&str; 12] = [
    "wait",
    "wait_timeout",
    "wait_while",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "accept",
    "connect",
    "read_line",
    "read_to_string",
    "read_to_end",
    "write_all",
];

/// Path-call names that are blocking I/O (`TcpStream::connect`,
/// `fs::read_to_string`, `File::open`, …).
const BLOCKING_PATH_CALLS: [&str; 6] = [
    "connect",
    "bind",
    "open",
    "create",
    "read_to_string",
    "copy",
];

fn extract_bodies(fi: usize, ctx: &FileContext<'_>, model: &mut WorkspaceModel) {
    let toks = &ctx.tokens;
    // Function defs of this file, in body-start order (extraction order
    // already guarantees outer-before-inner for nested fns).
    let defs: Vec<usize> = (0..model.functions.len())
        .filter(|&id| model.functions[id].file == fi && model.functions[id].body.is_some())
        .collect();
    let mut next = 0usize;
    let mut active: Vec<usize> = Vec::new();
    let mut skip_attr_until = 0usize;

    for i in 0..toks.len() {
        while next < defs.len() && model.functions[defs[next]].body.unwrap().0 == i {
            active.push(defs[next]);
            next += 1;
        }
        while let Some(&top) = active.last() {
            if i > model.functions[top].body.unwrap().1 {
                active.pop();
            } else {
                break;
            }
        }
        let Some(&cur) = active.last() else { continue };

        // Attribute contents (`#[cfg(test)]`) look like calls; skip them.
        if i < skip_attr_until {
            continue;
        }
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            skip_attr_until = j + 1;
            continue;
        }

        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }

        // Alloc-capable macros.
        if (t.text == "format" || t.text == "vec")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            model.alloc_macros[cur].push((t.text.clone(), i, t.line, t.col));
            continue;
        }

        // Calls: `name(`.
        if !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            // Function-reference argument: `.map(double)` — a lone
            // lowercase ident as the sole argument of a known
            // higher-order combinator. Only recorded as an *implicit*
            // candidate — resolution keeps it solely when exactly one
            // workspace free fn matches, since the token is otherwise
            // just a variable. The combinator allowlist keeps struct
            // literal shorthand (`Profile { events, .. }`) and macro
            // arguments (`write!(f, .., x)`) out of the model.
            let prev = i.checked_sub(1).map(|j| &toks[j]);
            let next = toks.get(i + 1);
            let arg_start = prev.is_some_and(|p| p.is_punct("("))
                && i.checked_sub(2).is_some_and(|j| {
                    let h = &toks[j];
                    h.kind == TokenKind::Ident && HOF_COMBINATORS.contains(&h.text.as_str())
                });
            if arg_start
                && next.is_some_and(|n| n.is_punct(")"))
                && t.text.starts_with(|c: char| c.is_ascii_lowercase())
                && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                && t.text != "drop"
                && t.text != "self"
            {
                model.calls[cur].push(CallSite {
                    name: t.text.clone(),
                    kind: CallKind::Bare,
                    token: i,
                    line: t.line,
                    col: t.col,
                    resolved: None,
                    why_unresolved: None,
                    implicit: true,
                });
            }
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &toks[j]);
        let is_method = prev.is_some_and(|p| p.is_punct("."));
        let is_path = prev.is_some_and(|p| p.is_punct("::"));

        if is_method {
            // Lock acquisition: `.lock()` / `.read()` / `.write()` with
            // *empty* parens (with arguments these are I/O, handled as
            // blocking calls below).
            let empty = toks.get(i + 2).is_some_and(|n| n.is_punct(")"));
            if empty && matches!(t.text.as_str(), "lock" | "read" | "write") {
                let lock = canonical_lock_id(toks, i, &model.functions[cur]);
                let stmt = crate::rules::statement_start(toks, i);
                let guard = crate::rules::let_binding_name(toks, stmt)
                    .filter(|n| *n != "_")
                    .map(str::to_string);
                let until = if guard.is_some() {
                    guard_block_end(toks, i, guard.as_deref())
                } else {
                    crate::rules::statement_end(toks, i)
                };
                model.locks[cur].push(LockEvent {
                    lock,
                    method: t.text.clone(),
                    guard,
                    token: i,
                    until,
                    line: t.line,
                    col: t.col,
                });
                continue;
            }
            // Blocking primitives.
            let io_rw = matches!(t.text.as_str(), "read" | "write") && !empty;
            let join = t.text == "join" && empty;
            if BLOCKING_METHODS.contains(&t.text.as_str()) || io_rw || join {
                let releases = (t.text.starts_with("wait"))
                    .then(|| {
                        toks.get(i + 2)
                            .filter(|n| n.kind == TokenKind::Ident)
                            .map(|n| n.text.clone())
                    })
                    .flatten();
                model.blocking[cur].push(BlockingCall {
                    what: format!(".{}()", t.text),
                    token: i,
                    line: t.line,
                    col: t.col,
                    releases,
                });
                // `.read(buf)`/`.write(buf)` are not workspace calls;
                // the rest still get recorded as (method) call sites so
                // blocking callees resolve transitively.
            }
            model.calls[cur].push(CallSite {
                name: t.text.clone(),
                kind: CallKind::Method,
                token: i,
                line: t.line,
                col: t.col,
                resolved: None,
                why_unresolved: None,
                implicit: false,
            });
        } else if is_path {
            let qualifier = path_qualifier(toks, i);
            if BLOCKING_PATH_CALLS.contains(&t.text.as_str())
                && qualifier.as_deref().is_some_and(is_io_qualifier)
            {
                model.blocking[cur].push(BlockingCall {
                    what: format!("{}::{}()", qualifier.as_deref().unwrap_or(""), t.text),
                    token: i,
                    line: t.line,
                    col: t.col,
                    releases: None,
                });
            }
            model.calls[cur].push(CallSite {
                name: t.text.clone(),
                kind: CallKind::Path(qualifier.unwrap_or_default()),
                token: i,
                line: t.line,
                col: t.col,
                resolved: None,
                why_unresolved: None,
                implicit: false,
            });
        } else {
            // Bare call. Keywords, CamelCase tuple-struct / enum
            // constructors (`Some`, `Ok`, `GroupId`), and `drop` (it
            // ends guard lifetimes; never a workspace fn) are not
            // calls the model should chase.
            if NON_CALL_KEYWORDS.contains(&t.text.as_str())
                || t.text == "drop"
                || t.text.starts_with(|c: char| c.is_ascii_uppercase())
                || prev.is_some_and(|p| p.is_ident("fn"))
            {
                continue;
            }
            model.calls[cur].push(CallSite {
                name: t.text.clone(),
                kind: CallKind::Bare,
                token: i,
                line: t.line,
                col: t.col,
                resolved: None,
                why_unresolved: None,
                implicit: false,
            });
        }
    }
}

/// `TcpStream`, `File`, `fs`, `net`, … — qualifiers whose blocking
/// path-calls we recognize.
fn is_io_qualifier(q: &str) -> bool {
    matches!(
        q,
        "TcpStream" | "TcpListener" | "UnixStream" | "UnixListener" | "File" | "fs" | "net"
    )
}

/// The last path segment before `name` in `A::B::name(`.
fn path_qualifier(toks: &[Token], name_idx: usize) -> Option<String> {
    let seg = name_idx.checked_sub(2).map(|j| &toks[j])?;
    (seg.kind == TokenKind::Ident).then(|| seg.text.clone())
}

/// Canonical lock id for the receiver of `.lock()`/`.read()`/`.write()`
/// at token `i`: `Type::field.path` when the chain starts at `self` in
/// a known impl, the literal receiver chain otherwise.
fn canonical_lock_id(toks: &[Token], i: usize, def: &FunctionDef) -> String {
    // Walk `recv(.recv)*` backwards from the `.` before the method.
    let mut segs: Vec<&str> = Vec::new();
    let mut j = i.checked_sub(2); // token before the `.`
    while let Some(k) = j {
        let t = &toks[k];
        if t.kind != TokenKind::Ident {
            break;
        }
        segs.push(&t.text);
        match k.checked_sub(1).map(|p| &toks[p]) {
            Some(p) if p.is_punct(".") || p.is_punct("::") => j = k.checked_sub(2),
            _ => break,
        }
    }
    segs.reverse();
    if segs.is_empty() {
        return "<expr>".to_string();
    }
    if segs[0] == "self" {
        if let Some(ty) = &def.qself {
            return format!("{ty}::{}", segs[1..].join("."));
        }
    }
    segs.join(".")
}

/// One past the `}` closing the block enclosing token `i`, truncated at
/// a `drop(<guard>)` of the named guard.
fn guard_block_end(toks: &[Token], i: usize, guard: Option<&str>) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if let Some(g) = guard {
            if t.is_ident("drop")
                && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
                && toks.get(j + 2).is_some_and(|n| n.is_ident(g))
                && toks.get(j + 3).is_some_and(|n| n.is_punct(")"))
            {
                return j;
            }
        }
        j += 1;
    }
    toks.len()
}

// ---------------------------------------------------------- resolution

/// Per-call-site resolution: (site index, resolved callee, why not).
type SiteResolution = (usize, Option<usize>, Option<Unresolved>);

fn resolve_calls(ctxs: &[FileContext<'_>], model: &mut WorkspaceModel) {
    // Name maps over definitions. BTreeMap for deterministic iteration.
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, f) in model.functions.iter().enumerate() {
        match f.qself {
            None => free.entry(&f.name).or_default().push(id),
            Some(_) => methods.entry(&f.name).or_default().push(id),
        }
    }

    let file_stem = |fi: usize| -> &str {
        let path = ctxs[fi].file.path.as_str();
        path.rsplit('/')
            .next()
            .and_then(|n| n.strip_suffix(".rs"))
            .unwrap_or("")
    };

    let mut resolutions: Vec<Vec<SiteResolution>> = vec![Vec::new(); model.functions.len()];
    for (caller, sites) in model.calls.iter().enumerate() {
        let caller_file = model.functions[caller].file;
        let caller_crate = ctxs[caller_file].file.crate_name.as_str();
        for (si, call) in sites.iter().enumerate() {
            let (resolved, why) = match &call.kind {
                CallKind::Bare => {
                    let empty: Vec<usize> = Vec::new();
                    let cands = free.get(call.name.as_str()).unwrap_or(&empty);
                    let same_file: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&id| model.functions[id].file == caller_file)
                        .collect();
                    let same_crate: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&id| {
                            ctxs[model.functions[id].file].file.crate_name == caller_crate
                        })
                        .collect();
                    pick(&[&same_file, &same_crate, cands])
                }
                CallKind::Method => {
                    let empty: Vec<usize> = Vec::new();
                    let cands = methods.get(call.name.as_str()).unwrap_or(&empty);
                    // `self.name(...)`: the receiver type is the
                    // caller's own impl type — resolve within it.
                    let toks = &ctxs[caller_file].tokens;
                    let self_recv = call.token >= 2
                        && toks[call.token - 2].is_ident("self")
                        && !(call.token >= 3 && toks[call.token - 3].is_punct("."));
                    if self_recv {
                        let qself = model.functions[caller].qself.as_deref();
                        let own: Vec<usize> = cands
                            .iter()
                            .copied()
                            .filter(|&id| {
                                model.functions[id].qself.as_deref() == qself
                                    && ctxs[model.functions[id].file].file.crate_name
                                        == caller_crate
                            })
                            .collect();
                        pick(&[&own])
                    } else if STD_METHOD_NAMES.contains(&call.name.as_str()) {
                        // Receiver unknown and the name collides with
                        // std: `map.entry(k)` must not resolve to a
                        // workspace `entry` method.
                        (None, Some(Unresolved::Unknown))
                    } else {
                        pick(&[cands])
                    }
                }
                CallKind::Path(q) => {
                    let q: &str = if q == "Self" {
                        model.functions[caller].qself.as_deref().unwrap_or(q)
                    } else {
                        q
                    };
                    let is_type = q.starts_with(|c: char| c.is_ascii_uppercase());
                    let cands: Vec<usize> = if is_type {
                        methods
                            .get(call.name.as_str())
                            .map(|v| {
                                v.iter()
                                    .copied()
                                    .filter(|&id| model.functions[id].qself.as_deref() == Some(q))
                                    .collect()
                            })
                            .unwrap_or_default()
                    } else {
                        free.get(call.name.as_str())
                            .map(|v| {
                                v.iter()
                                    .copied()
                                    .filter(|&id| {
                                        let fi = model.functions[id].file;
                                        let krate = ctxs[fi].file.crate_name.as_str();
                                        file_stem(fi) == q
                                            || krate == q
                                            || q.strip_prefix("meme_") == Some(krate)
                                    })
                                    .collect()
                            })
                            .unwrap_or_default()
                    };
                    pick(&[&cands])
                }
            };
            resolutions[caller].push((si, resolved, why));
        }
    }

    // Write back, and collect the deduplicated unresolved list.
    let mut unresolved: BTreeMap<(usize, String, &'static str), UnresolvedCall> = BTreeMap::new();
    for (caller, res) in resolutions.into_iter().enumerate() {
        for (si, resolved, why) in res {
            let call = &mut model.calls[caller][si];
            call.resolved = resolved;
            call.why_unresolved = why;
            let Some(why) = why else { continue };
            // Unknown method calls are std/vendor noise, and implicit
            // fn-reference candidates that did not resolve are almost
            // always plain variables; everything else is honest
            // uncertainty and gets recorded.
            if call.implicit || (why == Unresolved::Unknown && call.kind == CallKind::Method) {
                continue;
            }
            let key = (caller, call.name.clone(), call.kind.label());
            match unresolved.get_mut(&key) {
                Some(u) => u.count += 1,
                None => {
                    unresolved.insert(
                        key,
                        UnresolvedCall {
                            caller,
                            name: call.name.clone(),
                            kind: call.kind.label().to_string(),
                            why,
                            line: call.line,
                            col: call.col,
                            count: 1,
                        },
                    );
                }
            }
        }
    }
    model.unresolved = unresolved.into_values().collect();
}

/// Resolve against candidate lists from narrowest to widest scope: the
/// first non-empty list decides — a single entry resolves, more than
/// one is ambiguous. All lists empty is unknown.
fn pick(scopes: &[&Vec<usize>]) -> (Option<usize>, Option<Unresolved>) {
    for cands in scopes {
        match cands.len() {
            0 => continue,
            1 => return (Some(cands[0]), None),
            _ => return (None, Some(Unresolved::Ambiguous)),
        }
    }
    (None, Some(Unresolved::Unknown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn model_of(files: &[(&str, &str)]) -> (Vec<SourceFile>, WorkspaceModel) {
        let files: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::new(*p, *t)).collect();
        let ctxs: Vec<FileContext> = files.iter().map(FileContext::build).collect();
        let model = WorkspaceModel::build(&ctxs);
        (files, model)
    }

    fn find<'m>(m: &'m WorkspaceModel, name: &str) -> (usize, &'m FunctionDef) {
        m.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn extracts_free_fns_and_methods() {
        let (_f, m) = model_of(&[(
            "crates/core/src/x.rs",
            "pub fn free() {}\n\
             struct S;\n\
             impl S {\n    fn method(&self) {}\n}\n\
             impl std::fmt::Display for S {\n    fn fmt(&self) {}\n}\n\
             trait T {\n    fn required(&self);\n    fn provided(&self) {}\n}\n",
        )]);
        assert_eq!(find(&m, "free").1.qself, None);
        assert_eq!(find(&m, "method").1.qself.as_deref(), Some("S"));
        assert_eq!(find(&m, "fmt").1.qself.as_deref(), Some("S"));
        assert_eq!(find(&m, "required").1.body, None);
        assert_eq!(find(&m, "provided").1.qself.as_deref(), Some("T"));
    }

    #[test]
    fn impl_in_return_type_is_not_a_block() {
        let (_f, m) = model_of(&[(
            "crates/core/src/x.rs",
            "fn gen() -> impl Iterator<Item = u32> {\n    (0..3).map(double)\n}\n\
             fn double(x: u32) -> u32 { x * 2 }\n",
        )]);
        assert_eq!(find(&m, "double").1.qself, None);
        let (gid, _) = find(&m, "gen");
        let resolved: Vec<&str> = m.resolved_calls(gid).map(|c| c.name.as_str()).collect();
        assert_eq!(resolved, ["double"]);
    }

    #[test]
    fn resolution_prefers_same_file_then_crate() {
        let (_f, m) = model_of(&[
            (
                "crates/core/src/a.rs",
                "fn helper() {}\nfn caller() { helper(); }\n",
            ),
            ("crates/core/src/b.rs", "fn helper() {}\n"),
        ]);
        let (caller, _) = find(&m, "caller");
        let call = m.resolved_calls(caller).next().unwrap();
        let target = call.resolved.unwrap();
        assert_eq!(m.functions[target].file, 0, "same-file helper wins");
    }

    #[test]
    fn ambiguous_methods_are_recorded_not_guessed() {
        let (_f, m) = model_of(&[(
            "crates/core/src/x.rs",
            "struct A;\nstruct B;\n\
             impl A {\n    fn go(&self) {}\n}\n\
             impl B {\n    fn go(&self) {}\n}\n\
             fn caller(a: A) { a.go(); }\n",
        )]);
        let (caller, _) = find(&m, "caller");
        assert_eq!(m.resolved_calls(caller).count(), 0);
        assert_eq!(m.unresolved.len(), 1);
        assert_eq!(m.unresolved[0].name, "go");
        assert_eq!(m.unresolved[0].why, Unresolved::Ambiguous);
    }

    #[test]
    fn qualified_path_disambiguates() {
        let (_f, m) = model_of(&[(
            "crates/core/src/x.rs",
            "struct A;\nstruct B;\n\
             impl A {\n    fn go() {}\n}\n\
             impl B {\n    fn go() {}\n}\n\
             fn caller() { A::go(); }\n",
        )]);
        let (caller, _) = find(&m, "caller");
        let call = m.resolved_calls(caller).next().unwrap();
        let target = call.resolved.unwrap();
        assert_eq!(m.functions[target].qself.as_deref(), Some("A"));
    }

    #[test]
    fn panics_doc_and_hotpath_are_attached() {
        let (_f, m) = model_of(&[(
            "crates/cluster/src/x.rs",
            "/// Does things.\n\
             ///\n\
             /// # Panics\n\
             /// Panics when empty.\n\
             pub fn medoids() {}\n\
             // lint:hotpath(steady-state lookup)\n\
             #[inline]\n\
             pub fn lookup() {}\n\
             // lint:hotpath()\n\
             pub fn malformed() {}\n\
             pub fn plain() {}\n",
        )]);
        assert!(find(&m, "medoids").1.panics_doc);
        let hp = find(&m, "lookup").1.hotpath.as_ref().unwrap();
        assert_eq!(hp.reason.as_deref(), Some("steady-state lookup"));
        let bad = find(&m, "malformed").1.hotpath.as_ref().unwrap();
        assert!(bad.reason.is_none());
        assert!(find(&m, "plain").1.hotpath.is_none());
        assert!(!find(&m, "plain").1.panics_doc);
    }

    #[test]
    fn lock_guard_lifetimes() {
        let (_f, m) = model_of(&[(
            "crates/serve/src/x.rs",
            "struct Q { inner: std::sync::Mutex<u32> }\n\
             impl Q {\n\
                 fn bound(&self) {\n\
                     let g = self.inner.lock().unwrap_or_else(e);\n\
                     use_it(&g);\n\
                     drop(g);\n\
                     after();\n\
                 }\n\
                 fn temp(&self) {\n\
                     *self.inner.lock().unwrap_or_else(e) += 1;\n\
                     after();\n\
                 }\n\
             }\n\
             fn use_it(_g: &u32) {}\nfn after() {}\nfn e(x: u32) -> u32 { x }\n",
        )]);
        let (bound, _) = find(&m, "bound");
        let lk = &m.locks[bound][0];
        assert_eq!(lk.lock, "Q::inner");
        assert_eq!(lk.guard.as_deref(), Some("g"));
        // `drop(g)` truncates the range before `after()`.
        let after_call = m.calls[bound]
            .iter()
            .find(|c| c.name == "after")
            .unwrap()
            .token;
        assert!(lk.until < after_call);

        let (temp, _) = find(&m, "temp");
        let lk = &m.locks[temp][0];
        assert_eq!(lk.guard, None);
        let after_call = m.calls[temp]
            .iter()
            .find(|c| c.name == "after")
            .unwrap()
            .token;
        // `until` is exclusive: statement_end points one past the `;`,
        // which is the `after` token itself.
        assert!(lk.until <= after_call, "temporary dies at statement end");
    }

    #[test]
    fn blocking_and_wait_release() {
        let (_f, m) = model_of(&[(
            "crates/serve/src/x.rs",
            "fn f(rx: R, cv: C, g: G) {\n\
                 rx.recv();\n\
                 let g2 = cv.wait(g2);\n\
             }\n",
        )]);
        let (fid, _) = find(&m, "f");
        let whats: Vec<&str> = m.blocking[fid].iter().map(|b| b.what.as_str()).collect();
        assert_eq!(whats, [".recv()", ".wait()"]);
        assert_eq!(m.blocking[fid][1].releases.as_deref(), Some("g2"));
    }

    #[test]
    fn attribute_contents_are_not_calls() {
        let (_f, m) = model_of(&[(
            "crates/core/src/x.rs",
            "fn f() {\n    #[allow(dead_code)]\n    let x = 1;\n}\n",
        )]);
        let (fid, _) = find(&m, "f");
        assert!(m.calls[fid].is_empty());
    }
}
