//! Inline suppressions: `// lint:allow(<rule>): <reason>`.
//!
//! A suppression covers findings on its own line (trailing form) and on
//! the line immediately below (standalone form). The reason is
//! **mandatory** — a suppression is a reviewed decision, and the review
//! belongs next to the code; a reason-less or unknown-rule suppression
//! is itself a finding (`invalid-suppression`), and a suppression that
//! matches nothing is flagged `unused-suppression` so stale opt-outs
//! cannot accumulate.

use crate::lexer::Comment;

/// One parsed `lint:allow` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule ids being allowed.
    pub rules: Vec<String>,
    /// The mandatory justification (None = invalid suppression).
    pub reason: Option<String>,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// Whether any finding was actually suppressed by this directive.
    pub used: bool,
}

impl Suppression {
    /// Whether this suppression covers `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        (line == self.line || line == self.line + 1) && self.rules.iter().any(|r| r == rule)
    }
}

/// The directive marker inside a comment.
const MARKER: &str = "lint:allow(";

/// Extract every `lint:allow` directive from a file's comments.
pub fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments describe the directive syntax; only plain
        // comments carry live directives.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| c.text.starts_with(p))
        {
            continue;
        }
        let Some(start) = c.text.find(MARKER) else {
            continue;
        };
        let after = &c.text[start + MARKER.len()..];
        let Some(close) = after.find(')') else {
            out.push(Suppression {
                rules: Vec::new(),
                reason: None,
                line: c.line,
                col: c.col,
                used: false,
            });
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let rest = after[close + 1..].trim_start();
        let reason = rest
            .strip_prefix(':')
            .map(str::trim)
            .filter(|r| !r.is_empty())
            .map(str::to_string);
        out.push(Suppression {
            rules,
            reason,
            line: c.line,
            col: c.col,
            used: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Suppression> {
        parse_suppressions(&lex(src).comments)
    }

    #[test]
    fn well_formed_suppression() {
        let s = parse("// lint:allow(panic-in-pipeline): crossbeam scope re-raises\nx.unwrap();");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rules, ["panic-in-pipeline"]);
        assert_eq!(s[0].reason.as_deref(), Some("crossbeam scope re-raises"));
        assert!(s[0].covers("panic-in-pipeline", 2));
        assert!(s[0].covers("panic-in-pipeline", 1)); // trailing form
        assert!(!s[0].covers("panic-in-pipeline", 3));
        assert!(!s[0].covers("float-eq", 2));
    }

    #[test]
    fn multiple_rules_one_directive() {
        let s = parse("// lint:allow(float-eq, unseeded-rng): test harness\n");
        assert_eq!(s[0].rules, ["float-eq", "unseeded-rng"]);
    }

    #[test]
    fn missing_reason_is_none() {
        let s = parse("// lint:allow(float-eq)\n");
        assert!(s[0].reason.is_none());
        let s = parse("// lint:allow(float-eq):   \n");
        assert!(s[0].reason.is_none());
    }

    #[test]
    fn unterminated_directive_is_invalid() {
        let s = parse("// lint:allow(float-eq\n");
        assert!(s[0].rules.is_empty());
        assert!(s[0].reason.is_none());
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        assert!(parse("// just a comment about allowing things\n").is_empty());
    }
}
