//! The machine-readable lint report and its schema validator.
//!
//! Same pattern as the PR 2 metrics export: the producer serializes a
//! typed struct, and an *independent* structural validator
//! ([`validate_lint_report`]) re-checks the JSON before it is written
//! or consumed, so a schema drift fails loudly in CI instead of
//! silently feeding malformed artifacts downstream. `memes-lint`
//! validates its own report before writing it.

use crate::error::AnalysisError;
use crate::rules::Finding;
use serde::{DeError, Deserialize, Serialize, Value};

/// Schema version of `lint-report.json`; bump on incompatible change.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Disposition of one finding relative to the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingStatus {
    /// Not in the baseline — fails `--deny-new`.
    New,
    /// Absorbed by a baseline entry.
    Grandfathered,
}

impl FindingStatus {
    /// The JSON wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingStatus::New => "new",
            FindingStatus::Grandfathered => "grandfathered",
        }
    }
}

impl Serialize for FindingStatus {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for FindingStatus {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some("new") => Ok(FindingStatus::New),
            Some("grandfathered") => Ok(FindingStatus::Grandfathered),
            _ => Err(DeError::expected(
                "\"new\" or \"grandfathered\"",
                "FindingStatus",
            )),
        }
    }
}

/// One finding as reported: the diagnostic plus its baseline
/// disposition. Fields mirror [`Finding`] (the vendored serde model has
/// no `flatten`, so they are spelled out).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportFinding {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Baseline key (trimmed source line).
    pub key: String,
    /// New vs grandfathered.
    pub status: FindingStatus,
}

impl ReportFinding {
    /// Attach a status to a diagnostic.
    pub fn new(f: &Finding, status: FindingStatus) -> Self {
        Self {
            rule: f.rule.clone(),
            file: f.file.clone(),
            line: f.line,
            col: f.col,
            message: f.message.clone(),
            key: f.key.clone(),
            status,
        }
    }
}

/// Per-rule rollup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuleSummary {
    /// Rule id.
    pub id: String,
    /// One-line description.
    pub summary: String,
    /// Findings attributed to this rule (new + grandfathered).
    pub count: u32,
}

/// Wall-clock timing of one `lint.rule.<id>.duration` span, exported
/// from the meme-metrics registry when `--timings` is passed. Omitted
/// (serialized as `null`) by default so the committed report stays
/// byte-stable run to run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuleTiming {
    /// Span path, e.g. `lint.rule.panic-reachable.duration`.
    pub name: String,
    /// Number of times the span ran (1 per lint invocation).
    pub calls: u64,
    /// Total seconds across all calls.
    pub total_secs: f64,
    /// Fastest single call.
    pub min_secs: f64,
    /// Slowest single call.
    pub max_secs: f64,
}

/// Totals across the run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Totals {
    /// All findings.
    pub total: u32,
    /// Findings not covered by the baseline.
    pub new: u32,
    /// Findings absorbed by the baseline.
    pub grandfathered: u32,
}

/// The full `lint-report.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Must equal [`REPORT_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Producing tool (`"memes-lint"`).
    pub tool: String,
    /// Number of workspace files scanned.
    pub files_scanned: u32,
    /// Every registered rule with its hit count (zero counts included,
    /// so the report documents coverage, not just hits).
    pub rules: Vec<RuleSummary>,
    /// All findings, sorted by (file, line, col, rule).
    pub findings: Vec<ReportFinding>,
    /// Rollup counts.
    pub totals: Totals,
    /// Per-rule wall-clock timings; `None` (wire: `null`) unless the
    /// run asked for them, keeping the default report deterministic.
    pub timings: Option<Vec<RuleTiming>>,
}

impl Report {
    /// Serialize (pretty, trailing newline), self-validating first so a
    /// malformed report can never be written.
    pub fn to_json(&self) -> Result<String, AnalysisError> {
        let mut text =
            serde_json::to_string_pretty(self).map_err(|e| AnalysisError::ReportInvalid {
                detail: e.to_string(),
            })?;
        text.push('\n');
        validate_lint_report(&text)?;
        Ok(text)
    }
}

/// Structurally validate a `lint-report.json` document, independently
/// of the serde types that produced it (mirrors
/// `validate_metrics_json` in the root crate).
pub fn validate_lint_report(text: &str) -> Result<(), AnalysisError> {
    let invalid = |detail: String| AnalysisError::ReportInvalid { detail };
    let doc: Value = serde_json::from_str(text)
        // lint:allow(untyped-error): invalid() wraps into AnalysisError::ReportInvalid
        .map_err(|e| invalid(format!("not valid JSON: {e}")))?;
    let root = doc
        .as_object()
        .ok_or_else(|| invalid("top level is not an object".into()))?;

    let version = get(root, "schema_version")
        .and_then(as_u64)
        .ok_or_else(|| invalid("missing integer `schema_version`".into()))?;
    if version != u64::from(REPORT_SCHEMA_VERSION) {
        return Err(invalid(format!(
            "schema_version {version} != supported {REPORT_SCHEMA_VERSION}"
        )));
    }
    if get(root, "tool").and_then(Value::as_str) != Some("memes-lint") {
        return Err(invalid("`tool` must be \"memes-lint\"".into()));
    }
    if get(root, "files_scanned").and_then(as_u64).is_none() {
        return Err(invalid("missing integer `files_scanned`".into()));
    }

    let rules = get(root, "rules")
        .and_then(Value::as_array)
        .ok_or_else(|| invalid("missing array `rules`".into()))?;
    for (i, r) in rules.iter().enumerate() {
        let r = r
            .as_object()
            .ok_or_else(|| invalid(format!("rules[{i}] is not an object")))?;
        for key in ["id", "summary"] {
            if get(r, key).and_then(Value::as_str).is_none() {
                return Err(invalid(format!("rules[{i}]: missing string `{key}`")));
            }
        }
        if get(r, "count").and_then(as_u64).is_none() {
            return Err(invalid(format!("rules[{i}]: missing integer `count`")));
        }
    }

    let findings = get(root, "findings")
        .and_then(Value::as_array)
        .ok_or_else(|| invalid("missing array `findings`".into()))?;
    let mut new = 0u64;
    let mut grandfathered = 0u64;
    for (i, f) in findings.iter().enumerate() {
        let f = f
            .as_object()
            .ok_or_else(|| invalid(format!("findings[{i}] is not an object")))?;
        for key in ["rule", "file", "message", "key"] {
            if get(f, key).and_then(Value::as_str).is_none() {
                return Err(invalid(format!("findings[{i}]: missing string `{key}`")));
            }
        }
        for key in ["line", "col"] {
            match get(f, key).and_then(as_u64) {
                Some(n) if n >= 1 => {}
                _ => return Err(invalid(format!("findings[{i}]: `{key}` must be >= 1"))),
            }
        }
        match get(f, "status").and_then(Value::as_str) {
            Some("new") => new += 1,
            Some("grandfathered") => grandfathered += 1,
            other => {
                return Err(invalid(format!(
                    "findings[{i}]: `status` must be \"new\" or \"grandfathered\", got {other:?}"
                )))
            }
        }
    }

    let totals = get(root, "totals")
        .and_then(Value::as_object)
        .ok_or_else(|| invalid("missing object `totals`".into()))?;
    let tget = |key: &str| {
        get(totals, key)
            .and_then(as_u64)
            .ok_or_else(|| invalid(format!("missing integer `totals.{key}`")))
    };
    let (t, n, g) = (tget("total")?, tget("new")?, tget("grandfathered")?);
    if t != findings.len() as u64 || n != new || g != grandfathered || t != n + g {
        return Err(invalid(format!(
            "totals inconsistent with findings: total={t} new={n} grandfathered={g}, \
             counted {} / {new} / {grandfathered}",
            findings.len()
        )));
    }

    // `timings` is optional: absent or null when the run did not ask
    // for them, else an array of span rollups.
    match get(root, "timings") {
        None | Some(Value::Null) => {}
        Some(Value::Array(spans)) => {
            for (i, s) in spans.iter().enumerate() {
                let s = s
                    .as_object()
                    .ok_or_else(|| invalid(format!("timings[{i}] is not an object")))?;
                match get(s, "name").and_then(Value::as_str) {
                    Some(name) if name.starts_with("lint.") => {}
                    _ => {
                        return Err(invalid(format!(
                            "timings[{i}]: `name` must be a string starting with \"lint.\""
                        )))
                    }
                }
                match get(s, "calls").and_then(as_u64) {
                    Some(c) if c >= 1 => {}
                    _ => return Err(invalid(format!("timings[{i}]: `calls` must be >= 1"))),
                }
                for key in ["total_secs", "min_secs", "max_secs"] {
                    match get(s, key).and_then(as_f64) {
                        Some(v) if v >= 0.0 => {}
                        _ => {
                            return Err(invalid(format!(
                                "timings[{i}]: `{key}` must be a non-negative number"
                            )))
                        }
                    }
                }
            }
        }
        Some(_) => return Err(invalid("`timings` must be null or an array".into())),
    }
    Ok(())
}

/// Look up an object field (the vendored value model keeps objects as
/// ordered pair lists).
fn get<'v>(obj: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            schema_version: REPORT_SCHEMA_VERSION,
            tool: "memes-lint".into(),
            files_scanned: 2,
            rules: vec![RuleSummary {
                id: "float-eq".into(),
                summary: "floats".into(),
                count: 1,
            }],
            findings: vec![ReportFinding {
                rule: "float-eq".into(),
                file: "crates/stats/src/ecdf.rs".into(),
                line: 55,
                col: 12,
                message: "== on a float".into(),
                key: "if q == 0.0 {".into(),
                status: FindingStatus::Grandfathered,
            }],
            totals: Totals {
                total: 1,
                new: 0,
                grandfathered: 1,
            },
            timings: None,
        }
    }

    #[test]
    fn timings_serialize_as_null_by_default_and_validate_when_present() {
        let text = sample().to_json().unwrap();
        assert!(text.contains("\"timings\": null"), "{text}");

        let mut r = sample();
        r.timings = Some(vec![RuleTiming {
            name: "lint.rule.float-eq.duration".into(),
            calls: 1,
            total_secs: 0.0021,
            min_secs: 0.0021,
            max_secs: 0.0021,
        }]);
        r.to_json().unwrap();

        let bad = text.replace("\"timings\": null", "\"timings\": 7");
        assert!(validate_lint_report(&bad).is_err());
    }

    #[test]
    fn well_formed_report_roundtrips_and_validates() {
        let text = sample().to_json().unwrap();
        validate_lint_report(&text).unwrap();
        let back: Report = serde_json::from_str(&text).unwrap();
        assert_eq!(back.totals.total, 1);
        assert_eq!(back.findings[0].status, FindingStatus::Grandfathered);
    }

    #[test]
    fn inconsistent_totals_fail() {
        let mut r = sample();
        r.totals.new = 5;
        assert!(r.to_json().is_err());
    }

    #[test]
    fn wrong_version_fails() {
        let text = sample()
            .to_json()
            .unwrap()
            .replace("\"schema_version\": 1", "\"schema_version\": 42");
        assert!(validate_lint_report(&text).is_err());
    }

    #[test]
    fn garbage_fails() {
        assert!(validate_lint_report("not json").is_err());
        assert!(validate_lint_report("[]").is_err());
        assert!(validate_lint_report("{}").is_err());
    }

    #[test]
    fn bad_status_fails() {
        let text = sample()
            .to_json()
            .unwrap()
            .replace("\"grandfathered\"", "\"vintage\"");
        assert!(validate_lint_report(&text).is_err());
    }
}
