//! Source-file model and the workspace walker.
//!
//! The walker mirrors the workspace layout in `Cargo.toml`: member
//! crates under `crates/*`, the root facade under `src/`, integration
//! tests under `tests/`. `vendor/` (offline stand-ins for external
//! crates), `target/`, and fixture corpora are never scanned — the
//! invariants are ours, not our dependencies'.

use crate::error::AnalysisError;
use std::fs;
use std::path::{Path, PathBuf};

/// Where in the workspace a file lives — rules scope themselves by
/// class (e.g. `panic-in-pipeline` exempts test code outright).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code under a crate's `src/` (the default).
    Lib,
    /// A binary under `src/bin/`.
    Bin,
    /// An integration-test file (any `tests/` directory).
    Test,
    /// A benchmark (`benches/`).
    Bench,
    /// A build script (`build.rs`).
    Build,
    /// An example (`examples/`).
    Example,
}

impl FileClass {
    /// Short label for diagnostics and the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            FileClass::Lib => "lib",
            FileClass::Bin => "bin",
            FileClass::Test => "test",
            FileClass::Bench => "bench",
            FileClass::Build => "build",
            FileClass::Example => "example",
        }
    }
}

/// One source file, located within the workspace.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (diagnostic + baseline key).
    pub path: String,
    /// Owning crate: `crates/<name>/…` → `<name>`; root package → `root`.
    pub crate_name: String,
    /// File class (see [`FileClass`]).
    pub class: FileClass,
    /// The file's text.
    pub text: String,
}

impl SourceFile {
    /// Classify a workspace-relative path and wrap the text.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        let path = path.into().replace('\\', "/");
        let crate_name = match path.strip_prefix("crates/") {
            Some(rest) => rest.split('/').next().unwrap_or("root").to_string(),
            None => "root".to_string(),
        };
        let class = classify(&path);
        Self {
            path,
            crate_name,
            class,
            text: text.into(),
        }
    }

    /// The trimmed text of a 1-based line (baseline keys), empty when
    /// out of range.
    pub fn line_text(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .map(str::trim)
            .unwrap_or("")
    }
}

fn classify(path: &str) -> FileClass {
    if path.ends_with("build.rs") {
        FileClass::Build
    } else if path.contains("/bin/") {
        FileClass::Bin
    } else if path.starts_with("tests/") || path.contains("/tests/") {
        FileClass::Test
    } else if path.starts_with("benches/") || path.contains("/benches/") {
        FileClass::Bench
    } else if path.starts_with("examples/") || path.contains("/examples/") {
        FileClass::Example
    } else {
        FileClass::Lib
    }
}

/// Directories the walker never descends into.
const EXCLUDED_DIRS: [&str; 5] = ["vendor", "target", ".git", "fixtures", "repro-out"];

/// Collect every workspace `.rs` file under `root`, sorted by path so
/// every run (and the JSON report) is deterministic.
pub fn walk_workspace(root: &Path) -> Result<Vec<SourceFile>, AnalysisError> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let text = fs::read_to_string(&p).map_err(|e| AnalysisError::io(&p, e))?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .into_owned();
        files.push(SourceFile::new(rel, text));
    }
    Ok(files)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalysisError> {
    let entries = fs::read_dir(dir).map_err(|e| AnalysisError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| AnalysisError::io(dir, e))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if EXCLUDED_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_and_class_detection() {
        let f = SourceFile::new("crates/core/src/pipeline.rs", "");
        assert_eq!(f.crate_name, "core");
        assert_eq!(f.class, FileClass::Lib);

        let f = SourceFile::new("crates/index/tests/properties.rs", "");
        assert_eq!(f.crate_name, "index");
        assert_eq!(f.class, FileClass::Test);

        let f = SourceFile::new("src/bin/memes.rs", "");
        assert_eq!(f.crate_name, "root");
        assert_eq!(f.class, FileClass::Bin);

        let f = SourceFile::new("tests/chaos.rs", "");
        assert_eq!(f.crate_name, "root");
        assert_eq!(f.class, FileClass::Test);

        let f = SourceFile::new("crates/bench/benches/annotate.rs", "");
        assert_eq!(f.class, FileClass::Bench);

        let f = SourceFile::new("build.rs", "");
        assert_eq!(f.class, FileClass::Build);
    }

    #[test]
    fn line_text_trims_and_bounds() {
        let f = SourceFile::new("x.rs", "a\n  let y = 1;  \n");
        assert_eq!(f.line_text(2), "let y = 1;");
        assert_eq!(f.line_text(99), "");
    }
}
