//! Workspace-specific static analysis for the meme-pipeline repo.
//!
//! `memes-lint` (this crate's binary) enforces the invariants the test
//! suite can only sample: determinism (no hash-order leaking into
//! output, no unseeded RNGs, no wall-clock reads in algorithm code),
//! panic-freedom in pipeline hot paths, and the PR 1 typed-error
//! taxonomy at public API boundaries. It is a token-level analyzer —
//! a lexer and pattern walker, not a full parser — which keeps it
//! dependency-free and fast enough to run on every CI push.
//!
//! Architecture:
//! - [`lexer`] — Rust lexer producing tokens + comments with 1-based
//!   line/col spans.
//! - [`source`] — workspace walker and file classification
//!   (lib/bin/test/bench/build).
//! - [`context`] — per-file analysis context incl. `#[cfg(test)]`
//!   region detection.
//! - [`rules`] — the [`rules::Rule`] registry (six per-file content
//!   rules, three interprocedural [`rules::WorkspaceRule`]s, plus
//!   engine-level suppression hygiene).
//! - [`symbols`] — pass 1: symbol table, best-effort call graph, and
//!   lock model built from the token stream (DESIGN.md §13).
//! - [`callgraph`] — `memes-lint graph`: the schema-validated
//!   `callgraph.json` dump of the pass-1 model.
//! - [`suppress`] — `// lint:allow(<rule>): <reason>` directives.
//! - [`baseline`] — the checked-in ratchet (`lint-baseline.json`).
//! - [`report`] — `lint-report.json` plus its independent schema
//!   validator (same pattern as the metrics export).
//! - [`engine`] — ties it together.

pub mod baseline;
pub mod callgraph;
pub mod context;
pub mod engine;
pub mod error;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod suppress;
pub mod symbols;

pub use baseline::{Baseline, BaselineEntry, BASELINE_SCHEMA_VERSION};
pub use callgraph::{validate_callgraph, CallGraph, CALLGRAPH_SCHEMA_VERSION};
pub use engine::{Engine, LintRun};
pub use error::{AnalysisError, Exit};
pub use report::{validate_lint_report, Report, REPORT_SCHEMA_VERSION};
pub use rules::{
    all_rule_ids, builtin_rules, workspace_rules, Finding, Rule, Workspace, WorkspaceRule,
};
pub use source::{walk_workspace, FileClass, SourceFile};
pub use symbols::WorkspaceModel;
