//! The `callgraph.json` artifact and its schema validator.
//!
//! `memes-lint graph --out callgraph.json` dumps the pass-1 workspace
//! model (see [`crate::symbols`]) so the CI archive carries the same
//! graph the interprocedural rules ran on: every function with its
//! qualification and annotations, every *resolved* edge with a call
//! count, and every call the resolver declined to guess about. Like
//! the lint report, the producer self-validates through an independent
//! structural checker ([`validate_callgraph`]) before writing.

use crate::context::FileContext;
use crate::error::AnalysisError;
use crate::symbols::{Unresolved, WorkspaceModel};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Schema version of `callgraph.json`; bump on incompatible change.
pub const CALLGRAPH_SCHEMA_VERSION: u32 = 1;

/// One function node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphFunction {
    /// Node id — index into `functions`.
    pub id: u32,
    /// `crate::Type::name` / `crate::name` display form.
    pub qualified: String,
    /// Workspace-relative defining file.
    pub file: String,
    /// 1-based line of the name.
    pub line: u32,
    /// 1-based column of the name.
    pub col: u32,
    /// File class (`lib`, `bin`, `test`, …).
    pub class: String,
    /// Whether the definition sits in test code.
    pub is_test: bool,
    /// Whether the doc comment declares `# Panics`.
    pub panics_doc: bool,
    /// Whether a `lint:hotpath` annotation is attached.
    pub hotpath: bool,
}

/// One resolved caller→callee edge (call sites collapsed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphEdge {
    /// Caller node id.
    pub caller: u32,
    /// Callee node id.
    pub callee: u32,
    /// 1-based line of the first call site.
    pub line: u32,
    /// 1-based column of the first call site.
    pub col: u32,
    /// Number of call sites collapsed into this edge.
    pub count: u32,
}

/// One call the resolver recorded but did not resolve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphUnresolved {
    /// Caller node id.
    pub caller: u32,
    /// Callee name as written.
    pub name: String,
    /// `bare` / `method` / `path`.
    pub kind: String,
    /// `ambiguous` (several workspace matches) or `unknown` (none).
    pub reason: String,
    /// 1-based line of the first occurrence.
    pub line: u32,
    /// 1-based column of the first occurrence.
    pub col: u32,
    /// Number of call sites collapsed into this entry.
    pub count: u32,
}

/// Rollup counts.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GraphTotals {
    /// Function nodes.
    pub functions: u32,
    /// Resolved edges.
    pub edges: u32,
    /// Unresolved entries.
    pub unresolved: u32,
}

/// The full `callgraph.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CallGraph {
    /// Must equal [`CALLGRAPH_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Producing tool (`"memes-lint"`).
    pub tool: String,
    /// All function nodes, in (file, position) order.
    pub functions: Vec<GraphFunction>,
    /// Resolved edges, sorted by (caller, callee).
    pub edges: Vec<GraphEdge>,
    /// Unresolved calls, sorted by (caller, name, kind).
    pub unresolved: Vec<GraphUnresolved>,
    /// Rollup counts.
    pub totals: GraphTotals,
}

impl CallGraph {
    /// Project the workspace model into the dump form.
    pub fn from_model(model: &WorkspaceModel, ctxs: &[FileContext<'_>]) -> Self {
        let functions: Vec<GraphFunction> = model
            .functions
            .iter()
            .enumerate()
            .map(|(id, f)| GraphFunction {
                id: id as u32,
                qualified: model.qualified(ctxs, id),
                file: ctxs[f.file].file.path.clone(),
                line: f.line,
                col: f.col,
                class: ctxs[f.file].file.class.name().to_string(),
                is_test: f.is_test,
                panics_doc: f.panics_doc,
                hotpath: f.hotpath.is_some(),
            })
            .collect();

        let mut edge_map: BTreeMap<(u32, u32), GraphEdge> = BTreeMap::new();
        for (caller, _) in model.functions.iter().enumerate() {
            for call in model.resolved_calls(caller) {
                let callee = call.resolved.expect("resolved_calls filters") as u32;
                edge_map
                    .entry((caller as u32, callee))
                    .and_modify(|e| e.count += 1)
                    .or_insert(GraphEdge {
                        caller: caller as u32,
                        callee,
                        line: call.line,
                        col: call.col,
                        count: 1,
                    });
            }
        }
        let edges: Vec<GraphEdge> = edge_map.into_values().collect();

        let unresolved: Vec<GraphUnresolved> = model
            .unresolved
            .iter()
            .map(|u| GraphUnresolved {
                caller: u.caller as u32,
                name: u.name.clone(),
                kind: u.kind.clone(),
                reason: match u.why {
                    Unresolved::Ambiguous => "ambiguous".to_string(),
                    Unresolved::Unknown => "unknown".to_string(),
                },
                line: u.line,
                col: u.col,
                count: u.count,
            })
            .collect();

        let totals = GraphTotals {
            functions: functions.len() as u32,
            edges: edges.len() as u32,
            unresolved: unresolved.len() as u32,
        };
        CallGraph {
            schema_version: CALLGRAPH_SCHEMA_VERSION,
            tool: "memes-lint".to_string(),
            functions,
            edges,
            unresolved,
            totals,
        }
    }

    /// Serialize (pretty, trailing newline), self-validating first.
    pub fn to_json(&self) -> Result<String, AnalysisError> {
        let mut text =
            serde_json::to_string_pretty(self).map_err(|e| AnalysisError::ReportInvalid {
                detail: e.to_string(),
            })?;
        text.push('\n');
        validate_callgraph(&text)?;
        Ok(text)
    }
}

/// Structurally validate a `callgraph.json` document, independently of
/// the serde types that produced it.
pub fn validate_callgraph(text: &str) -> Result<(), AnalysisError> {
    let invalid = |detail: String| AnalysisError::ReportInvalid { detail };
    let doc: Value = serde_json::from_str(text)
        // lint:allow(untyped-error): invalid() wraps into AnalysisError::ReportInvalid
        .map_err(|e| invalid(format!("not valid JSON: {e}")))?;
    let root = doc
        .as_object()
        .ok_or_else(|| invalid("top level is not an object".into()))?;

    let version = get(root, "schema_version")
        .and_then(as_u64)
        .ok_or_else(|| invalid("missing integer `schema_version`".into()))?;
    if version != u64::from(CALLGRAPH_SCHEMA_VERSION) {
        return Err(invalid(format!(
            "schema_version {version} != supported {CALLGRAPH_SCHEMA_VERSION}"
        )));
    }
    if get(root, "tool").and_then(Value::as_str) != Some("memes-lint") {
        return Err(invalid("`tool` must be \"memes-lint\"".into()));
    }

    let functions = get(root, "functions")
        .and_then(Value::as_array)
        .ok_or_else(|| invalid("missing array `functions`".into()))?;
    let n = functions.len() as u64;
    for (i, f) in functions.iter().enumerate() {
        let f = f
            .as_object()
            .ok_or_else(|| invalid(format!("functions[{i}] is not an object")))?;
        match get(f, "id").and_then(as_u64) {
            Some(id) if id == i as u64 => {}
            other => {
                return Err(invalid(format!(
                    "functions[{i}]: `id` must equal the index, got {other:?}"
                )))
            }
        }
        for key in ["qualified", "file", "class"] {
            if get(f, key).and_then(Value::as_str).is_none() {
                return Err(invalid(format!("functions[{i}]: missing string `{key}`")));
            }
        }
        for key in ["line", "col"] {
            match get(f, key).and_then(as_u64) {
                Some(v) if v >= 1 => {}
                _ => return Err(invalid(format!("functions[{i}]: `{key}` must be >= 1"))),
            }
        }
        for key in ["is_test", "panics_doc", "hotpath"] {
            if !matches!(get(f, key), Some(Value::Bool(_))) {
                return Err(invalid(format!("functions[{i}]: missing bool `{key}`")));
            }
        }
    }

    let edges = get(root, "edges")
        .and_then(Value::as_array)
        .ok_or_else(|| invalid("missing array `edges`".into()))?;
    for (i, e) in edges.iter().enumerate() {
        let e = e
            .as_object()
            .ok_or_else(|| invalid(format!("edges[{i}] is not an object")))?;
        for key in ["caller", "callee"] {
            match get(e, key).and_then(as_u64) {
                Some(id) if id < n => {}
                other => {
                    return Err(invalid(format!(
                        "edges[{i}]: `{key}` must be a valid node id, got {other:?}"
                    )))
                }
            }
        }
        for key in ["line", "col", "count"] {
            match get(e, key).and_then(as_u64) {
                Some(v) if v >= 1 => {}
                _ => return Err(invalid(format!("edges[{i}]: `{key}` must be >= 1"))),
            }
        }
    }

    let unresolved = get(root, "unresolved")
        .and_then(Value::as_array)
        .ok_or_else(|| invalid("missing array `unresolved`".into()))?;
    for (i, u) in unresolved.iter().enumerate() {
        let u = u
            .as_object()
            .ok_or_else(|| invalid(format!("unresolved[{i}] is not an object")))?;
        match get(u, "caller").and_then(as_u64) {
            Some(id) if id < n => {}
            other => {
                return Err(invalid(format!(
                    "unresolved[{i}]: `caller` must be a valid node id, got {other:?}"
                )))
            }
        }
        if get(u, "name").and_then(Value::as_str).is_none() {
            return Err(invalid(format!("unresolved[{i}]: missing string `name`")));
        }
        match get(u, "kind").and_then(Value::as_str) {
            Some("bare" | "method" | "path") => {}
            other => {
                return Err(invalid(format!(
                    "unresolved[{i}]: `kind` must be bare/method/path, got {other:?}"
                )))
            }
        }
        match get(u, "reason").and_then(Value::as_str) {
            Some("ambiguous" | "unknown") => {}
            other => {
                return Err(invalid(format!(
                    "unresolved[{i}]: `reason` must be ambiguous/unknown, got {other:?}"
                )))
            }
        }
        for key in ["line", "col", "count"] {
            match get(u, key).and_then(as_u64) {
                Some(v) if v >= 1 => {}
                _ => return Err(invalid(format!("unresolved[{i}]: `{key}` must be >= 1"))),
            }
        }
    }

    let totals = get(root, "totals")
        .and_then(Value::as_object)
        .ok_or_else(|| invalid("missing object `totals`".into()))?;
    let tget = |key: &str| {
        get(totals, key)
            .and_then(as_u64)
            .ok_or_else(|| invalid(format!("missing integer `totals.{key}`")))
    };
    if tget("functions")? != n
        || tget("edges")? != edges.len() as u64
        || tget("unresolved")? != unresolved.len() as u64
    {
        return Err(invalid("totals inconsistent with arrays".into()));
    }
    Ok(())
}

fn get<'v>(obj: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let files: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::new(*p, *t)).collect();
        let ctxs: Vec<FileContext> = files.iter().map(FileContext::build).collect();
        let model = WorkspaceModel::build(&ctxs);
        CallGraph::from_model(&model, &ctxs)
    }

    #[test]
    fn dump_roundtrips_and_validates() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            "fn a() { b(); b(); c.mystery(); }\nfn b() {}\n",
        )]);
        assert_eq!(g.functions.len(), 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].count, 2, "call sites collapse into one edge");
        let text = g.to_json().unwrap();
        validate_callgraph(&text).unwrap();
        let back: CallGraph = serde_json::from_str(&text).unwrap();
        assert_eq!(back.totals.functions, 2);
    }

    #[test]
    fn dump_is_deterministic() {
        let files = [("crates/core/src/x.rs", "fn a() { b(); }\nfn b() { a(); }\n")];
        let t1 = graph_of(&files).to_json().unwrap();
        let t2 = graph_of(&files).to_json().unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn bad_edge_ids_fail_validation() {
        let g = graph_of(&[("crates/core/src/x.rs", "fn a() { b(); }\nfn b() {}\n")]);
        let text = g
            .to_json()
            .unwrap()
            .replace("\"callee\": 1", "\"callee\": 99");
        assert!(validate_callgraph(&text).is_err());
    }

    #[test]
    fn garbage_fails() {
        assert!(validate_callgraph("not json").is_err());
        assert!(validate_callgraph("{}").is_err());
    }
}
