//! A lightweight Rust lexer.
//!
//! Produces a flat token stream with 1-based line/column spans, plus the
//! comment list (comments carry the `lint:allow` suppressions). This is
//! *not* a full Rust parser: the rules operate on token patterns, which
//! is exactly the right altitude for workspace-specific invariants —
//! precise enough for `file:line:col` diagnostics, simple enough to
//! stay dependency-free and fast over the whole workspace.
//!
//! Handled faithfully (because getting them wrong corrupts every span
//! after the first occurrence): line and nested block comments, string
//! escapes, raw strings (`r#"…"#`), byte and raw-byte strings, raw
//! identifiers (`r#fn`), char-literal vs. lifetime disambiguation,
//! numeric literals with underscores/exponents/suffixes, and the
//! multi-character operators (`==`, `!=`, `::`, `->`, …).

use std::fmt;

/// Token classification — only as fine-grained as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are not distinguished).
    Ident,
    /// Integer literal (any base, with or without suffix).
    Int,
    /// Float literal (decimal point, exponent, or f32/f64 suffix).
    Float,
    /// String literal of any flavour (plain, raw, byte).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Punctuation / operator, possibly multi-character.
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token's source text (string literals keep their quotes).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.text, self.line, self.col)
    }
}

/// A comment (line or block) with its source position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based column where the comment starts.
    pub col: u32,
}

/// The full lexer output for one file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex a source file. Never fails: unterminated constructs are consumed
/// to end-of-file (the compiler rejects such files long before the
/// linter sees them in practice).
pub fn lex(src: &str) -> LexOutput {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    out: LexOutput,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            out: LexOutput::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consume one character, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> LexOutput {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '"' => self.string(line, col, String::new()),
                '\'' => self.char_or_lifetime(line, col),
                _ if c.is_ascii_digit() => self.number(line, col),
                _ if is_ident_start(c) => self.ident_or_prefixed(line, col),
                _ => self.punct(line, col),
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line, col });
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line, col });
    }

    /// A plain (escaped) string literal; `prefix` carries `b` etc.
    fn string(&mut self, line: u32, col: u32, prefix: String) {
        let mut text = prefix;
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// A raw string literal starting at the current `#` or `"`;
    /// `prefix` carries the already-consumed `r` / `br`.
    fn raw_string(&mut self, line: u32, col: u32, prefix: String) {
        let mut text = prefix;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        if self.peek(0) == Some('"') {
            text.push('"');
            self.bump();
            'body: while let Some(c) = self.bump() {
                text.push(c);
                if c == '"' {
                    // Need `hashes` trailing #s to close.
                    for k in 0..hashes {
                        if self.peek(k) != Some('#') {
                            continue 'body;
                        }
                    }
                    for _ in 0..hashes {
                        text.push('#');
                        self.bump();
                    }
                    break;
                }
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // Disambiguation: '\…' and 'x' (any single char followed by a
        // closing quote) are char literals; otherwise it's a lifetime.
        let next = self.peek(1);
        let is_char = match next {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        if is_char {
            let mut text = String::new();
            text.push('\'');
            self.bump();
            while let Some(c) = self.bump() {
                text.push(c);
                match c {
                    '\\' => {
                        if let Some(esc) = self.bump() {
                            text.push(esc);
                        }
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::Char, text, line, col);
        } else {
            let mut text = String::from('\'');
            self.bump();
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line, col);
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut float = false;
        // Base prefix?
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'))
        {
            text.push(self.bump().expect("digit present"));
            text.push(self.bump().expect("base char present"));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        } else {
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // Fractional part — but not a range (`0..n`) and not a
            // method call on a literal (`1.max(2)`).
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            } else if self.peek(0) == Some('.')
                && self.peek(1).is_none_or(|c| !is_ident_start(c) && c != '.')
            {
                // `1.` with nothing usable after: still a float.
                float = true;
                text.push('.');
                self.bump();
            }
            // Exponent.
            if matches!(self.peek(0), Some('e' | 'E')) {
                let sign = matches!(self.peek(1), Some('+' | '-'));
                let digit_at = if sign { 2 } else { 1 };
                if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                    float = true;
                    text.push(self.bump().expect("exponent char present"));
                    if sign {
                        text.push(self.bump().expect("sign present"));
                    }
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Suffix (u32, f64, usize, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with('f') {
            float = true;
        }
        text.push_str(&suffix);
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line, col);
    }

    fn ident_or_prefixed(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String prefixes and raw identifiers.
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "rb", Some('#')) => {
                // `r#"…"#` raw string vs `r#ident` raw identifier.
                if text == "r"
                    && self.peek(1).is_some_and(is_ident_start)
                    && self.peek(1) != Some('"')
                {
                    // Raw identifier: consume `#` + ident, emit as Ident.
                    self.bump();
                    let mut ident = String::new();
                    while let Some(c) = self.peek(0) {
                        if is_ident_continue(c) {
                            ident.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Ident, ident, line, col);
                } else {
                    self.raw_string(line, col, text);
                }
            }
            ("r" | "br" | "rb", Some('"')) => self.raw_string(line, col, text),
            ("b" | "c", Some('"')) => self.string(line, col, text),
            ("b", Some('\'')) => {
                // Byte literal b'x'.
                let mut t = text;
                t.push('\'');
                self.bump();
                while let Some(c) = self.bump() {
                    t.push(c);
                    match c {
                        '\\' => {
                            if let Some(esc) = self.bump() {
                                t.push(esc);
                            }
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push(TokenKind::Char, t, line, col);
            }
            _ => self.push(TokenKind::Ident, text, line, col),
        }
    }

    fn punct(&mut self, line: u32, col: u32) {
        const THREE: [&str; 5] = ["..=", "...", "<<=", ">>=", "=>>"];
        const TWO: [&str; 19] = [
            "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=", "-=", "*=", "/=",
            "%=", "^=", "&=", "|=", "<<",
        ];
        let take = |n: usize, lx: &Self| -> String {
            (0..n).filter_map(|k| lx.peek(k)).collect::<String>()
        };
        let three = take(3, self);
        if THREE.contains(&three.as_str()) {
            for _ in 0..3 {
                self.bump();
            }
            self.push(TokenKind::Punct, three, line, col);
            return;
        }
        let two = take(2, self);
        if TWO.contains(&two.as_str()) {
            for _ in 0..2 {
                self.bump();
            }
            self.push(TokenKind::Punct, two, line, col);
            return;
        }
        let c = self.bump().expect("punct char present");
        self.push(TokenKind::Punct, c.to_string(), line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Number of lines in `src` (at least 1, even for empty content).
pub fn line_count(src: &str) -> usize {
    src.lines().count().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]);
    }

    #[test]
    fn spans_are_one_based() {
        let out = lex("a\n  bb");
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let out = lex("x // trailing\n/* block\nstill */ y");
        let texts: Vec<&str> = out.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["x", "y"]);
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].text.contains("trailing"));
        assert_eq!(out.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* a /* b */ c */ x");
        assert_eq!(out.tokens.len(), 1);
        assert_eq!(out.tokens[0].text, "x");
    }

    #[test]
    fn strings_with_escapes_and_raw() {
        let out = lex(r##"let s = "a\"b"; let r = r#"raw "quoted""#;"##);
        let strs: Vec<&str> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].contains("a\\\"b"));
        assert!(strs[1].contains("raw"));
    }

    #[test]
    fn string_containing_comment_markers() {
        let out = lex(r#"let s = "// not a comment"; y"#);
        assert!(out.comments.is_empty());
        assert!(out.tokens.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn char_vs_lifetime() {
        let out = lex("'a' 'x: &'a str '\\n'");
        let kinds: Vec<TokenKind> = out.tokens.iter().map(|t| t.kind).collect();
        assert_eq!(kinds[0], TokenKind::Char); // 'a'
        assert_eq!(kinds[1], TokenKind::Lifetime); // 'x (label)
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert_eq!(out.tokens.last().map(|t| t.kind), Some(TokenKind::Char));
    }

    #[test]
    fn numbers_int_vs_float() {
        let toks = kinds("1 1.5 1e3 0x1F 2f64 3usize 0..10 1.max(2)");
        let find = |s: &str| toks.iter().find(|(_, t)| t == s).map(|(k, _)| *k);
        assert_eq!(find("1"), Some(TokenKind::Int));
        assert_eq!(find("1.5"), Some(TokenKind::Float));
        assert_eq!(find("1e3"), Some(TokenKind::Float));
        assert_eq!(find("0x1F"), Some(TokenKind::Int));
        assert_eq!(find("2f64"), Some(TokenKind::Float));
        assert_eq!(find("3usize"), Some(TokenKind::Int));
        // `0..10` keeps the range operator intact.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Punct && t == ".."));
        // `1.max` stays an int followed by a method call.
        assert!(toks.iter().any(|(_, t)| t == "max"));
    }

    #[test]
    fn multichar_operators() {
        let toks = kinds("a == b != c && d || e -> f :: g ..= h");
        for op in ["==", "!=", "&&", "||", "->", "::", "..="] {
            assert!(
                toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == op),
                "missing {op}"
            );
        }
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("r#fn x");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".to_string()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".to_string()));
    }

    #[test]
    fn byte_string_and_byte_char() {
        let toks = kinds(r#"b"bytes" b'x'"#);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Char);
    }

    #[test]
    fn raw_string_multi_hash_ignores_inner_quote_hash() {
        // `"#` inside an `r##`-string is body text, not a terminator.
        let out = lex(r###"let s = r##"x"#y"##; z"###);
        let s = out
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("one string");
        assert!(s.text.contains("x\"#y"));
        assert!(out.tokens.iter().any(|t| t.is_ident("z")));
    }

    #[test]
    fn raw_string_swallows_comment_markers() {
        // Comment openers inside a raw string must not start comments,
        // and a lint:allow inside one must not register as a comment.
        let out = lex(r##"let s = r#"// lint:allow(float-eq): nope /* block */"#; y"##);
        assert!(out.comments.is_empty());
        assert!(out.tokens.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn raw_string_zero_hashes_and_raw_byte_string() {
        let out = lex(r##"r"plain raw" br#"bytes "quoted""#"##);
        let strs: Vec<&str> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].contains("plain raw"));
        assert!(strs[1].contains("bytes \"quoted\""));
    }

    #[test]
    fn unterminated_raw_string_consumes_to_eof_without_panic() {
        let out = lex(r##"let s = r#"never closed"##); // missing final #
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn deeply_nested_block_comment_balances() {
        let out = lex("/* 1 /* 2 /* 3 */ 2 */ 1 */ after");
        let texts: Vec<&str> = out.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["after"]);
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("3"));
    }

    #[test]
    fn block_comment_ignores_line_comment_and_string_markers_inside() {
        // `//` and `"` inside a block comment are plain text; the
        // comment still closes at the matching `*/`.
        let out = lex("/* // \" unclosed quote */ x\ny");
        let texts: Vec<&str> = out.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["x", "y"]);
        assert_eq!(out.comments.len(), 1);
    }

    #[test]
    fn unterminated_nested_block_comment_consumes_to_eof() {
        let out = lex("/* outer /* inner */ still open\nx");
        // `x` is inside the never-closed outer comment, not a token.
        assert!(out.tokens.is_empty());
        assert_eq!(out.comments.len(), 1);
    }

    #[test]
    fn adjacent_raw_strings_and_comment_interleave() {
        // Positions after multi-line raw strings stay correct, so a
        // following lint:allow lands on the right line.
        let out = lex("let a = r#\"line1\nline2\"#;\n// lint:allow(float-eq): why\nlet b = 1.0;");
        let c = &out.comments[0];
        assert_eq!(c.line, 3);
        let b = out.tokens.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(b.line, 4);
    }
}
