//! `lock-order`: deadlock-shaped locking patterns.
//!
//! Three findings, all grounded in the pass-1 lock model (guard
//! lifetime ≈ enclosing block, see DESIGN.md §13):
//!
//! 1. **Re-acquire** — the same lock acquired again (directly or via a
//!    resolved callee) while its guard is still live. With `std` mutexes
//!    this is a guaranteed self-deadlock (or poison-panic), not a maybe.
//! 2. **Inversion** — lock `A` is taken while holding `B` somewhere,
//!    and lock `B` while holding `A` somewhere else. Each side of the
//!    inverted pair is reported, citing the opposite site.
//! 3. **Blocking while locked** — a blocking primitive (`recv`, `wait`
//!    on *another* guard, file/socket I/O, `join`) or a call to a
//!    function that transitively blocks or takes locks, made while a
//!    guard is live. `Condvar::wait(guard)` releases its own guard and
//!    is exempt for that guard.
//!
//! Lock identity is the canonical `Type::field` id from pass 1; two
//! `Mutex` fields on different instances of the same type share an id,
//! which is the conservative direction for ordering analysis.

use super::{Finding, Workspace, WorkspaceRule};
use std::collections::{BTreeMap, BTreeSet};

pub struct LockOrder;

/// Lower number = higher priority when several findings land on the
/// same (file, line, col): a re-acquire subsumes an inversion, which
/// subsumes a plain blocking-while-locked note.
const PRIO_REACQUIRE: u8 = 0;
const PRIO_REACQUIRE_VIA: u8 = 1;
const PRIO_INVERSION: u8 = 2;
const PRIO_BLOCKING: u8 = 3;
const PRIO_BLOCKING_VIA: u8 = 4;

impl WorkspaceRule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn summary(&self) -> &'static str {
        "inconsistent lock acquisition order, lock re-acquisition, or a blocking \
         call while a guard is held; establish a global lock order and shrink \
         critical sections"
    }

    fn check(&self, ws: &Workspace<'_>) -> Vec<Finding> {
        let n = ws.model.functions.len();

        // --- transitive lock sets / blocking flags ----------------
        // acq[f]    = locks f may acquire, directly or via callees
        // blocks[f] = f may block (blocking primitive or any lock
        //             acquisition counts: acquiring contended locks blocks)
        let mut acq: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        let mut blocks: Vec<bool> = vec![false; n];
        for fid in 0..n {
            for ev in &ws.model.locks[fid] {
                acq[fid].insert(ev.lock.clone());
            }
            blocks[fid] = !ws.model.blocking[fid].is_empty() || !acq[fid].is_empty();
        }
        loop {
            let mut changed = false;
            for fid in 0..n {
                for call in ws.model.resolved_calls(fid) {
                    let g = call.resolved.expect("resolved");
                    if g == fid {
                        continue;
                    }
                    if blocks[g] && !blocks[fid] {
                        blocks[fid] = true;
                        changed = true;
                    }
                    let add: Vec<String> = acq[g].difference(&acq[fid]).cloned().collect();
                    if !add.is_empty() {
                        acq[fid].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // --- per-site findings + ordered-pair evidence ------------
        // pair (a, b) = "b acquired while a held", with every witness site.
        type Site = (usize, u32, u32, Option<String>); // fid, line, col, via-callee
        let mut pairs: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
        // site key -> (priority, finding); lowest priority number wins.
        let mut sited: BTreeMap<(String, u32, u32), (u8, Finding)> = BTreeMap::new();
        let place =
            |sited: &mut BTreeMap<(String, u32, u32), (u8, Finding)>, prio: u8, f: Finding| {
                let key = (f.file.clone(), f.line, f.col);
                match sited.get(&key) {
                    Some((p, _)) if *p <= prio => {}
                    _ => {
                        sited.insert(key, (prio, f));
                    }
                }
            };

        for fid in 0..n {
            let f = &ws.model.functions[fid];
            if f.is_test {
                continue;
            }
            let ctx = &ws.contexts[f.file];
            let file = ctx.file;
            let fname = ws.model.qualified(ws.contexts, fid);
            for a in &ws.model.locks[fid] {
                if ctx.is_test_line(a.line) {
                    continue;
                }
                let held = |tok: usize| tok > a.token && tok < a.until;

                // Nested direct acquisitions.
                for b in &ws.model.locks[fid] {
                    if !held(b.token) || ctx.is_test_line(b.line) {
                        continue;
                    }
                    if b.lock == a.lock {
                        place(
                            &mut sited,
                            PRIO_REACQUIRE,
                            Finding::new(
                                self.id(),
                                file,
                                b.line,
                                b.col,
                                format!(
                                    "`{fname}` re-acquires `{}` while its guard from line {} \
                                     is still live — self-deadlock with std locks",
                                    a.lock, a.line
                                ),
                            ),
                        );
                    } else {
                        pairs
                            .entry((a.lock.clone(), b.lock.clone()))
                            .or_default()
                            .push((fid, b.line, b.col, None));
                    }
                }

                // Blocking primitives under the guard.
                for bl in &ws.model.blocking[fid] {
                    if !held(bl.token) || ctx.is_test_line(bl.line) {
                        continue;
                    }
                    // Condvar::wait(guard) atomically releases that guard.
                    if a.guard.is_some() && bl.releases == a.guard {
                        continue;
                    }
                    place(
                        &mut sited,
                        PRIO_BLOCKING,
                        Finding::new(
                            self.id(),
                            file,
                            bl.line,
                            bl.col,
                            format!(
                                "`{fname}` makes a blocking call (`{}`) while holding `{}` \
                                 (guard taken at line {}); release the guard first",
                                bl.what, a.lock, a.line
                            ),
                        ),
                    );
                }

                // Resolved calls under the guard.
                for call in ws.model.resolved_calls(fid) {
                    if !held(call.token) || ctx.is_test_line(call.line) {
                        continue;
                    }
                    let g = call.resolved.expect("resolved");
                    if g == fid {
                        continue;
                    }
                    let gname = ws.model.qualified(ws.contexts, g);
                    for l in &acq[g] {
                        if *l == a.lock {
                            place(
                                &mut sited,
                                PRIO_REACQUIRE_VIA,
                                Finding::new(
                                    self.id(),
                                    file,
                                    call.line,
                                    call.col,
                                    format!(
                                        "`{fname}` calls `{gname}`, which acquires `{}` — \
                                         already held here since line {} (self-deadlock)",
                                        a.lock, a.line
                                    ),
                                ),
                            );
                        } else {
                            pairs.entry((a.lock.clone(), l.clone())).or_default().push((
                                fid,
                                call.line,
                                call.col,
                                Some(gname.clone()),
                            ));
                        }
                    }
                    if blocks[g] {
                        place(
                            &mut sited,
                            PRIO_BLOCKING_VIA,
                            Finding::new(
                                self.id(),
                                file,
                                call.line,
                                call.col,
                                format!(
                                    "`{fname}` calls `{gname}`, which can block (locks or \
                                     blocking I/O), while holding `{}` (guard taken at \
                                     line {}); call it outside the critical section",
                                    a.lock, a.line
                                ),
                            ),
                        );
                    }
                }
            }
        }

        // --- inversions -------------------------------------------
        for ((a, b), sites) in &pairs {
            let Some(opposite) = pairs.get(&(b.clone(), a.clone())) else {
                continue;
            };
            // Cite the first opposite-order witness deterministically.
            let (ofid, oline, _ocol, _) = opposite
                .iter()
                .min_by_key(|(fid, line, col, _)| {
                    (
                        &ws.contexts[ws.model.functions[*fid].file].file.path,
                        *line,
                        *col,
                    )
                })
                .expect("non-empty witness list");
            let ofile = &ws.contexts[ws.model.functions[*ofid].file].file.path;
            let oname = ws.model.qualified(ws.contexts, *ofid);
            for (fid, line, col, via) in sites {
                let fname = ws.model.qualified(ws.contexts, *fid);
                let file = ws.contexts[ws.model.functions[*fid].file].file;
                let how = match via {
                    Some(callee) => format!("via `{callee}` "),
                    None => String::new(),
                };
                place(
                    &mut sited,
                    PRIO_INVERSION,
                    Finding::new(
                        self.id(),
                        file,
                        *line,
                        *col,
                        format!(
                            "`{fname}` acquires `{b}` {how}while holding `{a}`, but `{oname}` \
                             ({ofile}:{oline}) acquires `{a}` while holding `{b}` — \
                             lock-order inversion can deadlock"
                        ),
                    ),
                );
            }
        }

        sited.into_values().map(|(_, f)| f).collect()
    }
}
