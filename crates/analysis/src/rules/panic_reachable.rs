//! `panic-reachable`: pipeline/serve-scoped functions must not
//! *transitively* reach a panic.
//!
//! `panic-in-pipeline` catches the panic site itself; this rule walks
//! the pass-1 call graph so the *callers* of panicking wrappers are
//! caught too. A panic **source** is either a function whose doc
//! comment declares a `# Panics` section (the workspace's documented
//! panicking-wrapper contract — `medoids`, `dbscan_with_index`) or a
//! scoped lib function with an unsuppressed panic token in its body.
//! A suppressed-but-undocumented panic (e.g. the crossbeam panic
//! re-raise sites) is *not* a source: the suppression is the reviewed
//! statement that the panic cannot fire, so propagating it up the call
//! graph would re-litigate that review at every caller.
//!
//! A `lint:allow(panic-reachable)` on a call site both silences the
//! finding there and *absorbs the contract*: callers of the suppressing
//! function are no longer flagged through that edge. Resolution is
//! conservative (see DESIGN.md §13); unresolved calls propagate
//! nothing — the rule never guesses.

use super::{
    is_macro_call, is_method_call, panic_in_pipeline::SCOPED_CRATES, Finding, Workspace,
    WorkspaceRule,
};
use crate::lexer::TokenKind;
use crate::source::FileClass;

pub struct PanicReachable;

impl WorkspaceRule for PanicReachable {
    fn id(&self) -> &'static str {
        "panic-reachable"
    }

    fn summary(&self) -> &'static str {
        "pipeline/serve-scoped function transitively reaches unwrap/expect/panic! \
         or a documented-panicking wrapper; call the try_ variant or handle the error"
    }

    fn check(&self, ws: &Workspace<'_>) -> Vec<Finding> {
        let n = ws.model.functions.len();

        // --- classify panic sources -------------------------------
        let mut source_desc: Vec<Option<String>> = vec![None; n];
        for (fid, desc) in source_desc.iter_mut().enumerate() {
            let f = &ws.model.functions[fid];
            if f.is_test {
                continue;
            }
            if f.panics_doc {
                *desc = Some("documents `# Panics`".to_string());
                continue;
            }
            let file = ws.contexts[f.file].file;
            if f.body.is_some()
                && file.class == FileClass::Lib
                && SCOPED_CRATES.contains(&file.crate_name.as_str())
            {
                if let Some((line, what)) = self.first_live_panic(ws, fid) {
                    *desc = Some(format!("{what} at line {line}"));
                }
            }
        }

        // --- reverse BFS over uncut resolved edges ----------------
        let cut = |ws: &Workspace<'_>, caller: usize, line: u32| {
            let file = ws.model.functions[caller].file;
            ws.is_suppressed(file, self.id(), line)
        };
        let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for caller in 0..n {
            for call in ws.model.resolved_calls(caller) {
                if !cut(ws, caller, call.line) {
                    radj[call.resolved.expect("resolved")].push(caller);
                }
            }
        }
        let mut dist: Vec<Option<u32>> = vec![None; n];
        let mut queue: Vec<usize> = (0..n).filter(|&f| source_desc[f].is_some()).collect();
        for &s in &queue {
            dist[s] = Some(0);
        }
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            let d = dist[g].expect("queued nodes have a distance");
            for &caller in &radj[g] {
                if dist[caller].is_none() {
                    dist[caller] = Some(d + 1);
                    queue.push(caller);
                }
            }
        }

        // --- report reachable scoped functions --------------------
        let mut out = Vec::new();
        for (fid, desc) in source_desc.iter().enumerate() {
            let f = &ws.model.functions[fid];
            let file = ws.contexts[f.file].file;
            if f.is_test
                || file.class != FileClass::Lib
                || !SCOPED_CRATES.contains(&file.crate_name.as_str())
                || desc.is_some()
            {
                continue;
            }
            // Every *cut* edge into the reachable set emits — the
            // engine suppresses those findings, which marks each
            // per-edge lint:allow as used. Uncut edges collapse to one
            // live finding at the minimal site: a function is "can
            // reach a panic" once, not per path.
            let mut best_uncut: Option<(u32, String, u32, u32, usize)> = None;
            let mut cut_sites: std::collections::BTreeSet<(u32, u32, usize)> =
                std::collections::BTreeSet::new();
            for call in ws.model.resolved_calls(fid) {
                let g = call.resolved.expect("resolved");
                let Some(dg) = dist[g] else { continue };
                if cut(ws, fid, call.line) {
                    cut_sites.insert((call.line, call.col, g));
                    continue;
                }
                let key = (dg, ws.model.qualified(ws.contexts, g), call.line, call.col);
                if best_uncut
                    .as_ref()
                    .is_none_or(|b| (b.0, &b.1, b.2, b.3) > (key.0, &key.1, key.2, key.3))
                {
                    best_uncut = Some((key.0, key.1, key.2, key.3, g));
                }
            }
            let me = ws.model.qualified(ws.contexts, fid);
            let emit = |line: u32, col: u32, first: usize, out: &mut Vec<Finding>| {
                let (chain, terminal) = self.chain_from(ws, &dist, first);
                out.push(Finding::new(
                    self.id(),
                    file,
                    line,
                    col,
                    format!(
                        "`{me}` can reach a panic via `{chain}`; `{terminal_name}` {terminal}. \
                         Call a try_ variant / handle the error, or absorb the contract here \
                         with a reviewed lint:allow(panic-reachable)",
                        terminal_name = chain.rsplit(" -> ").next().unwrap_or(&chain),
                    ),
                ));
            };
            for &(line, col, g) in &cut_sites {
                emit(line, col, g, &mut out);
            }
            if let Some((_, _, line, col, first)) = best_uncut {
                emit(line, col, first, &mut out);
            }
        }
        out
    }
}

impl PanicReachable {
    /// First unsuppressed panic token in a function body, as
    /// (line, description). Mirrors `panic-in-pipeline`'s detection;
    /// a token covered by a `lint:allow(panic-in-pipeline)` (or
    /// `panic-reachable`) is a reviewed non-panic and does not count.
    fn first_live_panic(&self, ws: &Workspace<'_>, fid: usize) -> Option<(u32, String)> {
        let f = &ws.model.functions[fid];
        let (open, close) = f.body?;
        let ctx = &ws.contexts[f.file];
        let toks = &ctx.tokens;
        for i in open..=close.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            if ctx.is_test_line(t.line) {
                continue;
            }
            let what = if is_method_call(toks, i, "unwrap") || is_method_call(toks, i, "expect") {
                Some(format!("calls `.{}()`", t.text))
            } else if super::panic_in_pipeline::MACROS
                .iter()
                .any(|m| is_macro_call(toks, i, m))
            {
                Some(format!("invokes `{}!`", t.text))
            } else if t.is_punct("[")
                && i > open
                && toks[i - 1].kind == TokenKind::Ident
                && toks.get(i + 1).is_some_and(|x| x.kind == TokenKind::Int)
                && toks.get(i + 2).is_some_and(|x| x.is_punct("]"))
            {
                Some(format!(
                    "indexes `{}[{}]`",
                    toks[i - 1].text,
                    toks[i + 1].text
                ))
            } else {
                None
            };
            let Some(what) = what else { continue };
            let reviewed = ws.is_suppressed(f.file, "panic-in-pipeline", t.line)
                || ws.is_suppressed(f.file, "panic-reachable", t.line);
            if !reviewed {
                return Some((t.line, what));
            }
        }
        None
    }

    /// Deterministic shortest chain from `start` down to a source,
    /// rendered as `a -> b -> c`, plus the source's description.
    fn chain_from(
        &self,
        ws: &Workspace<'_>,
        dist: &[Option<u32>],
        start: usize,
    ) -> (String, String) {
        const MAX_HOPS: usize = 8;
        let mut names = vec![ws.model.qualified(ws.contexts, start)];
        let mut cur = start;
        let terminal;
        for _ in 0..MAX_HOPS {
            let d = dist[cur].expect("chain nodes are reachable");
            if d == 0 {
                break;
            }
            let mut next: Option<(String, u32, u32, usize)> = None;
            for call in ws.model.resolved_calls(cur) {
                let g = call.resolved.expect("resolved");
                if dist[g] != Some(d - 1)
                    || ws.is_suppressed(ws.model.functions[cur].file, self.id(), call.line)
                {
                    continue;
                }
                let key = (ws.model.qualified(ws.contexts, g), call.line, call.col);
                if next
                    .as_ref()
                    .is_none_or(|b| (&b.0, b.1, b.2) > (&key.0, key.1, key.2))
                {
                    next = Some((key.0, key.1, key.2, g));
                }
            }
            let Some((name, _, _, g)) = next else { break };
            names.push(name);
            cur = g;
        }
        if dist[cur] == Some(0) {
            // Recompute the terminal description the same way the
            // source pass did.
            let f = &ws.model.functions[cur];
            terminal = if f.panics_doc {
                "documents `# Panics`".to_string()
            } else {
                self.first_live_panic(ws, cur)
                    .map(|(line, what)| format!("{what} at line {line}"))
                    .unwrap_or_else(|| "panics".to_string())
            };
        } else {
            terminal = "reaches a panic deeper in the chain".to_string();
            names.push("…".to_string());
        }
        (names.join(" -> "), terminal)
    }
}
