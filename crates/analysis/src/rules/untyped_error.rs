//! `untyped-error`: public APIs return the PR 1 error taxonomy, not
//! stringly-typed errors.
//!
//! PR 1 gave each subsystem a typed error enum (`DistError`,
//! `HawkesError`, `ClusterError`, `AnnotateError`, `IndexError`,
//! `PipelineError`); callers match on variants to decide
//! retry-vs-degrade-vs-abort. A `Result<_, String>` or
//! `Box<dyn Error>` return erases that contract. Flags function
//! signatures whose error type is `String` or `Box<dyn …Error…>`, and
//! `map_err` closures that stringify an error (`.to_string()`) without
//! wrapping it in a taxonomy type. Lib code in all crates; binaries
//! (CLI arg parsing) and tests are exempt.

use super::{Finding, Rule};
use crate::context::FileContext;
use crate::lexer::{Token, TokenKind};
use crate::source::{FileClass, SourceFile};

pub struct UntypedError;

impl Rule for UntypedError {
    fn id(&self) -> &'static str {
        "untyped-error"
    }

    fn summary(&self) -> &'static str {
        "Result<_, String> / Box<dyn Error> escaping a public API instead of the typed taxonomy"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.class == FileClass::Lib
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<Finding> {
        let toks = &ctx.tokens;
        let mut out = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if ctx.is_test_line(t.line) {
                i += 1;
                continue;
            }
            // `-> Result<…, ERR>` with ERR == String or Box<dyn …>.
            if t.is_punct("->") && toks.get(i + 1).is_some_and(|n| n.is_ident("Result")) {
                if let Some((err_start, err_end, close)) = error_type_span(toks, i + 2) {
                    let err = &toks[err_start..err_end];
                    if is_untyped(err) {
                        out.push(Finding::new(
                            self.id(),
                            ctx.file,
                            toks[err_start].line,
                            toks[err_start].col,
                            "error type is stringly-typed; return one of the \
                             workspace error enums (DistError, HawkesError, \
                             ClusterError, AnnotateError, IndexError, \
                             PipelineError, …) so callers can match on variants"
                                .to_string(),
                        ));
                    }
                    i = close;
                    continue;
                }
            }
            // `.map_err(|e| e.to_string())` — stringifying instead of wrapping.
            if super::is_method_call(toks, i, "map_err") {
                let close = matching_paren(toks, i + 1);
                let body = &toks[i + 2..close.min(toks.len())];
                let stringifies = (0..body.len())
                    .any(|k| super::is_method_call(body, k, "to_string"))
                    || body.iter().any(|b| b.is_ident("format"));
                let wraps = body
                    .iter()
                    .any(|b| b.kind == TokenKind::Ident && b.text.ends_with("Error"));
                if stringifies && !wraps {
                    out.push(Finding::new(
                        self.id(),
                        ctx.file,
                        t.line,
                        t.col,
                        "map_err stringifies the error; wrap it in a taxonomy \
                         variant so context survives to the caller"
                            .to_string(),
                    ));
                }
                i = close.min(toks.len());
                continue;
            }
            i += 1;
        }
        out
    }
}

/// Given the index of the `<` after `Result`, return
/// `(err_start, err_end, index_after_closing_gt)` for the error type —
/// the generic argument after the last depth-1 comma. None for a bare
/// `Result` alias (single-argument aliases carry their own error type).
fn error_type_span(toks: &[Token], lt: usize) -> Option<(usize, usize, usize)> {
    if !toks.get(lt)?.is_punct("<") {
        return None;
    }
    let mut depth = 1i32;
    let mut j = lt + 1;
    let mut last_comma: Option<usize> = None;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if t.is_punct("->") {
            // `Fn(..) -> ..` inside generics; ignore.
        } else if t.is_punct(",") && depth == 1 {
            last_comma = Some(j);
        }
        j += 1;
    }
    let close = j; // one past the closing `>`
    let err_start = last_comma? + 1;
    Some((err_start, close - 1, close))
}

/// Whether a token span denotes a stringly error type.
fn is_untyped(err: &[Token]) -> bool {
    if err.len() == 1 && err[0].is_ident("String") {
        return true;
    }
    // Box<dyn Error…> / Box<dyn std::error::Error…>
    err.first().is_some_and(|t| t.is_ident("Box")) && err.iter().any(|t| t.is_ident("Error"))
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct("(") {
            depth += 1;
        } else if toks[j].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        let file = SourceFile::new("crates/core/src/x.rs", src);
        let ctx = FileContext::build(&file);
        UntypedError.check(&ctx)
    }

    #[test]
    fn flags_result_string() {
        let f = check("fn f() -> Result<(), String> { Ok(()) }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn flags_box_dyn_error() {
        let f = check("fn f() -> Result<u32, Box<dyn std::error::Error>> { Ok(1) }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn typed_errors_are_fine() {
        assert!(check("fn f() -> Result<(), PipelineError> { Ok(()) }\n").is_empty());
        assert!(
            check("fn f() -> Result<Vec<u8>, crate::error::IndexError> { Ok(vec![]) }\n")
                .is_empty()
        );
    }

    #[test]
    fn nested_generics_pick_the_right_comma() {
        // HashMap<String, u64> inside the Ok type must not confuse the
        // error-position logic.
        assert!(
            check("fn f() -> Result<HashMap<String, u64>, IndexError> { todo!() }\n").is_empty()
        );
        let f = check("fn f() -> Result<HashMap<String, u64>, String> { todo!() }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn map_err_stringify_flagged_wrap_fine() {
        let f = check("fn f() { x.map_err(|e| e.to_string())?; }\n");
        assert_eq!(f.len(), 1);
        assert!(check("fn f() { x.map_err(|e| IndexError::Io(e.to_string()))?; }\n").is_empty());
    }
}
