//! `unseeded-rng`: every RNG in the simulators is derived from the
//! config seed.
//!
//! `simweb` (synthetic web events) and `hawkes` (point-process
//! simulation) exist to make the paper's measurements reproducible; an
//! RNG seeded from entropy (`thread_rng()`, `from_entropy()`, `OsRng`,
//! `rand::random()`) silently breaks the fixed-seed contract while
//! every test still passes. The sanctioned construction path is
//! `seeded_rng(child_seed(seed, label))` threaded down from the run
//! config.

use super::{is_macro_call, is_method_call, Finding, Rule};
use crate::context::FileContext;
use crate::source::{FileClass, SourceFile};

/// Crates whose randomness must be seed-derived.
const SCOPED_CRATES: [&str; 2] = ["simweb", "hawkes"];

/// Entropy-sourced constructors.
const ENTROPY_FNS: [&str; 3] = ["thread_rng", "from_entropy", "from_os_rng"];

pub struct UnseededRng;

impl Rule for UnseededRng {
    fn id(&self) -> &'static str {
        "unseeded-rng"
    }

    fn summary(&self) -> &'static str {
        "RNG constructed from entropy instead of the config seed in simweb/hawkes"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.class == FileClass::Lib && SCOPED_CRATES.contains(&file.crate_name.as_str())
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<Finding> {
        let toks = &ctx.tokens;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if ctx.is_test_line(t.line) {
                continue;
            }
            let entropy_call = ENTROPY_FNS
                .iter()
                .any(|f| t.is_ident(f) && toks.get(i + 1).is_some_and(|n| n.is_punct("(")));
            let os_rng = t.is_ident("OsRng");
            // `rand::random()` or a bare `random()` call. A path-
            // qualified `Type::random(..)` constructor (which takes an
            // explicit seed in this workspace) is not entropy.
            let qualifier =
                (i >= 2 && toks[i - 1].is_punct("::")).then(|| toks[i - 2].text.as_str());
            let random_free = t.is_ident("random")
                && (i == 0 || !toks[i - 1].is_punct("."))
                && !is_method_call(toks, i, "random")
                && !is_macro_call(toks, i, "random")
                && matches!(qualifier, None | Some("rand"))
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct("(") || n.is_punct("::"));
            if entropy_call || os_rng || random_free {
                out.push(Finding::new(
                    self.id(),
                    ctx.file,
                    t.line,
                    t.col,
                    format!(
                        "`{}` draws entropy outside the seed tree; construct \
                         RNGs via seeded_rng(child_seed(seed, ..)) so runs \
                         replay byte-identically",
                        t.text
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        let file = SourceFile::new("crates/simweb/src/x.rs", src);
        let ctx = FileContext::build(&file);
        UnseededRng.check(&ctx)
    }

    #[test]
    fn flags_entropy_constructors() {
        assert_eq!(check("fn f() { let mut r = thread_rng(); }\n").len(), 1);
        assert_eq!(
            check("fn f() { let r = StdRng::from_entropy(); }\n").len(),
            1
        );
        assert_eq!(check("fn f() { let r = OsRng; }\n").len(), 1);
        assert_eq!(check("fn f() { let x: u64 = rand::random(); }\n").len(), 1);
    }

    #[test]
    fn seeded_construction_is_fine() {
        assert!(
            check("fn f(seed: u64) { let r = seeded_rng(child_seed(seed, \"ev\")); }\n").is_empty()
        );
        assert!(check("fn f(seed: u64) { let r = StdRng::seed_from_u64(seed); }\n").is_empty());
    }

    #[test]
    fn methods_named_random_are_fine() {
        assert!(check("fn f(m: M) { m.random(); }\n").is_empty());
    }

    #[test]
    fn seeded_constructor_named_random_is_fine() {
        assert!(
            check("fn f(seed: u64) { VariantGenome::random(t, child_seed(seed, 1), 2); }\n")
                .is_empty()
        );
    }

    #[test]
    fn out_of_scope_crates_skip() {
        let file = SourceFile::new("crates/core/src/x.rs", "");
        assert!(!UnseededRng.applies(&file));
    }
}
