//! `wallclock-outside-metrics`: wall-clock reads belong to the
//! observability layer.
//!
//! Timing is an observability concern: PR 2 routes every duration
//! through `crates/metrics` spans so that timing never leaks into
//! results (and so the fault-injection clock can be virtualized). An
//! `Instant::now()` in an algorithm crate is either dead weight or —
//! worse — a timestamp about to end up inside supposedly deterministic
//! output. Flags `Instant::now()` / `SystemTime::now()` everywhere
//! except `crates/metrics` and `crates/bench`; benches and tests are
//! exempt by class.

use super::Finding;
use super::Rule;
use crate::context::FileContext;
use crate::source::{FileClass, SourceFile};

/// Crates that own time measurement.
const EXEMPT_CRATES: [&str; 2] = ["metrics", "bench"];

pub struct WallclockOutsideMetrics;

impl Rule for WallclockOutsideMetrics {
    fn id(&self) -> &'static str {
        "wallclock-outside-metrics"
    }

    fn summary(&self) -> &'static str {
        "Instant::now/SystemTime::now outside crates/metrics and crates/bench"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        matches!(file.class, FileClass::Lib | FileClass::Bin)
            && !EXEMPT_CRATES.contains(&file.crate_name.as_str())
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<Finding> {
        let toks = &ctx.tokens;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if ctx.is_test_line(t.line) {
                continue;
            }
            let is_clock = t.is_ident("Instant") || t.is_ident("SystemTime");
            if is_clock
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                out.push(Finding::new(
                    self.id(),
                    ctx.file,
                    t.line,
                    t.col,
                    format!(
                        "{}::now() outside the metrics layer; record timing via \
                         a metrics span (crates/metrics) so results stay \
                         deterministic and clocks stay mockable",
                        t.text
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::source::SourceFile;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::new(path, src);
        let ctx = FileContext::build(&file);
        WallclockOutsideMetrics.check(&ctx)
    }

    #[test]
    fn flags_clock_reads_in_algorithm_crates() {
        let f = check(
            "crates/core/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        );
        assert_eq!(f.len(), 1);
        let f = check("crates/hawkes/src/x.rs", "fn f() { SystemTime::now(); }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn metrics_and_bench_are_exempt() {
        let file = SourceFile::new("crates/metrics/src/span.rs", "");
        assert!(!WallclockOutsideMetrics.applies(&file));
        let file = SourceFile::new("crates/bench/src/lib.rs", "");
        assert!(!WallclockOutsideMetrics.applies(&file));
        let file = SourceFile::new("crates/core/benches/b.rs", "");
        assert!(!WallclockOutsideMetrics.applies(&file));
    }

    #[test]
    fn duration_arithmetic_is_fine() {
        assert!(check(
            "crates/core/src/x.rs",
            "fn f(t: Instant) { let d = t.elapsed(); }\n"
        )
        .is_empty());
    }
}
