//! The rule registry.
//!
//! Each rule is a token-pattern check scoped to the crates where its
//! invariant is load-bearing (DESIGN.md §8 has the catalog and the
//! rationale per rule). Rules see a [`FileContext`] — tokens, comments,
//! test mask — and return [`Finding`]s; the engine applies suppressions
//! and the baseline afterwards.

mod alloc_in_hotpath;
mod float_eq;
mod lock_order;
mod nondeterministic_iteration;
mod panic_in_pipeline;
mod panic_reachable;
mod unseeded_rng;
mod untyped_error;
mod wallclock;

use crate::context::FileContext;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::suppress::Suppression;
use crate::symbols::WorkspaceModel;
use serde::{Deserialize, Serialize};

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// The rule that fired.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the fix direction.
    pub message: String,
    /// Baseline key: the trimmed source line. Stable under unrelated
    /// edits elsewhere in the file (line numbers are not part of the
    /// key), so the baseline does not churn.
    pub key: String,
}

impl Finding {
    /// Build a finding, deriving the baseline key from the source line.
    pub fn new(
        rule: &'static str,
        file: &SourceFile,
        line: u32,
        col: u32,
        message: String,
    ) -> Self {
        let mut key = file.line_text(line).to_string();
        key.truncate(160);
        Self {
            rule: rule.to_string(),
            file: file.path.clone(),
            line,
            col,
            message,
            key,
        }
    }
}

/// A workspace lint rule.
pub trait Rule: Sync + Send {
    /// Stable kebab-case id (used in `lint:allow(...)` and the baseline).
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules` and the report.
    fn summary(&self) -> &'static str;
    /// Whether the rule scans this file at all.
    fn applies(&self, file: &SourceFile) -> bool;
    /// Scan one file.
    fn check(&self, ctx: &FileContext<'_>) -> Vec<Finding>;
}

/// All six content rules, in catalog order.
pub fn builtin_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nondeterministic_iteration::NondeterministicIteration),
        Box::new(panic_in_pipeline::PanicInPipeline),
        Box::new(untyped_error::UntypedError),
        Box::new(wallclock::WallclockOutsideMetrics),
        Box::new(unseeded_rng::UnseededRng),
        Box::new(float_eq::FloatEq),
    ]
}

/// A workspace-scoped (interprocedural) rule: sees the whole pass-1
/// model — every file's tokens plus the call graph and lock model —
/// instead of one file at a time. Findings still land in concrete
/// files, so suppression and the baseline apply unchanged.
pub trait WorkspaceRule: Sync + Send {
    /// Stable kebab-case id (used in `lint:allow(...)` and the baseline).
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules` and the report.
    fn summary(&self) -> &'static str;
    /// Scan the whole workspace.
    fn check(&self, ws: &Workspace<'_>) -> Vec<Finding>;
}

/// Pass-2 view handed to [`WorkspaceRule`]s: the per-file contexts,
/// the pass-1 [`WorkspaceModel`], and each file's parsed suppressions
/// (so rules that model suppression semantics — `panic-reachable`'s
/// edge cutting — see exactly what the engine will honor).
pub struct Workspace<'a> {
    /// One context per scanned file, in workspace walk order.
    pub contexts: &'a [FileContext<'a>],
    /// The symbol table, call graph, and lock model.
    pub model: &'a WorkspaceModel,
    /// Parsed suppressions, parallel to `contexts`.
    pub suppressions: &'a [Vec<Suppression>],
}

impl Workspace<'_> {
    /// Whether a `lint:allow(rule)` with a reason covers `line` in the
    /// file at context index `file_idx` — the same predicate the engine
    /// applies when silencing findings.
    pub fn is_suppressed(&self, file_idx: usize, rule: &str, line: u32) -> bool {
        self.suppressions[file_idx]
            .iter()
            .any(|s| s.reason.is_some() && s.covers(rule, line))
    }
}

/// The three interprocedural rules, in catalog order.
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(panic_reachable::PanicReachable),
        Box::new(lock_order::LockOrder),
        Box::new(alloc_in_hotpath::AllocInHotpath),
    ]
}

/// Engine-level rule ids (suppression hygiene); valid in `lint:allow`
/// checks even though they are not content rules.
pub const ENGINE_RULE_IDS: [&str; 2] = ["invalid-suppression", "unused-suppression"];

/// Every valid rule id (content + workspace + engine).
pub fn all_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = builtin_rules().iter().map(|r| r.id()).collect();
    ids.extend(workspace_rules().iter().map(|r| r.id()));
    ids.extend(ENGINE_RULE_IDS);
    ids
}

// ----------------------------------------------------------- helpers

/// Whether token `i` is a method name in a `.name(` call.
pub(crate) fn is_method_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].is_ident(name)
        && i > 0
        && tokens[i - 1].is_punct(".")
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
}

/// Whether token `i` is a macro invocation `name!(`/`name![`/`name!{`.
pub(crate) fn is_macro_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].is_ident(name)
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
        && tokens
            .get(i + 2)
            .is_some_and(|t| t.is_punct("(") || t.is_punct("[") || t.is_punct("{"))
}

/// Index of the start of the statement containing token `i`: one past
/// the previous `;`, `{`, or `}` at the same nesting level walking
/// backwards (approximate, but line-accurate for idiomatic code).
pub(crate) fn statement_start(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        let t = &tokens[j - 1];
        if t.is_punct(")") || t.is_punct("]") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(";") || t.is_punct("{") || t.is_punct("}")) {
            return j;
        }
        j -= 1;
    }
    0
}

/// Index one past the end of the statement containing token `i`: the
/// next `;` at bracket depth 0, the opening `{` of a block (for-loop
/// bodies), the `}` closing the enclosing block (tail expressions), or
/// end of stream.
pub(crate) fn statement_end(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if depth == 0 && t.is_punct(";") {
            return j + 1;
        } else if depth == 0 && (t.is_punct("{") || t.is_punct("}")) {
            return j;
        }
        j += 1;
    }
    tokens.len()
}

/// The identifier bound by `let [mut] <name>` at the start of the
/// statement beginning at `start`, if the statement is a let-binding.
pub(crate) fn let_binding_name(tokens: &[Token], start: usize) -> Option<&str> {
    let mut j = start;
    if !tokens.get(j)?.is_ident("let") {
        return None;
    }
    j += 1;
    if tokens.get(j)?.is_ident("mut") {
        j += 1;
    }
    let t = tokens.get(j)?;
    (t.kind == TokenKind::Ident).then_some(t.text.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn registry_ids_are_unique_and_kebab() {
        let ids = all_rule_ids();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        for id in ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{id}"
            );
        }
    }

    #[test]
    fn statement_bounds() {
        let toks = lex("let a = b.iter().collect(); x.sort();").tokens;
        let iter_pos = toks.iter().position(|t| t.is_ident("iter")).unwrap();
        assert_eq!(statement_start(&toks, iter_pos), 0);
        let end = statement_end(&toks, iter_pos);
        assert!(toks[end - 1].is_punct(";"));
        assert_eq!(let_binding_name(&toks, 0), Some("a"));
    }

    #[test]
    fn method_and_macro_detection() {
        let toks = lex("a.unwrap(); panic!(\"x\"); unwrap(); b.unwrap_or(1);").tokens;
        let at = |name: &str, occurrence: usize| {
            toks.iter()
                .enumerate()
                .filter(|(_, t)| t.is_ident(name))
                .nth(occurrence)
                .map(|(i, _)| i)
                .unwrap()
        };
        assert!(is_method_call(&toks, at("unwrap", 0), "unwrap"));
        assert!(!is_method_call(&toks, at("unwrap", 1), "unwrap")); // bare call
        assert!(is_macro_call(&toks, at("panic", 0), "panic"));
        assert!(!is_method_call(&toks, at("unwrap_or", 0), "unwrap"));
    }
}
