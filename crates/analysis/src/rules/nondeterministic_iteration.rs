//! `nondeterministic-iteration`: HashMap/HashSet iteration order must
//! not reach outputs.
//!
//! The pipeline's headline invariant is byte-identical output for a
//! fixed seed, across thread counts and across run/resume. `HashMap`
//! iteration order is randomized per process, so collecting a map's
//! entries into a `Vec` without sorting bakes nondeterminism into
//! whatever consumes that `Vec` — cluster IDs, medoid picks, JSON
//! arrays. Flags `.iter()`/`.keys()`/`.values()`/`.into_iter()`/
//! `.drain()` on an identifier known to be a `HashMap`/`HashSet`
//! when the same statement `.collect()`s and no `sort` appears in the
//! statement or on the binding shortly after. Re-collecting into
//! another keyed container (`HashMap`/`HashSet`/`BTreeMap`/`BTreeSet`)
//! is fine, as is order-insensitive consumption (for-loop
//! accumulation, `.sum()`, `.len()`).

use super::{is_method_call, let_binding_name, statement_end, statement_start, Finding, Rule};
use crate::context::FileContext;
use crate::lexer::{Token, TokenKind};
use crate::source::{FileClass, SourceFile};
use std::collections::HashSet;

/// Crates whose outputs feed PipelineOutput/checkpoints.
const SCOPED_CRATES: [&str; 4] = ["core", "cluster", "annotate", "index"];

/// Iteration methods whose order is the map's internal order.
const ITER_METHODS: [&str; 6] = ["iter", "into_iter", "keys", "values", "drain", "iter_mut"];

/// How many tokens after the statement to look for a follow-up
/// `<binding>.sort…` call.
const SORT_LOOKAHEAD: usize = 48;

pub struct NondeterministicIteration;

impl Rule for NondeterministicIteration {
    fn id(&self) -> &'static str {
        "nondeterministic-iteration"
    }

    fn summary(&self) -> &'static str {
        "HashMap/HashSet iteration collected into ordered output without a sort"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.class == FileClass::Lib && SCOPED_CRATES.contains(&file.crate_name.as_str())
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<Finding> {
        let toks = &ctx.tokens;
        let hashed = hashed_idents(toks);
        let mut out = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if ctx.is_test_line(t.line) {
                continue;
            }
            let is_iter = ITER_METHODS.iter().any(|m| is_method_call(toks, i, m));
            if !is_iter {
                continue;
            }
            // Receiver must be a known hash container: `name.iter()` or
            // `name.entry_chain().iter()` — take the first ident of the
            // dotted chain walking back.
            let Some(recv) = receiver_ident(toks, i) else {
                continue;
            };
            if !hashed.contains(recv) {
                continue;
            }
            let start = statement_start(toks, i);
            let end = statement_end(toks, i);
            let stmt = &toks[start..end];
            // Only ordered materialization is a problem.
            if !(0..stmt.len()).any(|k| is_method_call(stmt, k, "collect")) {
                continue;
            }
            // Re-keying into another unordered/ordered map is fine.
            if stmt.iter().any(is_map_ident) {
                continue;
            }
            // A tail-expression collect inherits the fn's return type:
            // `fn f(..) -> BTreeMap<..> { m.iter()...collect() }`.
            if start > 0 && toks[start - 1].is_punct("{") && return_type_is_map(toks, start - 1) {
                continue;
            }
            // Sorted within the statement (`…collect(); v.sort()` is a
            // separate statement — handled by the lookahead below).
            if stmt.iter().any(is_sort_token) {
                continue;
            }
            // `let v = map.iter()…collect(); v.sort…` within a short
            // window downstream.
            if let Some(bind) = let_binding_name(toks, start) {
                let window_end = (end + SORT_LOOKAHEAD).min(toks.len());
                let mut sorted_later = false;
                let mut k = end;
                while k + 2 < window_end {
                    if toks[k].is_ident(bind)
                        && toks[k + 1].is_punct(".")
                        && is_sort_token(&toks[k + 2])
                    {
                        sorted_later = true;
                        break;
                    }
                    k += 1;
                }
                if sorted_later {
                    continue;
                }
            }
            out.push(Finding::new(
                self.id(),
                ctx.file,
                t.line,
                t.col,
                format!(
                    "`{recv}` is a HashMap/HashSet; collecting its iteration \
                     order without sorting makes downstream output depend on \
                     hasher state — sort with a deterministic key (and a \
                     tiebreak) before it escapes",
                ),
            ));
        }
        out
    }
}

/// Identifiers bound or typed as `HashMap`/`HashSet` anywhere in the
/// file: `let m: HashMap<…>`, `let m = HashMap::new()`,
/// `m: HashMap<…>` (struct fields / params), plus
/// `…::<HashMap<…>>` turbofish collects assigned via `let`.
fn hashed_idents(toks: &[Token]) -> HashSet<&str> {
    let mut out = HashSet::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over `:` / `=` / `::` / turbofish to the binding.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is_punct(":")
                || p.is_punct("=")
                || p.is_punct("::")
                || p.is_punct("<")
                || p.is_punct("(")
                || p.is_ident("mut")
                || p.is_ident("let")
            {
                j -= 1;
                continue;
            }
            break;
        }
        if j > 0 && toks[j - 1].kind == TokenKind::Ident {
            out.insert(toks[j - 1].text.as_str());
        }
    }
    out
}

/// The base identifier of the dotted receiver chain ending at the
/// method-name token `i` (`self.map.iter()` → `map`; the field nearest
/// the call is the container).
fn receiver_ident(toks: &[Token], i: usize) -> Option<&str> {
    // toks[i] is the method name, toks[i-1] is `.`.
    let prev = toks.get(i.checked_sub(2)?)?;
    (prev.kind == TokenKind::Ident).then_some(prev.text.as_str())
}

fn is_sort_token(t: &Token) -> bool {
    t.kind == TokenKind::Ident && t.text.starts_with("sort")
}

fn is_map_ident(t: &Token) -> bool {
    t.is_ident("HashMap")
        || t.is_ident("HashSet")
        || t.is_ident("BTreeMap")
        || t.is_ident("BTreeSet")
}

/// Whether the tokens between the nearest preceding `->` and the brace
/// at `brace` (a function's return type) name a keyed container.
fn return_type_is_map(toks: &[Token], brace: usize) -> bool {
    let from = brace.saturating_sub(24);
    let Some(arrow) = (from..brace).rev().find(|&j| {
        toks[j].is_punct("->")
            || toks[j].is_punct(";")
            || toks[j].is_punct("{")
            || toks[j].is_punct("}")
    }) else {
        return false;
    };
    toks[arrow].is_punct("->") && toks[arrow + 1..brace].iter().any(is_map_ident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        let file = SourceFile::new("crates/core/src/x.rs", src);
        let ctx = FileContext::build(&file);
        NondeterministicIteration.check(&ctx)
    }

    #[test]
    fn flags_unsorted_collect() {
        let f = check(
            "use std::collections::HashMap;\n\
             fn f(m: HashMap<String, u64>) -> Vec<String> {\n\
                 m.keys().cloned().collect()\n\
             }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn sorted_in_statement_is_fine() {
        // `.collect::<Vec<_>>()` then sorted via sorted-adapter ident.
        assert!(check(
            "fn f() {\n\
                 let m: std::collections::HashMap<u32, u32> = Default::default();\n\
                 let mut v: Vec<u32> = m.keys().copied().collect();\n\
                 v.sort_unstable();\n\
             }\n",
        )
        .is_empty());
    }

    #[test]
    fn recollect_into_map_is_fine() {
        assert!(check(
            "use std::collections::{HashMap, HashSet};\n\
             fn f(m: HashMap<u32, u32>) -> HashSet<u32> {\n\
                 m.keys().copied().collect::<HashSet<u32>>()\n\
             }\n",
        )
        .is_empty());
    }

    #[test]
    fn for_loop_accumulation_is_fine() {
        assert!(check(
            "fn f(m: std::collections::HashMap<u32, u32>) -> u32 {\n\
                 let mut s = 0;\n\
                 for (_, v) in m.iter() { s += v; }\n\
                 s\n\
             }\n",
        )
        .is_empty());
    }

    #[test]
    fn tail_expression_does_not_inherit_next_items_signature() {
        // The tail expression's statement ends at the fn's closing
        // brace; a following fn mentioning HashMap must not trigger
        // the re-key-into-map exemption.
        let f = check(
            "use std::collections::HashMap;\n\
             fn a(m: HashMap<u32, u32>) -> Vec<u32> {\n\
                 m.keys().copied().collect()\n\
             }\n\
             fn b(m: HashMap<u32, u32>) -> usize { m.len() }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn plain_vec_is_not_flagged() {
        assert!(
            check("fn f(v: Vec<u32>) -> Vec<u32> { v.iter().copied().collect() }\n").is_empty()
        );
    }
}
