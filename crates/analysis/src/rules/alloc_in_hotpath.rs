//! `alloc-in-hotpath`: no steady-state allocation on annotated hot paths.
//!
//! A `// lint:hotpath(<reason>)` comment on a function marks it as a
//! per-query / per-item path (the serving lookup, the MIH radius
//! queries). This rule takes the transitive closure of those roots over
//! *resolved* call edges and flags allocation-capable expressions in
//! any reached function: `Vec::new`/`with_capacity`/`from`-style
//! container constructors, `.to_string()`/`.to_owned()`/`.to_vec()`/
//! `.clone()`/`.collect()`, and the `format!`/`vec!` macros.
//! `Arc::clone`/`Rc::clone` are refcount bumps, not allocations, and
//! are exempt (they are path calls whose name is not a constructor).
//!
//! Unlike `panic-reachable` there is no edge-cutting: an allocation is
//! a property of the site, so the suppression belongs on the site
//! (`lint:allow(alloc-in-hotpath): <why this alloc is amortized>`).
//! A `lint:hotpath` with no reason is itself a finding — the reason is
//! the budget statement reviewers hold the path to.

use super::{Finding, Workspace, WorkspaceRule};
use crate::symbols::CallKind;

pub struct AllocInHotpath;

/// Methods that allocate on (nearly) every call.
const ALLOC_METHODS: [&str; 5] = ["to_string", "to_owned", "to_vec", "clone", "collect"];

/// Owning container types whose constructors allocate.
const CONTAINER_TYPES: [&str; 10] = [
    "Vec", "VecDeque", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Rc", "Arc",
];

/// Constructor names that allocate when qualified by a container type.
/// `clone` is deliberately absent: `Arc::clone`/`Rc::clone` only bump a
/// refcount.
const CTOR_NAMES: [&str; 4] = ["new", "with_capacity", "from", "from_iter"];

impl WorkspaceRule for AllocInHotpath {
    fn id(&self) -> &'static str {
        "alloc-in-hotpath"
    }

    fn summary(&self) -> &'static str {
        "allocation-capable call reachable from a lint:hotpath function; \
         preallocate, reuse scratch buffers, or hoist out of the per-item path"
    }

    fn check(&self, ws: &Workspace<'_>) -> Vec<Finding> {
        let n = ws.model.functions.len();
        let mut out = Vec::new();

        // Malformed annotations: lint:hotpath with no reason.
        for fid in 0..n {
            let f = &ws.model.functions[fid];
            if let Some(hp) = &f.hotpath {
                if hp.reason.is_none() {
                    out.push(Finding::new(
                        self.id(),
                        ws.contexts[f.file].file,
                        hp.line,
                        hp.col,
                        "malformed lint:hotpath — write `lint:hotpath(<reason>)`; the reason \
                         states the per-item budget this path is held to"
                            .to_string(),
                    ));
                }
            }
        }

        // Multi-source BFS from well-formed roots over resolved edges,
        // with parent pointers for the chain in the message.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut root_of: Vec<Option<usize>> = vec![None; n];
        let mut queue: Vec<usize> = Vec::new();
        for (fid, root) in root_of.iter_mut().enumerate() {
            let f = &ws.model.functions[fid];
            if !f.is_test && f.hotpath.as_ref().is_some_and(|h| h.reason.is_some()) {
                *root = Some(fid);
                queue.push(fid);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            for call in ws.model.resolved_calls(cur) {
                let g = call.resolved.expect("resolved");
                if root_of[g].is_none() && !ws.model.functions[g].is_test {
                    root_of[g] = root_of[cur];
                    parent[g] = Some(cur);
                    queue.push(g);
                }
            }
        }

        // Scan every reached function for allocation sites.
        for &fid in &queue {
            let root = root_of[fid].expect("queued nodes have a root");
            let f = &ws.model.functions[fid];
            let ctx = &ws.contexts[f.file];
            let file = ctx.file;
            let chain = self.chain(ws, &parent, fid);
            let reason = ws.model.functions[root]
                .hotpath
                .as_ref()
                .and_then(|h| h.reason.clone())
                .unwrap_or_default();
            let flag = |line: u32, col: u32, what: String, out: &mut Vec<Finding>| {
                if ctx.is_test_line(line) {
                    return;
                }
                out.push(Finding::new(
                    self.id(),
                    file,
                    line,
                    col,
                    format!(
                        "{what} on the hot path `{chain}` (lint:hotpath: {reason}); \
                         preallocate or reuse a scratch buffer, or suppress here with \
                         the amortization argument"
                    ),
                ));
            };
            for call in &ws.model.calls[fid] {
                match &call.kind {
                    CallKind::Method if ALLOC_METHODS.contains(&call.name.as_str()) => {
                        flag(
                            call.line,
                            call.col,
                            format!("`.{}()` allocates", call.name),
                            &mut out,
                        );
                    }
                    CallKind::Path(q)
                        if CONTAINER_TYPES.contains(&q.as_str())
                            && CTOR_NAMES.contains(&call.name.as_str()) =>
                    {
                        flag(
                            call.line,
                            call.col,
                            format!("`{q}::{}` allocates", call.name),
                            &mut out,
                        );
                    }
                    _ => {}
                }
            }
            for (mac, _tok, line, col) in &ws.model.alloc_macros[fid] {
                flag(*line, *col, format!("`{mac}!` allocates"), &mut out);
            }
        }
        out
    }
}

impl AllocInHotpath {
    /// Render `root -> ... -> fid` from the BFS parent pointers.
    fn chain(&self, ws: &Workspace<'_>, parent: &[Option<usize>], fid: usize) -> String {
        let mut ids = vec![fid];
        let mut cur = fid;
        while let Some(p) = parent[cur] {
            ids.push(p);
            cur = p;
            if ids.len() > 16 {
                break;
            }
        }
        ids.reverse();
        ids.iter()
            .map(|&id| ws.model.qualified(ws.contexts, id))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}
