//! `panic-in-pipeline`: no panicking shortcuts in pipeline-stage and
//! index hot paths.
//!
//! The PR 1 fault-tolerance work gave every stage a typed error channel
//! (`StageError` → `PipelineError`); an `unwrap()` deep inside a stage
//! bypasses that machinery and turns a recoverable degradation into a
//! process abort mid-run. Flags `.unwrap()`, `.expect(...)`,
//! `panic!`/`unreachable!`/`todo!`/`unimplemented!`, and indexing by an
//! integer literal (`xs[0]` — a hidden panic site) in the `core`,
//! `index`, and `annotate` crates. Test code, benches, examples, and
//! build scripts are exempt; deliberate panics (crossbeam panic
//! re-raise, documented panicking APIs) carry `lint:allow` with the
//! reviewed reason.

use super::{is_macro_call, is_method_call, Finding, Rule};
use crate::context::FileContext;
use crate::lexer::TokenKind;
use crate::source::{FileClass, SourceFile};

/// Crates whose lib code must stay panic-free. Shared with the
/// interprocedural `panic-reachable` rule so both scope identically.
pub(crate) const SCOPED_CRATES: [&str; 7] = [
    "core", "index", "annotate", "cluster", "serve", "stats", "hawkes",
];

/// Panicking macros. Shared with `panic-reachable`'s source detection.
pub(crate) const MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub struct PanicInPipeline;

impl Rule for PanicInPipeline {
    fn id(&self) -> &'static str {
        "panic-in-pipeline"
    }

    fn summary(&self) -> &'static str {
        "unwrap/expect/panic!/literal indexing in pipeline and index hot paths; \
         use the typed error taxonomy instead"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.class == FileClass::Lib && SCOPED_CRATES.contains(&file.crate_name.as_str())
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if ctx.is_test_line(t.line) {
                continue;
            }
            if is_method_call(toks, i, "unwrap") || is_method_call(toks, i, "expect") {
                out.push(Finding::new(
                    self.id(),
                    ctx.file,
                    t.line,
                    t.col,
                    format!(
                        ".{}() in a pipeline hot path; propagate a typed error \
                         (StageError and friends) instead of aborting the run",
                        t.text
                    ),
                ));
                continue;
            }
            for m in MACROS {
                if is_macro_call(toks, i, m) {
                    out.push(Finding::new(
                        self.id(),
                        ctx.file,
                        t.line,
                        t.col,
                        format!(
                            "{}! aborts the whole run; return an error variant or \
                             restructure so the case is unrepresentable",
                            t.text
                        ),
                    ));
                }
            }
            // `xs[0]` — indexing by integer literal on an identifier.
            if t.is_punct("[")
                && i > 0
                && toks[i - 1].kind == TokenKind::Ident
                && toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Int)
                && toks.get(i + 2).is_some_and(|n| n.is_punct("]"))
            {
                out.push(Finding::new(
                    self.id(),
                    ctx.file,
                    t.line,
                    t.col,
                    format!(
                        "indexing `{}[{}]` panics when out of bounds; use .get() \
                         or prove the length with a match",
                        toks[i - 1].text,
                        toks[i + 1].text
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::source::SourceFile;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::new(path, src);
        let ctx = FileContext::build(&file);
        PanicInPipeline.check(&ctx)
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let f = check(
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); b.expect(\"msg\"); panic!(\"boom\"); }\n",
        );
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn flags_literal_indexing() {
        let f = check("crates/index/src/x.rs", "fn f() { let x = parts[0]; }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("parts[0]"));
    }

    #[test]
    fn ignores_test_regions_and_out_of_scope_crates() {
        assert!(check(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); } }\n"
        )
        .is_empty());
        let file = SourceFile::new("crates/imaging/src/x.rs", "fn f() { a.unwrap(); }\n");
        assert!(!PanicInPipeline.applies(&file));
    }

    #[test]
    fn stats_and_hawkes_are_in_scope() {
        // The statistical kernels feed every pipeline stage and the
        // influence estimation; a NaN-provoked panic there takes down
        // the whole run, so both crates sit inside the rule's scope.
        for path in ["crates/stats/src/x.rs", "crates/hawkes/src/x.rs"] {
            let file = SourceFile::new(path, "");
            assert!(
                PanicInPipeline.applies(&file),
                "{path} must be scanned by panic-in-pipeline"
            );
        }
    }

    #[test]
    fn unwrap_or_is_fine() {
        assert!(check("crates/core/src/x.rs", "fn f() { a.unwrap_or(0); }\n").is_empty());
    }

    #[test]
    fn supervision_layer_files_are_in_scope() {
        // The supervised-execution layer (DESIGN.md §11) is panic-free
        // by contract — its entire job is containing panics, so a panic
        // of its own would be self-defeating. Pin every file of the
        // layer into this rule's scope.
        for path in [
            "crates/core/src/runner.rs",
            "crates/core/src/supervise.rs",
            "crates/core/src/quarantine.rs",
            "crates/core/src/pipeline.rs",
        ] {
            let file = SourceFile::new(path, "");
            assert!(
                PanicInPipeline.applies(&file),
                "{path} must be scanned by panic-in-pipeline"
            );
        }
        // Findings inside the layer are reported like any other.
        let f = check(
            "crates/core/src/supervise.rs",
            "fn f() { ckpt.unwrap(); }\n",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn serving_layer_files_are_in_scope() {
        // The serving layer (DESIGN.md §12) answers queries from live
        // traffic; a panic in a worker poisons the queue locks and
        // stalls every connection, so its lib code is held to the same
        // panic-free contract as the pipeline stages.
        for path in [
            "crates/serve/src/snapshot.rs",
            "crates/serve/src/store.rs",
            "crates/serve/src/batch.rs",
            "crates/serve/src/server.rs",
            "crates/serve/src/protocol.rs",
            "crates/serve/src/artifact.rs",
        ] {
            let file = SourceFile::new(path, "");
            assert!(
                PanicInPipeline.applies(&file),
                "{path} must be scanned by panic-in-pipeline"
            );
        }
        let f = check("crates/serve/src/server.rs", "fn f() { job.unwrap(); }\n");
        assert_eq!(f.len(), 1);
    }
}
