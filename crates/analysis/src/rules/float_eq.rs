//! `float-eq`: no direct `==`/`!=` on floating-point values.
//!
//! The statistical crates (`stats`, `phash`, `hawkes`) are exactly
//! where float round-off bites: an `x == 0.0` guard that holds on one
//! machine can fail after a reassociated sum on another, changing
//! KS/perceptual-hash/Hawkes results silently. Compare against an
//! explicit tolerance, or restructure so exact zero is a represented
//! state (e.g. an Option) rather than a sentinel. Findings here are
//! expected to live in the baseline until each guard is audited — some
//! sentinel comparisons *are* exact by construction, and earn a
//! `lint:allow` with the proof in the reason.

use super::{Finding, Rule};
use crate::context::FileContext;
use crate::lexer::{Token, TokenKind};
use crate::source::{FileClass, SourceFile};
use std::collections::HashSet;

/// Crates doing float-heavy numerics.
const SCOPED_CRATES: [&str; 3] = ["stats", "phash", "hawkes"];

pub struct FloatEq;

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "float-eq"
    }

    fn summary(&self) -> &'static str {
        "direct ==/!= on floating-point values in stats/phash/hawkes"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.class == FileClass::Lib && SCOPED_CRATES.contains(&file.crate_name.as_str())
    }

    fn check(&self, ctx: &FileContext<'_>) -> Vec<Finding> {
        let toks = &ctx.tokens;
        let floats = float_idents(toks);
        let mut out = Vec::new();
        for i in 0..toks.len() {
            let t = &toks[i];
            if !(t.is_punct("==") || t.is_punct("!=")) {
                continue;
            }
            if ctx.is_test_line(t.line) {
                continue;
            }
            let prev = i.checked_sub(1).map(|j| &toks[j]);
            let next = toks.get(i + 1);
            if operand_is_float(prev, &floats) || operand_is_float(next, &floats) {
                out.push(Finding::new(
                    self.id(),
                    ctx.file,
                    t.line,
                    t.col,
                    format!(
                        "`{}` on a float; compare with an explicit tolerance \
                         (or justify exactness with lint:allow and a proof)",
                        t.text
                    ),
                ));
            }
        }
        out
    }
}

/// Whether a comparison operand token is float-valued: a float literal,
/// or an identifier annotated `: f64`/`: f32` somewhere in the file.
fn operand_is_float(t: Option<&Token>, floats: &HashSet<&str>) -> bool {
    match t {
        Some(t) if t.kind == TokenKind::Float => true,
        Some(t) if t.kind == TokenKind::Ident => floats.contains(t.text.as_str()),
        _ => false,
    }
}

/// Identifiers annotated as `f64`/`f32` (`name: f64` bindings, params,
/// fields) anywhere in the file.
fn float_idents(toks: &[Token]) -> HashSet<&str> {
    let mut out = HashSet::new();
    for i in 2..toks.len() {
        if (toks[i].is_ident("f64") || toks[i].is_ident("f32"))
            && toks[i - 1].is_punct(":")
            && toks[i - 2].kind == TokenKind::Ident
        {
            out.insert(toks[i - 2].text.as_str());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::source::SourceFile;

    fn check(src: &str) -> Vec<Finding> {
        let file = SourceFile::new("crates/stats/src/x.rs", src);
        let ctx = FileContext::build(&file);
        FloatEq.check(&ctx)
    }

    #[test]
    fn flags_literal_comparisons() {
        assert_eq!(check("fn f(q: f64) -> bool { q == 0.0 }\n").len(), 1);
        assert_eq!(check("fn f(q: f64) -> bool { 1.0 != q }\n").len(), 1);
    }

    #[test]
    fn flags_annotated_float_idents() {
        assert_eq!(check("fn f(a: f64, b: f64) -> bool { a == b }\n").len(), 1);
    }

    #[test]
    fn integer_comparisons_are_fine() {
        assert!(check("fn f(n: usize) -> bool { n == 0 }\n").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(check("#[test]\nfn t() { assert!(x == 0.5); }\n").is_empty());
    }

    #[test]
    fn out_of_scope_crates_skip() {
        let file = SourceFile::new("crates/core/src/x.rs", "");
        assert!(!FloatEq.applies(&file));
    }
}
