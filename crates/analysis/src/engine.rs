//! The lint engine: walk, lex, run rules, apply suppressions, diff
//! against the baseline, build the report.

use crate::baseline::Baseline;
use crate::context::FileContext;
use crate::error::AnalysisError;
use crate::report::{FindingStatus, Report, ReportFinding, RuleSummary, Totals};
use crate::rules::{
    all_rule_ids, builtin_rules, workspace_rules, Finding, Rule, Workspace, WorkspaceRule,
};
use crate::source::{walk_workspace, SourceFile};
use crate::suppress::{parse_suppressions, Suppression};
use crate::symbols::WorkspaceModel;
use meme_metrics::Metrics;
use std::collections::BTreeMap;
use std::path::Path;

/// Result of linting a set of files (before baseline diffing).
pub struct LintRun {
    /// Findings that survived suppression, sorted by
    /// (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: u32,
}

/// The engine: the rule registry plus the scan drivers.
pub struct Engine {
    rules: Vec<Box<dyn Rule>>,
    ws_rules: Vec<Box<dyn WorkspaceRule>>,
    metrics: Metrics,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with the built-in registry and metrics disabled.
    pub fn new() -> Self {
        Self {
            rules: builtin_rules(),
            ws_rules: workspace_rules(),
            metrics: Metrics::disabled(),
        }
    }

    /// An engine that records a `lint.rule.<id>.duration` span per rule
    /// into `metrics` (used by `memes-lint --timings`).
    pub fn with_metrics(metrics: Metrics) -> Self {
        Self {
            metrics,
            ..Self::new()
        }
    }

    /// The registered per-file content rules.
    pub fn rules(&self) -> &[Box<dyn Rule>] {
        &self.rules
    }

    /// The registered workspace (interprocedural) rules.
    pub fn workspace_rules(&self) -> &[Box<dyn WorkspaceRule>] {
        &self.ws_rules
    }

    /// Lint every workspace `.rs` file under `root`.
    pub fn lint_root(&self, root: &Path) -> Result<LintRun, AnalysisError> {
        let files = walk_workspace(root)?;
        Ok(self.lint_files(&files))
    }

    /// Lint a file set as one unit: per-file rules, then the pass-1
    /// workspace model and the interprocedural rules, then `lint:allow`
    /// application per file, then one global deterministic sort.
    pub fn lint_files(&self, files: &[SourceFile]) -> LintRun {
        let ctxs: Vec<FileContext<'_>> = files.iter().map(FileContext::build).collect();
        let sups: Vec<Vec<Suppression>> = ctxs
            .iter()
            .map(|c| parse_suppressions(&c.comments))
            .collect();

        // Per-file rules, rule-outer so each rule gets one timing span
        // covering the whole file set.
        let mut raw: Vec<Vec<Finding>> = vec![Vec::new(); files.len()];
        for rule in &self.rules {
            let span = self
                .metrics
                .span(&format!("lint.rule.{}.duration", rule.id()));
            for (i, ctx) in ctxs.iter().enumerate() {
                if rule.applies(ctx.file) {
                    raw[i].extend(rule.check(ctx));
                }
            }
            span.finish();
        }

        // Pass 1 (symbols, call graph, lock model), then pass 2.
        let model = {
            let span = self.metrics.span("lint.pass.workspace-model.duration");
            let model = WorkspaceModel::build(&ctxs);
            span.finish();
            model
        };
        let ws = Workspace {
            contexts: &ctxs,
            model: &model,
            suppressions: &sups,
        };
        let index_of: BTreeMap<&str, usize> = files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.path.as_str(), i))
            .collect();
        for rule in &self.ws_rules {
            let span = self
                .metrics
                .span(&format!("lint.rule.{}.duration", rule.id()));
            for f in rule.check(&ws) {
                // Workspace rules only ever report into scanned files.
                if let Some(&i) = index_of.get(f.file.as_str()) {
                    raw[i].push(f);
                }
            }
            span.finish();
        }

        let mut findings = Vec::new();
        for (i, file) in files.iter().enumerate() {
            findings.extend(apply_suppressions(
                file,
                std::mem::take(&mut raw[i]),
                sups[i].clone(),
            ));
        }
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule))
        });
        LintRun {
            findings,
            files_scanned: files.len() as u32,
        }
    }

    /// Lint one file (tests, fixtures). Workspace rules run too, seeing
    /// a one-file workspace.
    pub fn lint_source(&self, file: &SourceFile) -> Vec<Finding> {
        self.lint_files(std::slice::from_ref(file)).findings
    }
}

/// Apply one file's `lint:allow` directives to its raw findings;
/// malformed or unused suppressions become findings themselves.
fn apply_suppressions(
    file: &SourceFile,
    raw: Vec<Finding>,
    mut sups: Vec<Suppression>,
) -> Vec<Finding> {
    let valid_ids = all_rule_ids();
    let mut out = Vec::new();

    // Suppression hygiene first: unknown rules or a missing reason
    // invalidate the directive (it suppresses nothing).
    for s in &sups {
        let unknown: Vec<&String> = s
            .rules
            .iter()
            .filter(|r| !valid_ids.contains(&r.as_str()))
            .collect();
        if s.rules.is_empty() || !unknown.is_empty() || s.reason.is_none() {
            let detail = if s.rules.is_empty() {
                "no rule ids".to_string()
            } else if !unknown.is_empty() {
                format!(
                    "unknown rule(s) {}",
                    unknown
                        .iter()
                        .map(|r| format!("`{r}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            } else {
                "missing reason — a suppression is a reviewed decision; \
                     say why the finding is acceptable"
                    .to_string()
            };
            out.push(Finding::new(
                "invalid-suppression",
                file,
                s.line,
                s.col,
                format!("malformed lint:allow: {detail}"),
            ));
        }
    }

    // Apply valid suppressions.
    for f in raw {
        let mut suppressed = false;
        for s in &mut sups {
            if s.reason.is_some() && s.covers(&f.rule, f.line) {
                s.used = true;
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            out.push(f);
        }
    }

    // A valid suppression that matched nothing is stale.
    for s in &sups {
        if s.reason.is_some()
            && !s.used
            && s.rules.iter().all(|r| valid_ids.contains(&r.as_str()))
            && !s.rules.is_empty()
        {
            out.push(Finding::new(
                "unused-suppression",
                file,
                s.line,
                s.col,
                format!(
                    "lint:allow({}) suppresses nothing here; remove it",
                    s.rules.join(", ")
                ),
            ));
        }
    }
    out
}

impl Engine {
    /// Build the full report for a run diffed against a baseline.
    pub fn build_report(&self, run: &LintRun, baseline: &Baseline) -> Report {
        let (fresh, _known) = baseline.partition(&run.findings);
        let is_fresh: Vec<bool> = {
            // partition() clones; recover per-finding status by replaying
            // the same budget logic over the sorted findings.
            let mut budget: BTreeMap<(&str, &str, &str), u32> = BTreeMap::new();
            for e in &baseline.entries {
                *budget
                    .entry((e.file.as_str(), e.rule.as_str(), e.key.as_str()))
                    .or_insert(0) += e.count;
            }
            run.findings
                .iter()
                .map(|f| {
                    match budget.get_mut(&(f.file.as_str(), f.rule.as_str(), f.key.as_str())) {
                        Some(n) if *n > 0 => {
                            *n -= 1;
                            false
                        }
                        _ => true,
                    }
                })
                .collect()
        };
        debug_assert_eq!(is_fresh.iter().filter(|&&b| b).count(), fresh.len());

        let mut per_rule: BTreeMap<&str, u32> = BTreeMap::new();
        for f in &run.findings {
            *per_rule.entry(f.rule.as_str()).or_insert(0) += 1;
        }
        let mut rules: Vec<RuleSummary> = self
            .rules
            .iter()
            .map(|r| RuleSummary {
                id: r.id().to_string(),
                summary: r.summary().to_string(),
                count: per_rule.get(r.id()).copied().unwrap_or(0),
            })
            .collect();
        for r in &self.ws_rules {
            rules.push(RuleSummary {
                id: r.id().to_string(),
                summary: r.summary().to_string(),
                count: per_rule.get(r.id()).copied().unwrap_or(0),
            });
        }
        for id in crate::rules::ENGINE_RULE_IDS {
            rules.push(RuleSummary {
                id: id.to_string(),
                summary: "suppression hygiene (engine-level)".to_string(),
                count: per_rule.get(id).copied().unwrap_or(0),
            });
        }

        let findings: Vec<ReportFinding> = run
            .findings
            .iter()
            .zip(&is_fresh)
            .map(|(f, &fresh)| {
                ReportFinding::new(
                    f,
                    if fresh {
                        FindingStatus::New
                    } else {
                        FindingStatus::Grandfathered
                    },
                )
            })
            .collect();
        let new = is_fresh.iter().filter(|&&b| b).count() as u32;
        let total = findings.len() as u32;
        Report {
            schema_version: crate::report::REPORT_SCHEMA_VERSION,
            tool: "memes-lint".to_string(),
            files_scanned: run.files_scanned,
            rules,
            findings,
            totals: Totals {
                total,
                new,
                grandfathered: total - new,
            },
            timings: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn lint_one(path: &str, src: &str) -> Vec<Finding> {
        Engine::new().lint_source(&SourceFile::new(path, src))
    }

    #[test]
    fn suppression_silences_a_finding() {
        let f = lint_one(
            "crates/core/src/x.rs",
            "fn f() {\n\
                 // lint:allow(panic-in-pipeline): documented invariant, tested above\n\
                 a.unwrap();\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn trailing_suppression_works() {
        let f = lint_one(
            "crates/core/src/x.rs",
            "fn f() { a.unwrap(); } // lint:allow(panic-in-pipeline): invariant\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn reasonless_suppression_is_invalid_and_inert() {
        let f = lint_one(
            "crates/core/src/x.rs",
            "fn f() {\n// lint:allow(panic-in-pipeline)\na.unwrap();\n}\n",
        );
        let rules: Vec<&str> = f.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"invalid-suppression"), "{rules:?}");
        assert!(rules.contains(&"panic-in-pipeline"), "{rules:?}");
    }

    #[test]
    fn unknown_rule_is_invalid() {
        let f = lint_one(
            "crates/core/src/x.rs",
            "// lint:allow(made-up-rule): whatever\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "invalid-suppression");
        assert!(f[0].message.contains("made-up-rule"));
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let f = lint_one(
            "crates/core/src/x.rs",
            "// lint:allow(panic-in-pipeline): nothing here panics\nfn f() {}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unused-suppression");
    }

    #[test]
    fn findings_are_sorted() {
        let files = [
            SourceFile::new("crates/core/src/b.rs", "fn f() { a.unwrap(); }\n"),
            SourceFile::new(
                "crates/core/src/a.rs",
                "fn f() { b.unwrap(); c.unwrap(); }\n",
            ),
        ];
        let run = Engine::new().lint_files(&files);
        let keys: Vec<(&str, u32, u32)> = run
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.line, f.col))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(run.findings[0].file, "crates/core/src/a.rs");
    }

    #[test]
    fn report_statuses_match_partition() {
        let files = [SourceFile::new(
            "crates/core/src/a.rs",
            "fn f() { a.unwrap(); }\n",
        )];
        let engine = Engine::new();
        let run = engine.lint_files(&files);
        assert_eq!(run.findings.len(), 1);

        let empty = Baseline::default();
        let report = engine.build_report(&run, &empty);
        assert_eq!(report.totals.new, 1);
        assert_eq!(report.totals.grandfathered, 0);

        let grandfathering = Baseline::from_findings(&run.findings);
        let report = engine.build_report(&run, &grandfathering);
        assert_eq!(report.totals.new, 0);
        assert_eq!(report.totals.grandfathered, 1);
        report.to_json().unwrap();
    }

    #[test]
    fn report_json_is_byte_stable_across_runs() {
        // Workspace rules iterate graph structures; any hidden
        // iteration-order dependence would churn the committed report.
        // Exercise panic-reachable (cross-file) plus a content rule.
        let files = [
            SourceFile::new(
                "crates/cluster/src/w.rs",
                "/// # Panics\n/// Panics on empty input.\npub fn medoids(x: &[u64]) -> u64 {\n\
                 // lint:allow(panic-in-pipeline): documented wrapper\n    x.first().unwrap() + 0\n}\n",
            ),
            SourceFile::new(
                "crates/core/src/a.rs",
                "pub fn stage(x: &[u64]) -> u64 { medoids(x) }\n\
                 pub fn run(x: &[u64]) -> u64 { stage(x) + a.unwrap() }\n",
            ),
        ];
        let engine = Engine::new();
        let render = || {
            let run = engine.lint_files(&files);
            let baseline = Baseline::default();
            engine.build_report(&run, &baseline).to_json().unwrap()
        };
        let first = render();
        assert!(
            first.contains("panic-reachable"),
            "fixture should trip the ws rule"
        );
        for _ in 0..3 {
            assert_eq!(first, render(), "report JSON must be byte-stable");
        }
    }
}
