//! Typed errors and the shared process-exit convention.
//!
//! [`AnalysisError`] follows the PR 1 error-taxonomy pattern
//! (`DistError`/`ClusterError`/…): one enum per subsystem, variants
//! carrying enough context to act on, `Display` + `Error` implemented,
//! never a bare `String` escaping a public API.
//!
//! [`Exit`] is the exit-code convention shared by every workspace
//! binary (`memes`, `memes-lint`): `0` success, `1` the tool ran and
//! found violations (lint findings, schema violations, failed runs),
//! `2` the tool could not do its job at all (unreadable input, bad
//! usage). CI distinguishes "the gate failed" from "the gate is
//! broken".

use std::fmt;
use std::path::Path;
use std::process::ExitCode;

/// Failures of the analysis subsystem itself (not lint findings —
/// findings are data, not errors).
#[derive(Debug)]
pub enum AnalysisError {
    /// A file or directory could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// The baseline file exists but could not be decoded, or declares
    /// an unsupported schema version.
    BaselineCorrupt {
        /// The baseline path.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A produced report failed its own schema validation — an internal
    /// invariant violation, surfaced rather than silently shipped.
    ReportInvalid {
        /// The validator's complaint.
        detail: String,
    },
}

impl AnalysisError {
    /// Wrap an I/O error with its path.
    pub fn io(path: &Path, e: std::io::Error) -> Self {
        Self::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, detail } => write!(f, "cannot access {path}: {detail}"),
            Self::BaselineCorrupt { path, detail } => {
                write!(f, "baseline {path} is corrupt: {detail}")
            }
            Self::ReportInvalid { detail } => {
                write!(f, "generated report failed schema validation: {detail}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// The workspace-wide binary exit convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// Everything ran; nothing to report.
    Clean,
    /// The tool ran correctly and is reporting violations (new lint
    /// findings, invalid metrics JSON, a failed pipeline run).
    Violations,
    /// The tool could not do its job: unreadable input, bad usage,
    /// internal invariant breakage.
    Operational,
}

impl Exit {
    /// The numeric code (`0` / `1` / `2`).
    pub fn code(self) -> u8 {
        match self {
            Exit::Clean => 0,
            Exit::Violations => 1,
            Exit::Operational => 2,
        }
    }
}

impl From<Exit> for ExitCode {
    fn from(e: Exit) -> Self {
        ExitCode::from(e.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(Exit::Clean.code(), 0);
        assert_eq!(Exit::Violations.code(), 1);
        assert_eq!(Exit::Operational.code(), 2);
    }

    #[test]
    fn errors_render_their_context() {
        let e = AnalysisError::BaselineCorrupt {
            path: "lint-baseline.json".into(),
            detail: "bad version".into(),
        };
        assert!(e.to_string().contains("lint-baseline.json"));
        assert!(e.to_string().contains("bad version"));
    }
}
