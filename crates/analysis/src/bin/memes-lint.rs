//! `memes-lint` — the workspace static-analysis gate.
//!
//! ```text
//! memes-lint [--root DIR] [--baseline FILE] [--report FILE]
//!            [--deny-new] [--fix-baseline] [--list-rules] [--timings]
//!            [--quiet]
//! memes-lint graph [--root DIR] [--out FILE]
//! ```
//!
//! The `graph` subcommand dumps the pass-1 call graph (functions,
//! resolved edges, unresolved calls) as schema-validated JSON —
//! `callgraph.json` by convention — for CI archiving and offline
//! inspection. `--timings` attaches per-rule `lint.rule.<id>.duration`
//! wall-clock spans to the report; it is opt-in so the committed
//! `lint-report.json` stays byte-stable.
//!
//! Exit codes follow the workspace convention ([`Exit`]): `0` clean,
//! `1` violations (new findings under `--deny-new`, or any findings
//! without it), `2` operational failure (unreadable root, corrupt
//! baseline, bad usage).

use meme_analysis::error::Exit;
use meme_analysis::report::RuleTiming;
use meme_analysis::{
    validate_callgraph, validate_lint_report, AnalysisError, Baseline, CallGraph, Engine,
};
use meme_metrics::Metrics;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    graph: bool,
    root: PathBuf,
    baseline: PathBuf,
    report: PathBuf,
    out: PathBuf,
    deny_new: bool,
    fix_baseline: bool,
    list_rules: bool,
    timings: bool,
    quiet: bool,
}

const USAGE: &str = "usage: memes-lint [--root DIR] [--baseline FILE] [--report FILE] \
                     [--deny-new] [--fix-baseline] [--list-rules] [--timings] [--quiet]\n\
                     \x20      memes-lint graph [--root DIR] [--out FILE]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut graph = false;
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut report: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut deny_new = false;
    let mut fix_baseline = false;
    let mut list_rules = false;
    let mut timings = false;
    let mut quiet = false;

    let mut it = argv.iter().peekable();
    if it.peek().map(|a| a.as_str()) == Some("graph") {
        graph = true;
        it.next();
    }
    while let Some(arg) = it.next() {
        match (arg.as_str(), graph) {
            ("--root", _) => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            ("--out", true) => {
                out = Some(PathBuf::from(it.next().ok_or("--out needs a path")?));
            }
            ("--baseline", false) => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            ("--report", false) => {
                report = Some(PathBuf::from(it.next().ok_or("--report needs a path")?));
            }
            ("--deny-new", false) => deny_new = true,
            ("--fix-baseline", false) => fix_baseline = true,
            ("--list-rules", false) => list_rules = true,
            ("--timings", false) => timings = true,
            ("--quiet", _) | ("-q", _) => quiet = true,
            ("--help", _) | ("-h", _) => return Err(USAGE.to_string()),
            (other, _) => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if deny_new && fix_baseline {
        return Err("--deny-new and --fix-baseline are mutually exclusive".to_string());
    }
    Ok(Args {
        graph,
        baseline: baseline.unwrap_or_else(|| root.join("lint-baseline.json")),
        report: report.unwrap_or_else(|| root.join("lint-report.json")),
        out: out.unwrap_or_else(|| root.join("callgraph.json")),
        root,
        deny_new,
        fix_baseline,
        list_rules,
        timings,
        quiet,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return Exit::Operational.into();
        }
    };
    let result = if args.graph {
        run_graph(&args)
    } else {
        run(&args)
    };
    match result {
        Ok(exit) => exit.into(),
        Err(e) => {
            eprintln!("memes-lint: {e}");
            Exit::Operational.into()
        }
    }
}

/// `memes-lint graph`: dump the pass-1 call graph.
fn run_graph(args: &Args) -> Result<Exit, AnalysisError> {
    use meme_analysis::context::FileContext;
    use meme_analysis::symbols::WorkspaceModel;

    let files = meme_analysis::walk_workspace(&args.root)?;
    let ctxs: Vec<FileContext<'_>> = files.iter().map(FileContext::build).collect();
    let model = WorkspaceModel::build(&ctxs);
    let graph = CallGraph::from_model(&model, &ctxs);
    let text = graph.to_json()?;
    validate_callgraph(&text)?;
    std::fs::write(&args.out, &text).map_err(|e| AnalysisError::io(&args.out, e))?;
    if !args.quiet {
        eprintln!(
            "memes-lint: call graph: {} function(s), {} edge(s), {} unresolved \
             (wrote {})",
            graph.totals.functions,
            graph.totals.edges,
            graph.totals.unresolved,
            args.out.display(),
        );
    }
    Ok(Exit::Clean)
}

fn run(args: &Args) -> Result<Exit, AnalysisError> {
    let metrics = if args.timings {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    };
    let engine = Engine::with_metrics(metrics.clone());

    if args.list_rules {
        for rule in engine.rules() {
            println!("{:<28} {}", rule.id(), rule.summary());
        }
        for rule in engine.workspace_rules() {
            println!("{:<28} {}", rule.id(), rule.summary());
        }
        println!(
            "{:<28} malformed/reason-less lint:allow",
            "invalid-suppression"
        );
        println!(
            "{:<28} lint:allow matching no finding",
            "unused-suppression"
        );
        return Ok(Exit::Clean);
    }

    let run = engine.lint_root(&args.root)?;

    if args.fix_baseline {
        let baseline = Baseline::from_findings(&run.findings);
        baseline.save(&args.baseline)?;
        if !args.quiet {
            eprintln!(
                "memes-lint: wrote {} with {} entr{} ({} finding{})",
                args.baseline.display(),
                baseline.entries.len(),
                if baseline.entries.len() == 1 {
                    "y"
                } else {
                    "ies"
                },
                run.findings.len(),
                if run.findings.len() == 1 { "" } else { "s" },
            );
        }
        return Ok(Exit::Clean);
    }

    let baseline = Baseline::load(&args.baseline)?;
    let mut report = engine.build_report(&run, &baseline);
    if args.timings {
        report.timings = Some(collect_timings(&metrics));
    }

    // Self-validate before writing: a malformed artifact must never
    // reach CI consumers.
    let text = report.to_json()?;
    validate_lint_report(&text)?;
    std::fs::write(&args.report, &text).map_err(|e| AnalysisError::io(&args.report, e))?;

    let (fresh, known) = baseline.partition(&run.findings);
    if !args.quiet {
        for f in &fresh {
            eprintln!(
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.rule, f.message
            );
        }
        eprintln!(
            "memes-lint: {} file(s), {} finding(s): {} new, {} grandfathered \
             (report: {})",
            run.files_scanned,
            run.findings.len(),
            fresh.len(),
            known.len(),
            args.report.display(),
        );
    }

    if args.deny_new {
        // The ratchet: only findings outside the baseline fail the gate.
        if fresh.is_empty() {
            Ok(Exit::Clean)
        } else {
            eprintln!(
                "memes-lint: {} new finding(s) not in {} — fix them or (with \
                 review) run --fix-baseline",
                fresh.len(),
                args.baseline.display(),
            );
            Ok(Exit::Violations)
        }
    } else if run.findings.is_empty() {
        Ok(Exit::Clean)
    } else {
        Ok(Exit::Violations)
    }
}

/// Export the engine's `lint.*` spans from the metrics registry.
fn collect_timings(metrics: &Metrics) -> Vec<RuleTiming> {
    let Some(registry) = metrics.registry() else {
        return Vec::new();
    };
    registry
        .snapshot()
        .spans
        .into_iter()
        .filter(|(name, _)| name.starts_with("lint."))
        .map(|(name, s)| RuleTiming {
            name,
            calls: s.calls,
            total_secs: s.total_secs,
            min_secs: s.min_secs,
            max_secs: s.max_secs,
        })
        .collect()
}
