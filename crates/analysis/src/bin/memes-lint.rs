//! `memes-lint` — the workspace static-analysis gate.
//!
//! ```text
//! memes-lint [--root DIR] [--baseline FILE] [--report FILE]
//!            [--deny-new] [--fix-baseline] [--list-rules] [--quiet]
//! ```
//!
//! Exit codes follow the workspace convention ([`Exit`]): `0` clean,
//! `1` violations (new findings under `--deny-new`, or any findings
//! without it), `2` operational failure (unreadable root, corrupt
//! baseline, bad usage).

use meme_analysis::error::Exit;
use meme_analysis::{validate_lint_report, AnalysisError, Baseline, Engine};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: PathBuf,
    report: PathBuf,
    deny_new: bool,
    fix_baseline: bool,
    list_rules: bool,
    quiet: bool,
}

const USAGE: &str = "usage: memes-lint [--root DIR] [--baseline FILE] [--report FILE] \
                     [--deny-new] [--fix-baseline] [--list-rules] [--quiet]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut report: Option<PathBuf> = None;
    let mut deny_new = false;
    let mut fix_baseline = false;
    let mut list_rules = false;
    let mut quiet = false;

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--report" => {
                report = Some(PathBuf::from(it.next().ok_or("--report needs a path")?));
            }
            "--deny-new" => deny_new = true,
            "--fix-baseline" => fix_baseline = true,
            "--list-rules" => list_rules = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if deny_new && fix_baseline {
        return Err("--deny-new and --fix-baseline are mutually exclusive".to_string());
    }
    Ok(Args {
        baseline: baseline.unwrap_or_else(|| root.join("lint-baseline.json")),
        report: report.unwrap_or_else(|| root.join("lint-report.json")),
        root,
        deny_new,
        fix_baseline,
        list_rules,
        quiet,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return Exit::Operational.into();
        }
    };
    match run(&args) {
        Ok(exit) => exit.into(),
        Err(e) => {
            eprintln!("memes-lint: {e}");
            Exit::Operational.into()
        }
    }
}

fn run(args: &Args) -> Result<Exit, AnalysisError> {
    let engine = Engine::new();

    if args.list_rules {
        for rule in engine.rules() {
            println!("{:<28} {}", rule.id(), rule.summary());
        }
        println!(
            "{:<28} malformed/reason-less lint:allow",
            "invalid-suppression"
        );
        println!(
            "{:<28} lint:allow matching no finding",
            "unused-suppression"
        );
        return Ok(Exit::Clean);
    }

    let run = engine.lint_root(&args.root)?;

    if args.fix_baseline {
        let baseline = Baseline::from_findings(&run.findings);
        baseline.save(&args.baseline)?;
        if !args.quiet {
            eprintln!(
                "memes-lint: wrote {} with {} entr{} ({} finding{})",
                args.baseline.display(),
                baseline.entries.len(),
                if baseline.entries.len() == 1 {
                    "y"
                } else {
                    "ies"
                },
                run.findings.len(),
                if run.findings.len() == 1 { "" } else { "s" },
            );
        }
        return Ok(Exit::Clean);
    }

    let baseline = Baseline::load(&args.baseline)?;
    let report = engine.build_report(&run, &baseline);

    // Self-validate before writing: a malformed artifact must never
    // reach CI consumers.
    let text = report.to_json()?;
    validate_lint_report(&text)?;
    std::fs::write(&args.report, &text).map_err(|e| AnalysisError::io(&args.report, e))?;

    let (fresh, known) = baseline.partition(&run.findings);
    if !args.quiet {
        for f in &fresh {
            eprintln!(
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.rule, f.message
            );
        }
        eprintln!(
            "memes-lint: {} file(s), {} finding(s): {} new, {} grandfathered \
             (report: {})",
            run.files_scanned,
            run.findings.len(),
            fresh.len(),
            known.len(),
            args.report.display(),
        );
    }

    if args.deny_new {
        // The ratchet: only findings outside the baseline fail the gate.
        if fresh.is_empty() {
            Ok(Exit::Clean)
        } else {
            eprintln!(
                "memes-lint: {} new finding(s) not in {} — fix them or (with \
                 review) run --fix-baseline",
                fresh.len(),
                args.baseline.display(),
            );
            Ok(Exit::Violations)
        }
    } else if run.findings.is_empty() {
        Ok(Exit::Clean)
    } else {
        Ok(Exit::Violations)
    }
}
