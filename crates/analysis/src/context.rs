//! Per-file analysis context: the token stream, a per-line test mask,
//! and the parsed `lint:allow` suppressions.

use crate::lexer::{lex, line_count, Comment, Token};
use crate::source::{FileClass, SourceFile};

/// Everything a rule gets to look at for one file.
pub struct FileContext<'a> {
    /// The file (path, crate, class, text).
    pub file: &'a SourceFile,
    /// The lexed token stream.
    pub tokens: Vec<Token>,
    /// The file's comments (suppressions live here).
    pub comments: Vec<Comment>,
    /// `line_is_test[line - 1]` — whether the 1-based line sits inside
    /// a `#[cfg(test)]` module or a `#[test]` function, or the whole
    /// file is test/bench/example code.
    pub line_is_test: Vec<bool>,
}

impl<'a> FileContext<'a> {
    /// Lex and analyze one file.
    pub fn build(file: &'a SourceFile) -> Self {
        let out = lex(&file.text);
        let n = line_count(&file.text);
        let line_is_test = if matches!(
            file.class,
            FileClass::Test | FileClass::Bench | FileClass::Example | FileClass::Build
        ) {
            vec![true; n]
        } else {
            test_line_mask(&out.tokens, n)
        };
        Self {
            file,
            tokens: out.tokens,
            comments: out.comments,
            line_is_test,
        }
    }

    /// Whether a 1-based line is test code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.line_is_test
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(false)
    }
}

/// Mark the lines covered by `#[cfg(test)]` items and `#[test]`
/// functions.
///
/// Token-level, not a full parse: an attribute that mentions `test`
/// (`#[test]`, `#[cfg(test)]`) starts a region; the region extends to
/// the matching close brace of the item's body (or its `;` for a
/// brace-less item). `#[cfg(not(test))]` is explicitly *not* a test
/// region.
fn test_line_mask(tokens: &[Token], n_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; n_lines];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Collect the attribute's tokens.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut inner: Vec<&Token> = Vec::new();
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                inner.push(&tokens[j]);
                j += 1;
            }
            if is_test_attr(&inner) {
                let start_line = tokens[i].line;
                let end_line = item_end_line(tokens, j + 1).unwrap_or(start_line);
                for line in start_line..=end_line {
                    if let Some(slot) = mask.get_mut(line as usize - 1) {
                        *slot = true;
                    }
                }
                i = j + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// `#[test]` or `#[cfg(test)]` (and `#[cfg(any(test, …))]`), but not
/// `#[cfg(not(test))]`.
fn is_test_attr(inner: &[&Token]) -> bool {
    if inner.len() == 1 && inner[0].is_ident("test") {
        return true;
    }
    if inner.first().is_some_and(|t| t.is_ident("cfg")) {
        let negated = inner.iter().any(|t| t.is_ident("not"));
        let tests = inner.iter().any(|t| t.is_ident("test"));
        return tests && !negated;
    }
    false
}

/// The last line of the item starting at token `start` (skipping any
/// further attributes): the line of the matching `}` of its first brace
/// block, or of a terminating `;` that comes first.
fn item_end_line(tokens: &[Token], mut start: usize) -> Option<u32> {
    // Skip stacked attributes.
    while tokens.get(start).is_some_and(|t| t.is_punct("#"))
        && tokens.get(start + 1).is_some_and(|t| t.is_punct("["))
    {
        let mut depth = 0usize;
        let mut j = start + 1;
        while j < tokens.len() {
            if tokens[j].is_punct("[") {
                depth += 1;
            } else if tokens[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        start = j + 1;
    }
    // Find the body's opening brace (or a `;` ending a brace-less item).
    let mut j = start;
    while j < tokens.len() {
        if tokens[j].is_punct(";") {
            return Some(tokens[j].line);
        }
        if tokens[j].is_punct("{") {
            break;
        }
        j += 1;
    }
    // Match braces to the item's end.
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct("{") {
            depth += 1;
        } else if tokens[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(tokens[j].line);
            }
        }
        j += 1;
    }
    tokens.last().map(|t| t.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn ctx_of(src: &str) -> Vec<bool> {
        let file = SourceFile::new("crates/core/src/x.rs", src);
        let out = lex(&file.text);
        test_line_mask(&out.tokens, line_count(&file.text))
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let mask = ctx_of(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn inner() { x.unwrap(); }\n\
             }\n\
             fn also_live() {}\n",
        );
        assert_eq!(mask, [false, true, true, true, true, false]);
    }

    #[test]
    fn test_fn_is_masked() {
        let mask = ctx_of(
            "fn live() {}\n\
             #[test]\n\
             fn t() {\n\
                 assert!(true);\n\
             }\n",
        );
        assert_eq!(mask, [false, true, true, true, true]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let mask = ctx_of("#[cfg(not(test))]\nfn live() {\n}\n");
        assert_eq!(mask, [false, false, false]);
    }

    #[test]
    fn stacked_attributes_extend_to_body() {
        let mask = ctx_of("#[test]\n#[ignore]\nfn t() {\n    x();\n}\n");
        assert!(mask.iter().all(|&m| m));
    }

    #[test]
    fn whole_file_classes_are_all_test() {
        let file = SourceFile::new("tests/integration.rs", "fn x() { y.unwrap(); }\n");
        let ctx = FileContext::build(&file);
        assert!(ctx.is_test_line(1));
    }
}
