//! The checked-in finding baseline and the ratchet.
//!
//! Existing findings are grandfathered into `lint-baseline.json`; the
//! gate (`--deny-new`) fails only on findings *not* in the baseline, so
//! the count can only go down. Entries are keyed by
//! `(rule, file, trimmed-line-text)` with a count — line numbers are
//! deliberately not part of the key, so unrelated edits above a
//! grandfathered line do not churn the baseline. `--fix-baseline`
//! rewrites the file from the current findings (reviewed like any other
//! diff: additions need justification, deletions are progress).

use crate::error::AnalysisError;
use crate::rules::Finding;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Schema version of `lint-baseline.json`; bump on incompatible change.
pub const BASELINE_SCHEMA_VERSION: u32 = 1;

/// One grandfathered finding class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// Trimmed source-line text of the finding.
    pub key: String,
    /// How many findings share this (rule, file, key).
    pub count: u32,
}

/// The persisted baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Baseline {
    /// Must equal [`BASELINE_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Grandfathered entries, sorted by (file, rule, key).
    pub entries: Vec<BaselineEntry>,
}

impl Default for Baseline {
    fn default() -> Self {
        Self {
            schema_version: BASELINE_SCHEMA_VERSION,
            entries: Vec::new(),
        }
    }
}

impl Baseline {
    /// Build a baseline from a finding set.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts: BTreeMap<(String, String, String), u32> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.file.clone(), f.rule.clone(), f.key.clone()))
                .or_insert(0) += 1;
        }
        let entries = counts
            .into_iter()
            .map(|((file, rule, key), count)| BaselineEntry {
                rule,
                file,
                key,
                count,
            })
            .collect();
        Self {
            schema_version: BASELINE_SCHEMA_VERSION,
            entries,
        }
    }

    /// Load from disk; a missing file is an empty baseline (first run),
    /// a present-but-undecodable file is an operational error.
    pub fn load(path: &Path) -> Result<Self, AnalysisError> {
        if !path.exists() {
            return Ok(Self::default());
        }
        let text = fs::read_to_string(path).map_err(|e| AnalysisError::io(path, e))?;
        let baseline: Baseline =
            serde_json::from_str(&text).map_err(|e| AnalysisError::BaselineCorrupt {
                path: path.display().to_string(),
                detail: e.to_string(),
            })?;
        if baseline.schema_version != BASELINE_SCHEMA_VERSION {
            return Err(AnalysisError::BaselineCorrupt {
                path: path.display().to_string(),
                detail: format!(
                    "schema_version {} (this tool reads {})",
                    baseline.schema_version, BASELINE_SCHEMA_VERSION
                ),
            });
        }
        Ok(baseline)
    }

    /// Write to disk (pretty, trailing newline, stable order).
    pub fn save(&self, path: &Path) -> Result<(), AnalysisError> {
        let mut text =
            serde_json::to_string_pretty(self).map_err(|e| AnalysisError::ReportInvalid {
                detail: e.to_string(),
            })?;
        text.push('\n');
        fs::write(path, text).map_err(|e| AnalysisError::io(path, e))
    }

    /// Split findings into (new, grandfathered). Each baseline entry
    /// absorbs up to `count` findings with its (rule, file, key); the
    /// overflow — including regressions that duplicate a grandfathered
    /// line — is new.
    pub fn partition(&self, findings: &[Finding]) -> (Vec<Finding>, Vec<Finding>) {
        let mut budget: BTreeMap<(&str, &str, &str), u32> = BTreeMap::new();
        for e in &self.entries {
            *budget
                .entry((e.file.as_str(), e.rule.as_str(), e.key.as_str()))
                .or_insert(0) += e.count;
        }
        let mut fresh = Vec::new();
        let mut known = Vec::new();
        for f in findings {
            match budget.get_mut(&(f.file.as_str(), f.rule.as_str(), f.key.as_str())) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    known.push(f.clone());
                }
                _ => fresh.push(f.clone()),
            }
        }
        (fresh, known)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, key: &str) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line: 1,
            col: 1,
            message: String::new(),
            key: key.into(),
        }
    }

    #[test]
    fn partition_absorbs_up_to_count() {
        let f1 = finding("float-eq", "a.rs", "x == 0.0");
        let b = Baseline::from_findings(std::slice::from_ref(&f1));
        // Same finding → grandfathered; a duplicate of it → new.
        let (fresh, known) = b.partition(&[f1.clone(), f1.clone()]);
        assert_eq!(known.len(), 1);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn fixed_findings_shrink_nothing_else() {
        let f1 = finding("float-eq", "a.rs", "x == 0.0");
        let f2 = finding("float-eq", "b.rs", "y != 1.0");
        let b = Baseline::from_findings(&[f1, f2.clone()]);
        // f1 got fixed; f2 is still grandfathered, nothing is new.
        let (fresh, known) = b.partition(&[f2]);
        assert!(fresh.is_empty());
        assert_eq!(known.len(), 1);
    }

    #[test]
    fn key_is_line_text_not_line_number() {
        let mut f = finding("float-eq", "a.rs", "x == 0.0");
        let b = Baseline::from_findings(&[f.clone()]);
        f.line = 99; // the line moved; the text did not
        let (fresh, known) = b.partition(&[f]);
        assert!(fresh.is_empty());
        assert_eq!(known.len(), 1);
    }

    #[test]
    fn roundtrip_and_version_gate() {
        let dir = std::env::temp_dir().join("memes-lint-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let b = Baseline::from_findings(&[finding("float-eq", "a.rs", "x == 0.0")]);
        b.save(&path).unwrap();
        let loaded = Baseline::load(&path).unwrap();
        assert_eq!(loaded.entries, b.entries);

        std::fs::write(&path, "{\"schema_version\": 999, \"entries\": []}").unwrap();
        assert!(matches!(
            Baseline::load(&path),
            Err(AnalysisError::BaselineCorrupt { .. })
        ));
        std::fs::write(&path, "not json").unwrap();
        assert!(matches!(
            Baseline::load(&path),
            Err(AnalysisError::BaselineCorrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/baseline.json")).unwrap();
        assert!(b.entries.is_empty());
    }
}
