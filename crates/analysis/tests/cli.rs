//! End-to-end tests for the `memes-lint` binary: exit codes, the
//! baseline ratchet workflow, and the written report artifact.
//!
//! Each test builds a throwaway fake workspace under the OS temp dir
//! and drives the real binary via `CARGO_BIN_EXE_memes-lint`.

use meme_analysis::validate_lint_report;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const CLEAN_LIB: &str = "pub fn add(a: u64, b: u64) -> u64 { a + b }\n";

const ONE_PANIC: &str = "pub fn first(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n";

const TWO_PANICS: &str = "pub fn first(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n\
                          pub fn second(y: Option<u64>) -> u64 {\n    y.expect(\"y\")\n}\n";

/// A scratch workspace rooted in the temp dir, removed on drop.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str, lib_source: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("memes-lint-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let src = root.join("crates/core/src");
        fs::create_dir_all(&src).expect("create scratch workspace");
        fs::write(src.join("lib.rs"), lib_source).expect("write scratch lib.rs");
        Self { root }
    }

    fn write_lib(&self, source: &str) {
        fs::write(self.root.join("crates/core/src/lib.rs"), source).expect("rewrite lib.rs");
    }

    fn lint(&self, extra: &[&str]) -> Output {
        run_lint(&self.root, extra)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn run_lint(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memes-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn memes-lint")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("memes-lint terminated by signal")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn clean_workspace_exits_zero_and_writes_valid_report() {
    let ws = Scratch::new("clean", CLEAN_LIB);
    let out = ws.lint(&[]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));

    let report = fs::read_to_string(ws.root.join("lint-report.json")).expect("report written");
    validate_lint_report(&report).expect("report validates against its schema");
}

#[test]
fn findings_without_deny_new_exit_one() {
    let ws = Scratch::new("plain-violation", ONE_PANIC);
    let out = ws.lint(&[]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("panic-in-pipeline"),
        "diagnostic names the rule: {}",
        stderr(&out)
    );
}

#[test]
fn ratchet_grandfathers_baselined_findings_and_catches_new_ones() {
    let ws = Scratch::new("ratchet", ONE_PANIC);

    // Step 1: adopt the current findings as the baseline.
    let out = ws.lint(&["--fix-baseline"]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    assert!(ws.root.join("lint-baseline.json").is_file());

    // Step 2: unchanged tree passes the gate — the finding is
    // grandfathered, not gone.
    let out = ws.lint(&["--deny-new"]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("1 grandfathered"),
        "summary counts the grandfathered finding: {}",
        stderr(&out)
    );

    // Step 3: a new violation on top of the baseline fails the gate,
    // and only the new one is printed.
    ws.write_lib(TWO_PANICS);
    let out = ws.lint(&["--deny-new"]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("expect"), "new finding is reported: {err}");
    assert!(
        !err.lines()
            .any(|l| l.contains("unwrap()") && l.contains(":2:")),
        "grandfathered finding is not re-reported: {err}"
    );

    // Step 4: fixing the new violation restores a passing gate.
    ws.write_lib(ONE_PANIC);
    let out = ws.lint(&["--deny-new"]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));

    // Step 5: ratcheting down — fix everything, refresh the baseline,
    // and the old violation can never silently return.
    ws.write_lib(CLEAN_LIB);
    let out = ws.lint(&["--fix-baseline"]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    ws.write_lib(ONE_PANIC);
    let out = ws.lint(&["--deny-new"]);
    assert_eq!(
        exit_code(&out),
        1,
        "reintroduced finding fails the tightened gate"
    );
}

#[test]
fn report_statuses_reflect_the_baseline_split() {
    let ws = Scratch::new("report-status", ONE_PANIC);
    let out = ws.lint(&["--fix-baseline"]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));

    ws.write_lib(TWO_PANICS);
    let out = ws.lint(&["--deny-new"]);
    assert_eq!(exit_code(&out), 1);

    let report = fs::read_to_string(ws.root.join("lint-report.json")).expect("report written");
    validate_lint_report(&report).expect("report validates");
    assert!(
        report.contains("\"grandfathered\""),
        "old finding keeps its status"
    );
    assert!(report.contains("\"new\""), "new finding is marked new");
}

#[test]
fn corrupt_baseline_is_operational_failure() {
    let ws = Scratch::new("corrupt-baseline", ONE_PANIC);
    fs::write(ws.root.join("lint-baseline.json"), "not json at all").expect("write junk");
    let out = ws.lint(&["--deny-new"]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
}

#[test]
fn unreadable_root_is_operational_failure() {
    let missing =
        std::env::temp_dir().join(format!("memes-lint-no-such-root-{}", std::process::id()));
    let out = run_lint(&missing, &[]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
}

#[test]
fn bad_usage_is_operational_failure() {
    let ws = Scratch::new("bad-usage", CLEAN_LIB);
    assert_eq!(exit_code(&ws.lint(&["--no-such-flag"])), 2);
    assert_eq!(exit_code(&ws.lint(&["--deny-new", "--fix-baseline"])), 2);
}

#[test]
fn list_rules_names_every_rule() {
    let ws = Scratch::new("list-rules", CLEAN_LIB);
    let out = ws.lint(&["--list-rules"]);
    assert_eq!(exit_code(&out), 0);
    let listing = String::from_utf8_lossy(&out.stdout).into_owned();
    for id in meme_analysis::all_rule_ids() {
        assert!(listing.contains(id), "`{id}` missing from --list-rules");
    }
}
