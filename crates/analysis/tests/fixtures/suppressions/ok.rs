// Fixture: well-formed suppressions that each cover a real finding.
// Linted as `crates/core/src/fixture.rs`; must produce zero findings.

pub fn standalone_form(x: Option<u64>) -> u64 {
    // lint:allow(panic-in-pipeline): invariant established by the caller, tested in unit tests
    x.unwrap()
}

pub fn trailing_form(parts: &[u64; 2]) -> u64 {
    parts[1] // lint:allow(panic-in-pipeline): fixed-size array, index in range by construction
}

// lint:allow(panic-in-pipeline, untyped-error): fixture exercising multi-rule directives
pub fn multi_rule(x: Option<u64>) -> Result<u64, String> { Ok(x.unwrap()) }
