// Fixture: suppression hygiene violations. Linted as
// `crates/core/src/fixture.rs`.

pub fn reasonless(x: Option<u64>) -> u64 {
    // lint:allow(panic-in-pipeline) //~ invalid-suppression @ 5
    x.unwrap() //~ panic-in-pipeline
}

pub fn unknown_rule(y: Option<u64>) -> u64 {
    // lint:allow(no-such-rule): typo in the rule id //~ invalid-suppression @ 5
    y.unwrap_or(0)
}

// lint:allow(float-eq): nothing in this file compares floats //~ unused-suppression @ 1
pub fn stale_directive() {}
