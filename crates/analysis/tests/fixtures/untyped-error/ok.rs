// Fixture: the typed-error taxonomy in use. Linted as
// `crates/core/src/fixture.rs`; must produce zero findings.

pub fn typed_error() -> Result<(), PipelineError> {
    Ok(())
}

pub fn qualified_typed_error(x: u64) -> Result<u64, crate::error::IndexError> {
    Ok(x)
}

pub fn nested_generics(m: &Data) -> Result<HashMap<String, u64>, ClusterError> {
    m.summarize()
}

pub fn wrapped_map_err(path: &str) -> Result<String, PipelineError> {
    std::fs::read_to_string(path)
        .map_err(|e| PipelineError::CheckpointIo(format!("read {path}: {e}")))
}

pub fn ok_type_may_be_string(x: u64) -> Result<String, AnnotateError> {
    Ok(x.to_string())
}
