// Fixture: stringly-typed errors escaping public APIs. Linted as
// `crates/core/src/fixture.rs`.

pub fn string_error() -> Result<(), String> { //~ untyped-error @ 37
    Ok(())
}

pub fn boxed_dyn_error() -> Result<u64, Box<dyn std::error::Error>> { //~ untyped-error
    Ok(1)
}

pub fn nested_ok_type(x: u64) -> Result<Vec<(u64, String)>, String> { //~ untyped-error
    Ok(vec![(x, String::new())])
}

pub fn stringified_map_err(path: &str) -> Result<u64, PipelineError> {
    std::fs::read_to_string(path)
        .map_err(|e| e.to_string()) //~ untyped-error @ 10
        .and_then(parse)
}
