// Fixture: the sanctioned seed-derived construction path. Linted as
// `crates/simweb/src/fixture.rs`; must produce zero findings.

pub fn from_config_seed(seed: u64) -> StdRng {
    seeded_rng(child_seed(seed, 0x5EED))
}

pub fn explicit_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub fn seeded_constructor_named_random(seed: u64) -> VariantGenome {
    VariantGenome::random(template(), child_seed(seed, 1), 2)
}

pub fn method_named_random(sampler: &Sampler) -> f64 {
    sampler.random()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_entropy() {
        let _rng = thread_rng();
    }
}
