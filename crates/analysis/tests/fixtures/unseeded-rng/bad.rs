// Fixture: entropy-sourced randomness in the simulators. Linted as
// `crates/simweb/src/fixture.rs`.

pub fn thread_local_rng() -> u64 {
    let mut rng = thread_rng(); //~ unseeded-rng @ 19
    rng.next_u64()
}

pub fn entropy_seeded() -> StdRng {
    StdRng::from_entropy() //~ unseeded-rng
}

pub fn os_rng_direct() -> u64 {
    let mut rng = OsRng; //~ unseeded-rng @ 19
    rng.next_u64()
}

pub fn free_random() -> f64 {
    rand::random() //~ unseeded-rng
}
