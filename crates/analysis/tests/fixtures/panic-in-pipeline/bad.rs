// Fixture: panicking shortcuts in pipeline hot paths. Linted as
// `crates/core/src/fixture.rs`.

pub fn unwrap_in_hot_path(x: Option<u64>) -> u64 {
    x.unwrap() //~ panic-in-pipeline @ 7
}

pub fn expect_in_hot_path(x: Option<u64>) -> u64 {
    x.expect("should be there") //~ panic-in-pipeline
}

pub fn panic_macro(cond: bool) {
    if cond {
        panic!("boom"); //~ panic-in-pipeline @ 9
    }
}

pub fn unreachable_macro(n: u32) -> u32 {
    match n {
        0 => 1,
        _ => unreachable!("callers pass zero"), //~ panic-in-pipeline
    }
}

pub fn todo_macro() {
    todo!() //~ panic-in-pipeline
}

pub fn literal_index(parts: &[u64]) -> u64 {
    parts[0] //~ panic-in-pipeline @ 10
}
