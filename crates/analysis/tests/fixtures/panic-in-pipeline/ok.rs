// Fixture: panic-free equivalents and legitimately exempt positions.
// Linted as `crates/core/src/fixture.rs`; must produce zero findings.

pub fn propagated(x: Option<u64>) -> Result<u64, StageError> {
    x.ok_or(StageError::MissingInput)
}

pub fn defaulted(x: Option<u64>) -> u64 {
    x.unwrap_or(0)
}

pub fn checked_index(parts: &[u64]) -> Option<u64> {
    parts.get(0).copied()
}

pub fn variable_index(parts: &[u64], i: usize) -> u64 {
    // Indexing by a computed expression is the caller's proof burden,
    // not a literal-index pattern; the rule leaves it alone.
    parts[i % parts.len()]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let x: Option<u64> = Some(3);
        assert_eq!(x.unwrap(), 3);
    }
}
