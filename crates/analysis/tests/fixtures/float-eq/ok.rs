// Fixture: float comparisons done safely. Linted as
// `crates/stats/src/fixture.rs`; must produce zero findings.

pub fn tolerance_compare(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

pub fn ordering_is_fine(a: f64, b: f64) -> bool {
    a < b || a >= b
}

pub fn integers_compare_exactly(n: usize, m: usize) -> bool {
    n == m
}

pub fn sentinel_via_option(x: Option<f64>) -> bool {
    x.is_none()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_assertions_allowed_in_tests() {
        let x: f64 = 0.5;
        assert!(x == 0.5);
    }
}
