// Fixture: direct float equality in numeric code. Linted as
// `crates/stats/src/fixture.rs`.

pub fn literal_compare(q: f64) -> bool {
    q == 0.0 //~ float-eq @ 7
}

pub fn literal_on_left(q: f64) -> bool {
    1.0 != q //~ float-eq @ 9
}

pub fn annotated_operands(a: f64, b: f64) -> bool {
    a == b //~ float-eq
}

pub fn expression_against_zero(x: f64, y: f64) -> bool {
    x + y == 0.0 //~ float-eq
}
