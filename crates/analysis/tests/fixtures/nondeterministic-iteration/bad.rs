// Fixture: HashMap/HashSet iteration order escaping into ordered
// collections. Linted as `crates/core/src/fixture.rs`.
use std::collections::{HashMap, HashSet};

pub fn keys_without_sort(m: HashMap<String, u64>) -> Vec<String> {
    m.keys().cloned().collect() //~ nondeterministic-iteration @ 7
}

pub fn values_without_sort(m: HashMap<String, u64>) -> Vec<u64> {
    m.values().copied().collect() //~ nondeterministic-iteration
}

pub fn set_iter_without_sort(s: HashSet<u64>) -> Vec<u64> {
    s.iter().copied().collect() //~ nondeterministic-iteration
}

pub fn drain_without_sort(mut m: HashMap<u64, u64>) -> Vec<(u64, u64)> {
    m.drain().collect() //~ nondeterministic-iteration
}

pub fn bound_then_never_sorted(m: HashMap<u64, u64>) -> Vec<u64> {
    let v: Vec<u64> = m.keys().copied().collect(); //~ nondeterministic-iteration
    v
}
