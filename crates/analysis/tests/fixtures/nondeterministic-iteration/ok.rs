// Fixture: the sanctioned ways to consume HashMap/HashSet contents.
// Linted as `crates/core/src/fixture.rs`; must produce zero findings.
use std::collections::{BTreeMap, HashMap, HashSet};

pub fn sorted_after_collect(m: HashMap<String, u64>) -> Vec<String> {
    let mut v: Vec<String> = m.keys().cloned().collect();
    v.sort();
    v
}

pub fn sorted_unstable_after_collect(m: HashMap<u64, u64>) -> Vec<u64> {
    let mut v: Vec<u64> = m.values().copied().collect();
    v.sort_unstable();
    v
}

pub fn recollected_into_map(m: HashMap<u64, u64>) -> HashSet<u64> {
    m.keys().copied().collect::<HashSet<u64>>()
}

pub fn recollected_into_btree(m: HashMap<String, u64>) -> BTreeMap<String, u64> {
    m.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

pub fn order_insensitive_fold(m: HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in m.iter() {
        total += v;
    }
    total
}

pub fn plain_vec_collect(v: Vec<u64>) -> Vec<u64> {
    v.iter().copied().collect()
}
