//! Multi-file fixture, caller side: functions reaching the panicking
//! wrappers in `cluster.rs` across the crate boundary.

/// Direct caller of a documented panicking wrapper: flagged.
pub fn cluster_stage(neighbors: &[Vec<usize>]) -> Vec<isize> {
    dbscan_with_index(neighbors, 4) //~ panic-reachable @ 5
}

/// Transitive caller: flagged one hop up as well, with the chain
/// rendered through `cluster_stage`.
pub fn run_all(neighbors: &[Vec<usize>]) -> usize {
    cluster_stage(neighbors).len() //~ panic-reachable @ 5
}

/// Reviewed absorption: the lint:allow both silences the finding here
/// and cuts the edge, so `audited_entry` below stays clean.
pub fn audited_stage(labels: &[usize]) -> Vec<usize> {
    // lint:allow(panic-reachable): labels come straight from dbscan, so every cluster has members
    medoids(labels)
}

/// Caller of the absorbing function: clean.
pub fn audited_entry(labels: &[usize]) -> usize {
    audited_stage(labels).len()
}

/// Unresolved call: the helper is defined nowhere in the workspace
/// model, so the rule must not guess — clean.
pub fn mystery_stage(labels: &[usize]) -> usize {
    helper_from_elsewhere(labels)
}

/// An unsuppressed unwrap makes this function a panic *source*:
/// `panic-in-pipeline` owns the site itself, `panic-reachable` flags
/// only the callers.
pub fn shaky_parse(raw: &str) -> usize {
    raw.parse().unwrap() //~ panic-in-pipeline @ 17
}

/// Caller of an undocumented source: flagged.
pub fn shaky_entry(raw: &str) -> usize {
    shaky_parse(raw) //~ panic-reachable @ 5
}
