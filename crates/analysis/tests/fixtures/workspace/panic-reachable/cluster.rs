//! Multi-file fixture, callee side: documented panicking wrappers in
//! the shape of the workspace's `medoids` / `dbscan_with_index`.
//! Sources themselves are `panic-in-pipeline`'s business — this file
//! must produce no findings of its own.

/// Positions of cluster medoids.
///
/// # Panics
/// Panics when a cluster id has no members; [`try_medoids`] returns
/// `None` instead.
pub fn medoids(labels: &[usize]) -> Vec<usize> {
    // lint:allow(panic-in-pipeline): documented panicking convenience over try_medoids
    try_medoids(labels).unwrap()
}

/// Fallible medoid selection.
pub fn try_medoids(labels: &[usize]) -> Option<Vec<usize>> {
    if labels.is_empty() {
        return None;
    }
    Some(labels.to_vec())
}

/// Index-backed DBSCAN.
///
/// # Panics
/// Panics when `min_pts == 0`; [`try_dbscan`] returns `None` instead.
pub fn dbscan_with_index(neighbors: &[Vec<usize>], min_pts: usize) -> Vec<isize> {
    // lint:allow(panic-in-pipeline): documented panicking convenience over try_dbscan
    try_dbscan(neighbors, min_pts).unwrap()
}

/// Fallible DBSCAN.
pub fn try_dbscan(neighbors: &[Vec<usize>], min_pts: usize) -> Option<Vec<isize>> {
    if min_pts == 0 {
        return None;
    }
    Some(vec![0; neighbors.len()])
}
