//! Multi-file fixture: deadlock-shaped locking. Covers the inversion
//! pair, same-lock re-acquisition, blocking primitives under a guard,
//! a lock-taking callee invoked while locked (cross-file, see
//! `store.rs`), and the condvar-wait exemption.

use std::sync::mpsc::Receiver;
use std::sync::{Condvar, Mutex};

pub struct Queue {
    mu: Mutex<Vec<u64>>,
    aux: Mutex<u64>,
    cv: Condvar,
}

impl Queue {
    /// Takes `mu` then `aux`: one half of the inversion pair.
    pub fn push_counted(&self, v: u64) {
        // lint:allow(panic-in-pipeline): fixture mutex is never poisoned
        let mut g = self.mu.lock().unwrap();
        // lint:allow(panic-in-pipeline): fixture mutex is never poisoned
        let mut c = self.aux.lock().unwrap(); //~ lock-order
        g.push(v);
        *c += 1;
    }

    /// Takes `aux` then `mu`: the opposite order — both sides of the
    /// inverted pair are flagged, each citing the other.
    pub fn drain_counted(&self) -> u64 {
        // lint:allow(panic-in-pipeline): fixture mutex is never poisoned
        let mut c = self.aux.lock().unwrap();
        // lint:allow(panic-in-pipeline): fixture mutex is never poisoned
        let mut g = self.mu.lock().unwrap(); //~ lock-order
        let n = g.len() as u64;
        g.clear();
        *c -= n;
        n
    }

    /// Re-acquires the lock its own guard still holds: guaranteed
    /// self-deadlock with std mutexes.
    pub fn double_lock(&self) -> usize {
        // lint:allow(panic-in-pipeline): fixture mutex is never poisoned
        let a = self.mu.lock().unwrap();
        // lint:allow(panic-in-pipeline): fixture mutex is never poisoned
        let b = self.mu.lock().unwrap(); //~ lock-order
        a.len() + b.len()
    }

    /// Blocks on a channel while holding the guard.
    pub fn drain_blocking(&self, rx: &Receiver<u64>) -> u64 {
        // lint:allow(panic-in-pipeline): fixture mutex is never poisoned
        let g = self.mu.lock().unwrap();
        let v = rx.recv().unwrap_or(0); //~ lock-order
        v + g.len() as u64
    }

    /// Calls a function that takes another lock while `mu` is held —
    /// the callee lives in `store.rs`.
    pub fn reload_under_lock(&self, store: &Store) -> u64 {
        // lint:allow(panic-in-pipeline): fixture mutex is never poisoned
        let g = self.mu.lock().unwrap();
        let v = store.load_snapshot(); //~ lock-order
        drop(g);
        v
    }

    /// `Condvar::wait(guard)` atomically releases its own guard: clean.
    pub fn wait_for_item(&self) -> u64 {
        // lint:allow(panic-in-pipeline): fixture mutex is never poisoned
        let mut g = self.mu.lock().unwrap();
        while g.is_empty() {
            // lint:allow(panic-in-pipeline): fixture mutex is never poisoned
            g = self.cv.wait(g).unwrap();
        }
        g.first().copied().unwrap_or(0)
    }
}
