//! Multi-file fixture: the lock-taking callee. `Queue::reload_under_lock`
//! calls [`Store::load_snapshot`] while holding `Queue::mu`; the
//! transitive acquisition of `Store::inner` is what makes that call
//! site a blocking-while-locked finding. This file itself is clean.

use std::sync::Mutex;

pub struct Store {
    inner: Mutex<u64>,
}

impl Store {
    /// Acquires `Store::inner` for the duration of the read.
    pub fn load_snapshot(&self) -> u64 {
        // lint:allow(panic-in-pipeline): fixture mutex is never poisoned
        *self.inner.lock().unwrap()
    }
}
