//! Multi-file fixture: hot-path allocation discipline, index side.
//! Covers a direct allocation in an annotated root, an allocation in a
//! transitively reached helper, a reviewed (suppressed) amortized
//! allocation, a malformed reason-less annotation, and a helper that
//! is only hot through the cross-file root in `serve.rs`.

pub struct Flat {
    hashes: Vec<u64>,
}

impl Flat {
    /// Radius query into a caller buffer — the workspace hot-path shape.
    // lint:hotpath(per-query scan; scratch is caller-provided)
    pub fn radius_query_into(&self, q: u64, out: &mut Vec<usize>) {
        out.clear();
        let label = format!("{q:x}"); //~ alloc-in-hotpath
        for (i, h) in self.hashes.iter().enumerate() {
            if distance_label(*h, &label) == 0 {
                out.push(i);
            }
        }
    }
}

/// Helper reached from the hot path: its allocations count too.
pub fn distance_label(h: u64, label: &str) -> u32 {
    let owned = label.to_string(); //~ alloc-in-hotpath
    (h ^ owned.len() as u64).count_ones()
}

/// Amortized allocation, reviewed and suppressed at the site.
// lint:hotpath(startup-amortized warm cache)
pub fn warm_cache(n: usize) -> Vec<u64> {
    // lint:allow(alloc-in-hotpath): one-time warm-up fill, amortized across the query stream
    vec![0; n]
}

/// Malformed annotation: the reason is the per-item budget statement,
/// so omitting it is itself a finding at the annotation site.
// lint:hotpath() //~ alloc-in-hotpath
pub fn unbudgeted(xs: &[u64]) -> u64 {
    xs.iter().sum()
}

/// Only hot through `serve.rs`'s `lookup` root — the finding's chain
/// crosses the crate boundary.
pub fn flat_scan(q: u64, hashes: &[u64]) -> Vec<usize> {
    let hits: Vec<usize> = hashes
        .iter()
        .enumerate()
        .filter(|(_, h)| **h == q)
        .map(|(i, _)| i)
        .collect(); //~ alloc-in-hotpath
    hits
}
