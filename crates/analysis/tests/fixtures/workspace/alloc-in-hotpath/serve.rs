//! Multi-file fixture: hot-path allocation discipline, serving side.
//! The `lookup` root reaches `flat_scan` in `index.rs`, so that
//! helper's allocation is flagged with a cross-crate chain.

/// Steady-state serving lookup: per-query path.
// lint:hotpath(steady-state lookup)
pub fn lookup(q: u64, hashes: &[u64]) -> Option<usize> {
    let mut out = Vec::new(); //~ alloc-in-hotpath
    out.extend(flat_scan(q, hashes));
    out.first().copied()
}
