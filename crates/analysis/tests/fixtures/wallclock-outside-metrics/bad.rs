// Fixture: wall-clock reads in algorithm code. Linted as
// `crates/core/src/fixture.rs`.
use std::time::{Instant, SystemTime};

pub fn timed_stage() -> f64 {
    let start = Instant::now(); //~ wallclock-outside-metrics @ 17
    let out = heavy_work();
    let _ = out;
    start.elapsed().as_secs_f64()
}

pub fn stamped_output() -> u64 {
    let now = SystemTime::now(); //~ wallclock-outside-metrics
    to_unix(now)
}

pub fn fully_qualified() -> std::time::Instant {
    std::time::Instant::now() //~ wallclock-outside-metrics @ 16
}
