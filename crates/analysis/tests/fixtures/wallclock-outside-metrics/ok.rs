// Fixture: time handled the sanctioned ways. Linted as
// `crates/core/src/fixture.rs`; must produce zero findings.
use std::time::{Duration, Instant};

pub fn duration_arithmetic(started: Instant) -> Duration {
    started.elapsed()
}

pub fn span_based_timing(metrics: &Metrics) {
    let span = metrics.span("stage");
    heavy_work();
    span.finish();
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_read_the_clock() {
        let _t = Instant::now();
    }
}
