//! Drives the fixture corpus under `tests/fixtures/`.
//!
//! Each rule directory holds `ok.rs` (known-good idioms — must lint
//! clean) and `bad.rs` (known violations). Expected findings in
//! `bad.rs` are declared inline with `//~ <rule>` markers on the
//! offending line; `//~ <rule> @ <col>` additionally pins the exact
//! 1-based column, so diagnostic spans are locked down, not just
//! counts. Fixtures are lexed-only data files — the workspace walker
//! skips `fixtures` directories, and cargo never compiles them.

use meme_analysis::{Engine, SourceFile};
use std::fs;
use std::path::{Path, PathBuf};

/// (fixture directory, synthetic workspace path) — the path places the
/// fixture inside a crate the rule under test is scoped to.
const FIXTURES: [(&str, &str); 7] = [
    ("nondeterministic-iteration", "crates/core/src/fixture.rs"),
    ("panic-in-pipeline", "crates/core/src/fixture.rs"),
    ("untyped-error", "crates/core/src/fixture.rs"),
    ("wallclock-outside-metrics", "crates/core/src/fixture.rs"),
    ("unseeded-rng", "crates/simweb/src/fixture.rs"),
    ("float-eq", "crates/stats/src/fixture.rs"),
    ("suppressions", "crates/core/src/fixture.rs"),
];

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// One `//~` marker: the expected rule, line, and (optionally) column.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Expected {
    line: u32,
    rule: String,
    col: Option<u32>,
}

fn parse_markers(text: &str) -> Vec<Expected> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        let spec = line[pos + 3..].trim();
        let (rule, col) = match spec.split_once('@') {
            Some((r, c)) => (
                r.trim().to_string(),
                Some(c.trim().parse::<u32>().expect("column in marker")),
            ),
            None => (spec.to_string(), None),
        };
        out.push(Expected {
            line: i as u32 + 1,
            rule,
            col,
        });
    }
    out
}

fn lint_fixture(dir: &str, synthetic_path: &str, which: &str) -> (Vec<Expected>, String) {
    let path = fixture_root().join(dir).join(which);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let file = SourceFile::new(synthetic_path, text);
    let findings = Engine::new().lint_source(&file);
    let got: Vec<Expected> = findings
        .iter()
        .map(|f| Expected {
            line: f.line,
            rule: f.rule.clone(),
            col: Some(f.col),
        })
        .collect();
    let rendered = findings
        .iter()
        .map(|f| {
            format!(
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.rule, f.message
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    (got, rendered)
}

#[test]
fn ok_fixtures_lint_clean() {
    for (dir, synthetic) in FIXTURES {
        let (got, rendered) = lint_fixture(dir, synthetic, "ok.rs");
        assert!(
            got.is_empty(),
            "{dir}/ok.rs should lint clean, got:\n{rendered}"
        );
    }
}

#[test]
fn bad_fixtures_match_their_markers_exactly() {
    for (dir, synthetic) in FIXTURES {
        let path = fixture_root().join(dir).join("bad.rs");
        let text = fs::read_to_string(&path).expect("bad.rs exists for every rule");
        let mut expected = parse_markers(&text);
        assert!(!expected.is_empty(), "{dir}/bad.rs declares no markers");
        let (mut got, rendered) = lint_fixture(dir, synthetic, "bad.rs");

        // Compare (line, rule) sets exactly: every marker fires, and
        // nothing unmarked fires.
        let mut got_pairs: Vec<(u32, String)> =
            got.iter().map(|e| (e.line, e.rule.clone())).collect();
        let mut want_pairs: Vec<(u32, String)> =
            expected.iter().map(|e| (e.line, e.rule.clone())).collect();
        got_pairs.sort();
        want_pairs.sort();
        assert_eq!(
            want_pairs, got_pairs,
            "{dir}/bad.rs marker mismatch; linter said:\n{rendered}"
        );

        // Where a marker pins a column, the diagnostic span must match
        // it exactly.
        expected.sort();
        got.sort();
        for want in expected.iter().filter(|e| e.col.is_some()) {
            assert!(
                got.iter()
                    .any(|g| g.line == want.line && g.rule == want.rule && g.col == want.col),
                "{dir}/bad.rs line {}: expected [{}] at column {:?}, linter said:\n{rendered}",
                want.line,
                want.rule,
                want.col,
            );
        }
    }
}

#[test]
fn every_content_rule_has_a_fixture_pair() {
    let root = fixture_root();
    for rule in meme_analysis::builtin_rules() {
        let dir = root.join(rule.id());
        assert!(
            dir.join("ok.rs").is_file() && dir.join("bad.rs").is_file(),
            "rule `{}` is missing its ok.rs/bad.rs fixture pair",
            rule.id()
        );
    }
}
