//! Drives the fixture corpus under `tests/fixtures/`.
//!
//! Each rule directory holds `ok.rs` (known-good idioms — must lint
//! clean) and `bad.rs` (known violations). Expected findings in
//! `bad.rs` are declared inline with `//~ <rule>` markers on the
//! offending line; `//~ <rule> @ <col>` additionally pins the exact
//! 1-based column, so diagnostic spans are locked down, not just
//! counts. Fixtures are lexed-only data files — the workspace walker
//! skips `fixtures` directories, and cargo never compiles them.

use meme_analysis::{Engine, SourceFile};
use std::fs;
use std::path::{Path, PathBuf};

/// (fixture directory, synthetic workspace path) — the path places the
/// fixture inside a crate the rule under test is scoped to.
const FIXTURES: [(&str, &str); 7] = [
    ("nondeterministic-iteration", "crates/core/src/fixture.rs"),
    ("panic-in-pipeline", "crates/core/src/fixture.rs"),
    ("untyped-error", "crates/core/src/fixture.rs"),
    ("wallclock-outside-metrics", "crates/core/src/fixture.rs"),
    ("unseeded-rng", "crates/simweb/src/fixture.rs"),
    ("float-eq", "crates/stats/src/fixture.rs"),
    ("suppressions", "crates/core/src/fixture.rs"),
];

/// Multi-file fixture sets under `tests/fixtures/workspace/<rule>/`:
/// (rule directory, [(file name, synthetic workspace path)]). The set
/// is linted as ONE unit through `Engine::lint_files`, so cross-file
/// resolution, edge-cutting suppressions, and transitive closures are
/// all exercised; markers are matched exactly per file.
const MULTI_FIXTURES: [(&str, &[(&str, &str)]); 3] = [
    (
        "panic-reachable",
        &[
            ("cluster.rs", "crates/cluster/src/fixture_cluster.rs"),
            ("pipeline.rs", "crates/core/src/fixture_pipeline.rs"),
        ],
    ),
    (
        "lock-order",
        &[
            ("queue.rs", "crates/serve/src/fixture_queue.rs"),
            ("store.rs", "crates/serve/src/fixture_store.rs"),
        ],
    ),
    (
        "alloc-in-hotpath",
        &[
            ("index.rs", "crates/index/src/fixture_index.rs"),
            ("serve.rs", "crates/serve/src/fixture_serve.rs"),
        ],
    ),
];

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// One `//~` marker: the expected rule, line, and (optionally) column.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Expected {
    line: u32,
    rule: String,
    col: Option<u32>,
}

fn parse_markers(text: &str) -> Vec<Expected> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        let spec = line[pos + 3..].trim();
        let (rule, col) = match spec.split_once('@') {
            Some((r, c)) => (
                r.trim().to_string(),
                Some(c.trim().parse::<u32>().expect("column in marker")),
            ),
            None => (spec.to_string(), None),
        };
        out.push(Expected {
            line: i as u32 + 1,
            rule,
            col,
        });
    }
    out
}

fn lint_fixture(dir: &str, synthetic_path: &str, which: &str) -> (Vec<Expected>, String) {
    let path = fixture_root().join(dir).join(which);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let file = SourceFile::new(synthetic_path, text);
    let findings = Engine::new().lint_source(&file);
    let got: Vec<Expected> = findings
        .iter()
        .map(|f| Expected {
            line: f.line,
            rule: f.rule.clone(),
            col: Some(f.col),
        })
        .collect();
    let rendered = findings
        .iter()
        .map(|f| {
            format!(
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.rule, f.message
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    (got, rendered)
}

#[test]
fn ok_fixtures_lint_clean() {
    for (dir, synthetic) in FIXTURES {
        let (got, rendered) = lint_fixture(dir, synthetic, "ok.rs");
        assert!(
            got.is_empty(),
            "{dir}/ok.rs should lint clean, got:\n{rendered}"
        );
    }
}

#[test]
fn bad_fixtures_match_their_markers_exactly() {
    for (dir, synthetic) in FIXTURES {
        let path = fixture_root().join(dir).join("bad.rs");
        let text = fs::read_to_string(&path).expect("bad.rs exists for every rule");
        let mut expected = parse_markers(&text);
        assert!(!expected.is_empty(), "{dir}/bad.rs declares no markers");
        let (mut got, rendered) = lint_fixture(dir, synthetic, "bad.rs");

        // Compare (line, rule) sets exactly: every marker fires, and
        // nothing unmarked fires.
        let mut got_pairs: Vec<(u32, String)> =
            got.iter().map(|e| (e.line, e.rule.clone())).collect();
        let mut want_pairs: Vec<(u32, String)> =
            expected.iter().map(|e| (e.line, e.rule.clone())).collect();
        got_pairs.sort();
        want_pairs.sort();
        assert_eq!(
            want_pairs, got_pairs,
            "{dir}/bad.rs marker mismatch; linter said:\n{rendered}"
        );

        // Where a marker pins a column, the diagnostic span must match
        // it exactly.
        expected.sort();
        got.sort();
        for want in expected.iter().filter(|e| e.col.is_some()) {
            assert!(
                got.iter()
                    .any(|g| g.line == want.line && g.rule == want.rule && g.col == want.col),
                "{dir}/bad.rs line {}: expected [{}] at column {:?}, linter said:\n{rendered}",
                want.line,
                want.rule,
                want.col,
            );
        }
    }
}

#[test]
fn multi_file_fixtures_match_their_markers_exactly() {
    let root = fixture_root().join("workspace");
    for (dir, files) in MULTI_FIXTURES {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(name, synthetic)| {
                let path = root.join(dir).join(name);
                let text = fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
                SourceFile::new(*synthetic, text)
            })
            .collect();

        // Expected (synthetic file, line, rule, col?) from the markers
        // of every file in the set.
        let mut want: Vec<(String, u32, String, Option<u32>)> = Vec::new();
        for ((_, synthetic), src) in files.iter().zip(&sources) {
            for m in parse_markers(&src.text) {
                want.push((synthetic.to_string(), m.line, m.rule, m.col));
            }
        }
        assert!(!want.is_empty(), "workspace/{dir} declares no markers");

        let run = Engine::new().lint_files(&sources);
        let rendered = run
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{}:{}:{}: [{}] {}",
                    f.file, f.line, f.col, f.rule, f.message
                )
            })
            .collect::<Vec<_>>()
            .join("\n");

        let mut got_pairs: Vec<(String, u32, String)> = run
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line, f.rule.clone()))
            .collect();
        let mut want_pairs: Vec<(String, u32, String)> = want
            .iter()
            .map(|(file, line, rule, _)| (file.clone(), *line, rule.clone()))
            .collect();
        got_pairs.sort();
        want_pairs.sort();
        assert_eq!(
            want_pairs, got_pairs,
            "workspace/{dir} marker mismatch; linter said:\n{rendered}"
        );

        for (file, line, rule, col) in want.iter().filter(|(_, _, _, c)| c.is_some()) {
            assert!(
                run.findings.iter().any(|f| f.file == *file
                    && f.line == *line
                    && f.rule == *rule
                    && Some(f.col) == *col),
                "workspace/{dir} {file}:{line}: expected [{rule}] at column {col:?}, \
                 linter said:\n{rendered}",
            );
        }
    }
}

#[test]
fn every_workspace_rule_has_a_multi_file_fixture() {
    for rule in meme_analysis::workspace_rules() {
        assert!(
            MULTI_FIXTURES.iter().any(|(dir, _)| *dir == rule.id()),
            "workspace rule `{}` is missing its multi-file fixture set",
            rule.id()
        );
    }
    let root = fixture_root().join("workspace");
    for (dir, files) in MULTI_FIXTURES {
        assert!(
            files.len() >= 2,
            "workspace/{dir} should span several files"
        );
        for (name, _) in files {
            assert!(
                root.join(dir).join(name).is_file(),
                "workspace/{dir}/{name} is missing"
            );
        }
    }
}

#[test]
fn every_content_rule_has_a_fixture_pair() {
    let root = fixture_root();
    for rule in meme_analysis::builtin_rules() {
        let dir = root.join(rule.id());
        assert!(
            dir.join("ok.rs").is_file() && dir.join("bad.rs").is_file(),
            "rule `{}` is missing its ok.rs/bad.rs fixture pair",
            rule.id()
        );
    }
}
