//! Daily time-series binning.
//!
//! Fig. 8 of the paper plots, per community, the *percentage of posts per
//! day* that contain (all / racist / political) memes over the 13-month
//! window. The workspace measures time as `f64` **days since dataset
//! start** everywhere (the Hawkes model needs continuous time);
//! [`DailySeries`] bins such timestamps into integer day buckets.

use serde::{Deserialize, Serialize};

/// Counts of events per integer day over a fixed horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailySeries {
    counts: Vec<u64>,
}

impl DailySeries {
    /// Create an empty series covering `horizon_days` days.
    pub fn new(horizon_days: usize) -> Self {
        Self {
            counts: vec![0; horizon_days],
        }
    }

    /// Bin a set of timestamps (days since start). Timestamps outside
    /// `[0, horizon)` are ignored.
    pub fn from_timestamps(timestamps: &[f64], horizon_days: usize) -> Self {
        let mut s = Self::new(horizon_days);
        for &t in timestamps {
            s.record(t);
        }
        s
    }

    /// Record one event at time `t` (days). Out-of-range or non-finite
    /// timestamps are ignored.
    pub fn record(&mut self, t: f64) {
        if t.is_finite() && t >= 0.0 {
            let day = t.floor() as usize;
            if day < self.counts.len() {
                self.counts[day] += 1;
            }
        }
    }

    /// Number of days in the horizon.
    pub fn horizon(&self) -> usize {
        self.counts.len()
    }

    /// Raw per-day counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-day percentage of this series relative to a base series
    /// (e.g. meme posts over all posts). Days where the base is zero
    /// yield 0%.
    pub fn percent_of(&self, base: &DailySeries) -> Vec<f64> {
        self.counts
            .iter()
            .zip(base.counts.iter().chain(std::iter::repeat(&0)))
            .map(|(&num, &den)| {
                if den == 0 {
                    0.0
                } else {
                    100.0 * num as f64 / den as f64
                }
            })
            .collect()
    }

    /// Downsample per-day percentages into `weeks`-day means, which is how
    /// the repro binaries print Fig. 8 compactly.
    pub fn smooth(values: &[f64], window: usize) -> Vec<f64> {
        if window == 0 || values.is_empty() {
            return values.to_vec();
        }
        values
            .chunks(window)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_by_floor() {
        let s = DailySeries::from_timestamps(&[0.0, 0.9, 1.0, 2.5, 2.6], 4);
        assert_eq!(s.counts(), &[2, 1, 2, 0]);
        assert_eq!(s.total(), 5);
        assert_eq!(s.horizon(), 4);
    }

    #[test]
    fn ignores_out_of_range() {
        let s = DailySeries::from_timestamps(&[-1.0, 4.0, 5.0, f64::NAN, 1.0], 4);
        assert_eq!(s.total(), 1);
        assert_eq!(s.counts()[1], 1);
    }

    #[test]
    fn percent_of_base() {
        let memes = DailySeries::from_timestamps(&[0.1, 0.2, 1.5], 3);
        let all = DailySeries::from_timestamps(&[0.1, 0.2, 0.3, 0.4, 1.5, 2.9], 3);
        let p = memes.percent_of(&all);
        assert_eq!(p.len(), 3);
        assert!((p[0] - 50.0).abs() < 1e-12);
        assert!((p[1] - 100.0).abs() < 1e-12);
        assert_eq!(p[2], 0.0);
    }

    #[test]
    fn percent_of_zero_base_is_zero() {
        let memes = DailySeries::from_timestamps(&[0.5], 2);
        let all = DailySeries::new(2);
        let p = memes.percent_of(&all);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    #[test]
    fn smoothing_averages_chunks() {
        let v = vec![1.0, 3.0, 5.0, 7.0, 9.0];
        let s = DailySeries::smooth(&v, 2);
        assert_eq!(s, vec![2.0, 6.0, 9.0]);
        assert_eq!(DailySeries::smooth(&v, 0), v);
    }
}
