//! Statistical substrate for the `origins-of-memes` workspace.
//!
//! The reproduction of *"On the Origins of Memes by Means of Fringe Web
//! Communities"* (IMC 2018) needs a number of statistical tools that the
//! allowed dependency set does not provide:
//!
//! * heavy-tailed and conjugate-prior **samplers** (Zipf, Poisson, Gamma,
//!   Beta, Dirichlet, log-normal, categorical) used by the Web-ecosystem
//!   simulator and by the Gibbs sampler for the network Hawkes model
//!   ([`dist`]);
//! * **empirical CDFs** for every CDF figure in the paper (Figs. 4, 5, 9,
//!   17) ([`ecdf`]);
//! * the **two-sample Kolmogorov–Smirnov test** used to mark significant
//!   differences between racist/non-racist and political/non-political
//!   influence (Figs. 13–16) ([`ks`]);
//! * **Fleiss' kappa** for the annotation-quality evaluation of Appendix B
//!   ([`agreement`]);
//! * the **Jaccard index** used by the custom cluster distance metric
//!   (Eq. 1) ([`sets`]);
//! * daily **time-series binning** for the temporal analysis of Fig. 8
//!   ([`timeseries`]).
//!
//! Everything is deterministic given a seed; the workspace convention is
//! [`rand::rngs::StdRng`] seeded through [`seeded_rng`].

#![forbid(unsafe_code)]
#![allow(clippy::excessive_precision)] // Lanczos constants are quoted at full published precision
#![allow(clippy::needless_range_loop)] // small-matrix loops read clearer with explicit indices
#![warn(missing_docs)]

pub mod agreement;
pub mod describe;
pub mod dist;
pub mod ecdf;
pub mod ks;
pub mod sets;
pub mod timeseries;

pub use agreement::{cohens_kappa, fleiss_kappa};
pub use describe::Summary;
pub use dist::{Beta, Categorical, Dirichlet, Exponential, Gamma, LogNormal, Poisson, Zipf};
pub use ecdf::Ecdf;
pub use ks::{ks_two_sample, KsResult};
pub use sets::jaccard;
pub use timeseries::DailySeries;

/// The RNG used across the workspace. `StdRng` is a cryptographically
/// seeded, portable generator; all simulations are reproducible from a
/// single `u64` seed.
pub type WsRng = rand::rngs::StdRng;

/// Create the workspace RNG from a seed.
///
/// ```
/// use rand::RngExt;
/// let mut a = meme_stats::seeded_rng(7);
/// let mut b = meme_stats::seeded_rng(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> WsRng {
    use rand::SeedableRng;
    WsRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream label.
///
/// The simulator hands independent substreams to each community / meme /
/// module so that changing the sample count in one place does not perturb
/// every other stream (a standard trick for variance-controlled
/// simulation). SplitMix64 finalization gives well-mixed child seeds.
pub fn child_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_seeds_differ_per_stream() {
        let s = 42;
        let a = child_seed(s, 0);
        let b = child_seed(s, 1);
        let c = child_seed(s, 2);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn child_seed_is_deterministic() {
        assert_eq!(child_seed(1, 9), child_seed(1, 9));
        assert_ne!(child_seed(1, 9), child_seed(2, 9));
    }
}
