//! Two-sample Kolmogorov–Smirnov test.
//!
//! §5.2 of the paper marks influence cells with `*` when two-sample KS
//! tests find a significant difference (p < 0.01) between the
//! per-cluster influence distributions of racist vs non-racist (Fig. 13)
//! and political vs non-political (Fig. 14) memes. This module provides
//! the exact statistic and the asymptotic Kolmogorov p-value.

use serde::{Deserialize, Serialize};

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsResult {
    /// The KS statistic: the supremum distance between the two ECDFs.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution).
    pub p_value: f64,
    /// Size of the first sample.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl KsResult {
    /// Whether the difference is significant at level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Returns `None` when either sample is empty or contains NaN. The
/// p-value uses the asymptotic Kolmogorov series
/// `Q(λ) = 2 Σ (-1)^{k-1} exp(-2 k² λ²)` with the Stephens effective-n
/// correction, matching `scipy.stats.ks_2samp(mode="asymp")`.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Option<KsResult> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    if a.iter().chain(b.iter()).any(|x| x.is_nan()) {
        return None;
    }
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);

    let (n1, n2) = (xs.len(), ys.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    // Walk the merged order of both samples, tracking the ECDF gap.
    while i < n1 && j < n2 {
        let x = xs[i].min(ys[j]);
        while i < n1 && xs[i] <= x {
            i += 1;
        }
        while j < n2 && ys[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }
    // Remaining tail never increases the gap beyond what we have seen at
    // the last crossing, but check the boundary for completeness.
    let f1 = i as f64 / n1 as f64;
    let f2 = j as f64 / n2 as f64;
    d = d.max((f1 - f2).abs());

    let en = ((n1 * n2) as f64 / (n1 + n2) as f64).sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * d;
    Some(KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        n1,
        n2,
    })
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)`.
pub fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    if lambda < 1.0 {
        // The direct alternating series converges impractically slowly
        // for small lambda; use the Jacobi-theta dual form
        // Q = 1 − (√(2π)/λ) Σ exp(−(2k−1)² π² / (8λ²)), which converges
        // in a couple of terms there.
        let mut cdf = 0.0;
        for k in 1..=20 {
            let m = (2 * k - 1) as f64;
            let term = (-(m * m) * std::f64::consts::PI.powi(2) / (8.0 * lambda * lambda)).exp();
            cdf += term;
            if term < 1e-16 {
                break;
            }
        }
        cdf *= (2.0 * std::f64::consts::PI).sqrt() / lambda;
        return (1.0 - cdf).clamp(0.0, 1.0);
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, LogNormal};
    use crate::seeded_rng;
    use rand::distr::Distribution;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[1.0], &[]).is_none());
        assert!(ks_two_sample(&[f64::NAN], &[1.0]).is_none());
    }

    #[test]
    fn identical_samples_not_significant() {
        let a: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let r = ks_two_sample(&a, &a).unwrap();
        assert!(r.statistic < 1e-12);
        assert!(r.p_value > 0.99);
        assert!(!r.significant(0.01));
    }

    #[test]
    fn disjoint_samples_maximally_different() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| 1000.0 + i as f64).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-10);
        assert!(r.significant(0.01));
    }

    #[test]
    fn same_distribution_usually_accepted() {
        let mut rng = seeded_rng(100);
        let d = Exponential::new(1.0).unwrap();
        let a: Vec<f64> = (0..800).map(|_| d.sample(&mut rng)).collect();
        let b: Vec<f64> = (0..800).map(|_| d.sample(&mut rng)).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(!r.significant(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn different_distributions_detected() {
        let mut rng = seeded_rng(101);
        let d1 = Exponential::new(1.0).unwrap();
        let d2 = LogNormal::new(1.0, 1.0).unwrap();
        let a: Vec<f64> = (0..800).map(|_| d1.sample(&mut rng)).collect();
        let b: Vec<f64> = (0..800).map(|_| d2.sample(&mut rng)).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.significant(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn kolmogorov_q_boundaries() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert_eq!(kolmogorov_q(-1.0), 1.0);
        assert!(kolmogorov_q(10.0) < 1e-12);
        // Known reference points: Q(1.0) ≈ 0.26999967 (both series must
        // agree at the branch point), Q(0.5) ≈ 0.9639.
        assert!((kolmogorov_q(1.0) - 0.26999967).abs() < 1e-6);
        assert!((kolmogorov_q(0.5) - 0.9639).abs() < 1e-4);
        // Tiny lambda: the dual series must saturate at 1, not truncate.
        assert!(kolmogorov_q(0.01) > 1.0 - 1e-12);
        // Continuity across the series switch at lambda = 1
        // (|dQ/dlambda| is ~1.07 there, so allow the true slope).
        assert!((kolmogorov_q(0.999_999) - kolmogorov_q(1.000_001)).abs() < 1e-5);
    }

    #[test]
    fn statistic_matches_hand_computation() {
        // a: {1,2,3}, b: {2,3,4}. Max ECDF gap is 1/3.
        let r = ks_two_sample(&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0]).unwrap();
        assert!((r.statistic - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unbalanced_sizes() {
        let a: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let b = vec![0.5];
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.statistic <= 1.0 && r.statistic >= 0.0);
        assert_eq!(r.n1, 1000);
        assert_eq!(r.n2, 1);
    }
}
