//! Descriptive statistics.
//!
//! The paper repeatedly reports means and medians (e.g. "an average of 45
//! and a median of 9 images" per KYM entry, §3.2; mean/median post scores,
//! §4.2.3). [`Summary`] computes these in one pass over a sample.

use serde::{Deserialize, Serialize};

/// One-shot descriptive summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub median: f64,
    /// Population variance.
    pub variance: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample; returns `None` for empty or NaN-containing
    /// input.
    pub fn of(sample: &[f64]) -> Option<Self> {
        if sample.is_empty() || sample.iter().any(|x| x.is_nan()) {
            return None;
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let variance = sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = sample.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let (&min, &max) = (sorted.first()?, sorted.last()?);
        Some(Self {
            n,
            mean,
            median,
            variance,
            std_dev: variance.sqrt(),
            min,
            max,
        })
    }

    /// Summarize integer counts.
    pub fn of_counts(counts: &[u64]) -> Option<Self> {
        let xs: Vec<f64> = counts.iter().map(|c| *c as f64).collect();
        Self::of(&xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn odd_length_median() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn even_length_median_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn variance_and_std() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn counts_variant() {
        let s = Summary::of_counts(&[1, 2, 3]).unwrap();
        assert_eq!(s.mean, 2.0);
    }
}
