//! Inter-annotator agreement measures.
//!
//! Appendix B of the paper evaluates the cluster-annotation quality with
//! three human annotators and reports Fleiss' κ = 0.67 ("substantial
//! agreement") plus 89% majority-vote accuracy. The reproduction runs the
//! same computation over a simulated annotator panel
//! (`meme-annotate::agreement`), using the exact κ implementations here.

/// Fleiss' kappa for `n` subjects rated by a fixed number of raters into
/// `k` categories.
///
/// `ratings[i][c]` is the number of raters that assigned subject `i` to
/// category `c`; every row must sum to the same rater count `r >= 2`.
/// Returns `None` for malformed input. When all raters always agree the
/// result is exactly `1.0`; chance-level agreement gives ~`0.0`.
pub fn fleiss_kappa(ratings: &[Vec<usize>]) -> Option<f64> {
    let n = ratings.len();
    let first = ratings.first()?;
    let k = first.len();
    if k < 2 {
        return None;
    }
    let r: usize = first.iter().sum();
    if r < 2 {
        return None;
    }
    if ratings
        .iter()
        .any(|row| row.len() != k || row.iter().sum::<usize>() != r)
    {
        return None;
    }

    let nf = n as f64;
    let rf = r as f64;

    // Per-subject agreement P_i.
    let mut p_bar = 0.0;
    for row in ratings {
        let s: f64 = row.iter().map(|&c| (c * c) as f64).sum();
        p_bar += (s - rf) / (rf * (rf - 1.0));
    }
    p_bar /= nf;

    // Category marginals p_j.
    let mut pe = 0.0;
    for c in 0..k {
        let pj: f64 = ratings.iter().map(|row| row[c] as f64).sum::<f64>() / (nf * rf);
        pe += pj * pj;
    }

    if (1.0 - pe).abs() < 1e-15 {
        // All mass on a single category: agreement is perfect by
        // construction.
        return Some(1.0);
    }
    Some((p_bar - pe) / (1.0 - pe))
}

/// Cohen's kappa for two raters over paired categorical labels.
///
/// Returns `None` for empty or length-mismatched input. Used by the
/// annotation harness as a pairwise cross-check of the Fleiss panel.
pub fn cohens_kappa(a: &[usize], b: &[usize]) -> Option<f64> {
    if a.is_empty() || a.len() != b.len() {
        return None;
    }
    let k = a.iter().chain(b.iter()).max().copied().unwrap_or(0) + 1;
    let n = a.len() as f64;
    let mut confusion = vec![vec![0.0f64; k]; k];
    for (&x, &y) in a.iter().zip(b) {
        confusion[x][y] += 1.0;
    }
    let po: f64 = (0..k).map(|i| confusion[i][i]).sum::<f64>() / n;
    let mut pe = 0.0;
    for i in 0..k {
        let row: f64 = confusion[i].iter().sum::<f64>() / n;
        let col: f64 = (0..k).map(|j| confusion[j][i]).sum::<f64>() / n;
        pe += row * col;
    }
    if (1.0 - pe).abs() < 1e-15 {
        return Some(1.0);
    }
    Some((po - pe) / (1.0 - pe))
}

/// Interpret a kappa value on the conventional Landis–Koch scale; the
/// paper describes κ = 0.67 as "substantial agreement".
pub fn interpret_kappa(kappa: f64) -> &'static str {
    match kappa {
        k if k < 0.0 => "poor",
        k if k < 0.21 => "slight",
        k if k < 0.41 => "fair",
        k if k < 0.61 => "moderate",
        k if k < 0.81 => "substantial",
        _ => "almost perfect",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleiss_perfect_agreement_is_one() {
        // 4 subjects, 3 raters, 2 categories, all raters agree.
        let ratings = vec![vec![3, 0], vec![0, 3], vec![3, 0], vec![0, 3]];
        let k = fleiss_kappa(&ratings).unwrap();
        assert!((k - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fleiss_textbook_example() {
        // The canonical Wikipedia/Fleiss 1971 example: 10 subjects,
        // 14 raters, 5 categories, kappa ≈ 0.2099.
        let ratings = vec![
            vec![0, 0, 0, 0, 14],
            vec![0, 2, 6, 4, 2],
            vec![0, 0, 3, 5, 6],
            vec![0, 3, 9, 2, 0],
            vec![2, 2, 8, 1, 1],
            vec![7, 7, 0, 0, 0],
            vec![3, 2, 6, 3, 0],
            vec![2, 5, 3, 2, 2],
            vec![6, 5, 2, 1, 0],
            vec![0, 2, 2, 3, 7],
        ];
        let k = fleiss_kappa(&ratings).unwrap();
        assert!((k - 0.2099).abs() < 1e-3, "kappa {k}");
    }

    #[test]
    fn fleiss_rejects_malformed() {
        assert!(fleiss_kappa(&[]).is_none());
        assert!(fleiss_kappa(&[vec![3]]).is_none()); // one category
        assert!(fleiss_kappa(&[vec![1, 0]]).is_none()); // one rater
        assert!(fleiss_kappa(&[vec![2, 1], vec![1, 1]]).is_none()); // uneven raters
    }

    #[test]
    fn fleiss_single_category_mass() {
        let ratings = vec![vec![3, 0], vec![3, 0]];
        assert_eq!(fleiss_kappa(&ratings), Some(1.0));
    }

    #[test]
    fn cohen_perfect_and_opposite() {
        let a = vec![0, 1, 0, 1, 2];
        assert_eq!(cohens_kappa(&a, &a), Some(1.0));
        let b = vec![1, 0, 1, 0, 0];
        let k = cohens_kappa(&a, &b).unwrap();
        assert!(k < 0.0);
    }

    #[test]
    fn cohen_rejects_malformed() {
        assert!(cohens_kappa(&[], &[]).is_none());
        assert!(cohens_kappa(&[0], &[0, 1]).is_none());
    }

    #[test]
    fn interpretation_scale() {
        assert_eq!(interpret_kappa(0.67), "substantial");
        assert_eq!(interpret_kappa(-0.1), "poor");
        assert_eq!(interpret_kappa(0.95), "almost perfect");
        assert_eq!(interpret_kappa(0.1), "slight");
        assert_eq!(interpret_kappa(0.3), "fair");
        assert_eq!(interpret_kappa(0.5), "moderate");
    }
}
