//! Random samplers not provided by `rand` 0.10.
//!
//! `rand` ships only uniform, Bernoulli and weighted-index distributions;
//! the ecosystem simulator (Zipf post popularity, Poisson image counts,
//! log-normal vote scores) and the Gibbs sampler for the network Hawkes
//! model (Gamma/Beta/Dirichlet conjugate updates) need more. All samplers
//! implement [`rand::distr::Distribution`] so they compose with the rest of
//! the `rand` ecosystem.
//!
//! Each sampler validates its parameters at construction and returns a
//! [`DistError`] rather than panicking, per the workspace error-handling
//! convention.

use rand::distr::Distribution;
use rand::{Rng, RngExt};
use std::fmt;

/// Error returned when a distribution is constructed with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistError {
    what: &'static str,
}

impl DistError {
    fn new(what: &'static str) -> Self {
        Self { what }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for DistError {}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Sampled by inversion: `-ln(U)/lambda`. Used for Hawkes inter-arrival
/// proposals and impulse-response sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create an exponential sampler; `lambda` must be finite and positive.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(DistError::new("Exponential rate must be finite and > 0"));
        }
        Ok(Self { lambda })
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Distribution<f64> for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Map U in [0,1) to (0,1] so ln() never sees zero.
        let u: f64 = 1.0 - rng.random::<f64>();
        -u.ln() / self.lambda
    }
}

/// Poisson distribution with mean `mu`.
///
/// Uses Knuth's product-of-uniforms method for small means and the
/// PTRS transformed-rejection method of Hörmann (1993) for large means,
/// which is exact and O(1) per sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mu: f64,
}

impl Poisson {
    /// Create a Poisson sampler; `mu` must be finite and non-negative.
    pub fn new(mu: f64) -> Result<Self, DistError> {
        if !(mu.is_finite() && mu >= 0.0) {
            return Err(DistError::new("Poisson mean must be finite and >= 0"));
        }
        Ok(Self { mu })
    }

    /// The mean parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }
}

impl Distribution<u64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // mu is validated finite and >= 0 at construction; the ordering
        // compare avoids an exact float-equality sentinel.
        if self.mu <= 0.0 {
            return 0;
        }
        if self.mu < 30.0 {
            // Knuth: count uniform draws until their product drops below
            // exp(-mu).
            let limit = (-self.mu).exp();
            let mut prod: f64 = rng.random();
            let mut k = 0u64;
            while prod > limit {
                prod *= rng.random::<f64>();
                k += 1;
            }
            k
        } else {
            // PTRS (Hörmann 1993, "The transformed rejection method for
            // generating Poisson random variables").
            let mu = self.mu;
            let b = 0.931 + 2.53 * mu.sqrt();
            let a = -0.059 + 0.02483 * b;
            let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
            let v_r = 0.9277 - 3.6224 / (b - 2.0);
            loop {
                let u: f64 = rng.random::<f64>() - 0.5;
                let v: f64 = rng.random();
                let us = 0.5 - u.abs();
                let k = ((2.0 * a / us + b) * u + mu + 0.43).floor();
                if us >= 0.07 && v <= v_r && k >= 0.0 {
                    return k as u64;
                }
                if k < 0.0 || (us < 0.013 && v > us) {
                    continue;
                }
                let lhs = (v * inv_alpha / (a / (us * us) + b)).ln();
                let rhs = -mu + k * mu.ln() - ln_gamma(k + 1.0);
                if lhs <= rhs {
                    return k as u64;
                }
            }
        }
    }
}

/// Zipf (zeta) distribution over ranks `1..=n` with exponent `s`.
///
/// Sampled by inversion over a precomputed CDF (O(log n) per draw). The
/// meme-popularity and subreddit-activity marginals in the simulator are
/// Zipfian, matching the long-tailed counts in Tables 3–6 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf sampler over `n` ranks with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::new("Zipf needs at least one rank"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(DistError::new("Zipf exponent must be finite and >= 0"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self { cdf })
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability mass of rank `rank` (1-based).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[rank - 1];
        let lo = if rank >= 2 { self.cdf[rank - 2] } else { 0.0 };
        hi - lo
    }
}

impl Distribution<usize> for Zipf {
    /// Returns a 1-based rank in `1..=n`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        let i = match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => i,
        };
        (i + 1).min(self.cdf.len())
    }
}

/// Gamma distribution with shape `k` and scale `theta`.
///
/// Uses the Marsaglia–Tsang squeeze method (2000), with the standard
/// boost `U^(1/k)` for shapes below one. Conjugate updates in the Hawkes
/// Gibbs sampler draw from this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Create a Gamma sampler; both parameters must be finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistError> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(DistError::new("Gamma shape must be finite and > 0"));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(DistError::new("Gamma scale must be finite and > 0"));
        }
        Ok(Self { shape, scale })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `theta` (mean is `k * theta`).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    fn sample_standard<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        if shape < 1.0 {
            // Boost: if X ~ Gamma(k+1) and U ~ Uniform, X * U^(1/k) ~ Gamma(k).
            let x = Self::sample_standard(shape + 1.0, rng);
            let u: f64 = 1.0 - rng.random::<f64>();
            return x * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = normal_sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = 1.0 - rng.random::<f64>();
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 {
                return d * v;
            }
            if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Self::sample_standard(self.shape, rng) * self.scale
    }
}

/// Beta distribution with parameters `alpha`, `beta`.
///
/// Sampled as `X / (X + Y)` with `X ~ Gamma(alpha)`, `Y ~ Gamma(beta)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    a: Gamma,
    b: Gamma,
}

impl Beta {
    /// Create a Beta sampler; both parameters must be finite and positive.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, DistError> {
        Ok(Self {
            a: Gamma::new(alpha, 1.0)?,
            b: Gamma::new(beta, 1.0)?,
        })
    }
}

impl Distribution<f64> for Beta {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = self.a.sample(rng);
        let y = self.b.sample(rng);
        // Gamma samples are non-negative, so the degenerate case is
        // exactly "both zero"; an ordering compare tests it without
        // float equality.
        if x + y <= 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }
}

/// Dirichlet distribution over the probability simplex.
///
/// Sampled as normalized independent Gammas. Used to draw mixing
/// proportions for meme-variant clusters and (in the Gibbs sampler) for
/// discretized impulse-response shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct Dirichlet {
    components: Vec<Gamma>,
}

impl Dirichlet {
    /// Create a Dirichlet sampler from concentration parameters.
    pub fn new(alpha: &[f64]) -> Result<Self, DistError> {
        if alpha.len() < 2 {
            return Err(DistError::new("Dirichlet needs at least two components"));
        }
        let components = alpha
            .iter()
            .map(|&a| Gamma::new(a, 1.0))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { components })
    }

    /// Symmetric Dirichlet with `k` components and concentration `alpha`.
    pub fn symmetric(k: usize, alpha: f64) -> Result<Self, DistError> {
        Self::new(&vec![alpha; k])
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }
}

impl Distribution<Vec<f64>> for Dirichlet {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut draws: Vec<f64> = self.components.iter().map(|g| g.sample(rng)).collect();
        let sum: f64 = draws.iter().sum();
        if sum > 0.0 {
            for d in &mut draws {
                *d /= sum;
            }
        } else {
            let uniform = 1.0 / draws.len() as f64;
            draws.fill(uniform);
        }
        draws
    }
}

/// Log-normal distribution: `exp(mu + sigma * Z)`.
///
/// Reddit/Gab vote scores in the simulator are log-normal with
/// community- and category-conditioned location parameters, reproducing
/// the heavy-tailed score CDFs of Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create a log-normal sampler; `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() {
            return Err(DistError::new("LogNormal mu must be finite"));
        }
        if !(sigma.is_finite() && sigma >= 0.0) {
            return Err(DistError::new("LogNormal sigma must be finite and >= 0"));
        }
        Ok(Self { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * normal_sample(rng)).exp()
    }
}

/// Categorical distribution sampled with Walker's alias method: O(n)
/// setup, O(1) per draw. The simulator draws millions of categorical
/// outcomes (which meme, which variant, which subreddit), so constant-time
/// sampling matters.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// Build from non-negative weights (need not be normalized).
    pub fn new(weights: &[f64]) -> Result<Self, DistError> {
        if weights.is_empty() {
            return Err(DistError::new("Categorical needs at least one weight"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(DistError::new(
                "Categorical weights must be finite and non-negative",
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DistError::new("Categorical weights must not all be zero"));
        }
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are 1.0 up to rounding.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// Number of categories.
    pub fn k(&self) -> usize {
        self.prob.len()
    }
}

impl Distribution<usize> for Categorical {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        let u: f64 = rng.random();
        if u < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Draw a standard normal via the Box–Muller polar (Marsaglia) method.
pub fn normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// Accurate to ~1e-13 for positive arguments; used by the Poisson PTRS
/// sampler and by Hawkes log-likelihoods.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let [first, tail @ ..] = COEF;
    let mut a = first;
    let t = x + 7.5;
    for (i, &c) in tail.iter().enumerate() {
        a += c / (x + (i + 1) as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    fn mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn exponential_moments() {
        let mut rng = seeded_rng(1);
        let d = Exponential::new(2.0).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = mean_var(&xs);
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
        assert!((v - 0.25).abs() < 0.02, "var {v}");
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn poisson_small_mean_moments() {
        let mut rng = seeded_rng(2);
        let d = Poisson::new(3.5).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (m, v) = mean_var(&xs);
        assert!((m - 3.5).abs() < 0.05, "mean {m}");
        assert!((v - 3.5).abs() < 0.15, "var {v}");
    }

    #[test]
    fn poisson_large_mean_moments() {
        let mut rng = seeded_rng(3);
        let d = Poisson::new(120.0).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng) as f64).collect();
        let (m, v) = mean_var(&xs);
        assert!((m - 120.0).abs() < 0.5, "mean {m}");
        assert!((v - 120.0).abs() < 4.0, "var {v}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = seeded_rng(4);
        let d = Poisson::new(0.0).unwrap();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2).unwrap();
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(101), 0.0);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = seeded_rng(5);
        let z = Zipf::new(50, 1.5).unwrap();
        let mut counts = vec![0usize; 51];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!((1..=50).contains(&r));
            counts[r] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[5]);
        let expected = z.pmf(1);
        let observed = counts[1] as f64 / 20_000.0;
        assert!((observed - expected).abs() < 0.02);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_moments() {
        let mut rng = seeded_rng(6);
        let d = Gamma::new(3.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = mean_var(&xs);
        assert!((m - 6.0).abs() < 0.1, "mean {m}");
        assert!((v - 12.0).abs() < 0.6, "var {v}");
    }

    #[test]
    fn gamma_small_shape_moments() {
        let mut rng = seeded_rng(7);
        let d = Gamma::new(0.4, 1.0).unwrap();
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (m, _) = mean_var(&xs);
        assert!((m - 0.4).abs() < 0.02, "mean {m}");
        assert!(xs.iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn beta_moments() {
        let mut rng = seeded_rng(8);
        let d = Beta::new(2.0, 5.0).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (m, _) = mean_var(&xs);
        assert!((m - 2.0 / 7.0).abs() < 0.01, "mean {m}");
        assert!(xs.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = seeded_rng(9);
        let d = Dirichlet::symmetric(5, 0.7).unwrap();
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert_eq!(v.len(), 5);
            let s: f64 = v.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(v.iter().all(|x| *x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_rejects_degenerate() {
        assert!(Dirichlet::new(&[1.0]).is_err());
        assert!(Dirichlet::new(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn lognormal_median() {
        let mut rng = seeded_rng(10);
        let d = LogNormal::new(1.0, 0.8).unwrap();
        let mut xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        // Median of LogNormal(mu, sigma) is exp(mu).
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn categorical_matches_weights() {
        let mut rng = seeded_rng(11);
        let d = Categorical::new(&[1.0, 2.0, 7.0]).unwrap();
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[d.sample(&mut rng)] += 1;
        }
        let f: Vec<f64> = counts.iter().map(|c| *c as f64 / n as f64).collect();
        assert!((f[0] - 0.1).abs() < 0.01);
        assert!((f[1] - 0.2).abs() < 0.01);
        assert!((f[2] - 0.7).abs() < 0.01);
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[1.0, -0.5]).is_err());
        assert!(Categorical::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn categorical_single_category() {
        let mut rng = seeded_rng(12);
        let d = Categorical::new(&[3.0]).unwrap();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(n) = (n-1)!
        assert!((ln_gamma(1.0) - 0.0).abs() < 1e-10);
        assert!((ln_gamma(2.0) - 0.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - 3_628_800.0f64.ln()).abs() < 1e-8);
        // Gamma(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn normal_sample_moments() {
        let mut rng = seeded_rng(13);
        let xs: Vec<f64> = (0..100_000).map(|_| normal_sample(&mut rng)).collect();
        let (m, v) = mean_var(&xs);
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.02, "var {v}");
    }
}
