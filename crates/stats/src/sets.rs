//! Set-similarity measures.
//!
//! The custom cluster distance metric (§2.3, Eq. 1) computes Jaccard
//! indices over the KYM annotations of two cluster medoids for the
//! `meme`, `culture`, and `people` features.

use std::collections::HashSet;
use std::hash::Hash;

/// Jaccard index `|A ∩ B| / |A ∪ B|` of two sets.
///
/// The paper's convention (and ours): two empty annotation sets are
/// treated as a trivial match with similarity `1.0`, so absent metadata
/// never *increases* the distance between two unannotated clusters.
pub fn jaccard<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Jaccard index over string slices, the common case for KYM tag lists.
/// Duplicates in the input are collapsed.
pub fn jaccard_str(a: &[impl AsRef<str>], b: &[impl AsRef<str>]) -> f64 {
    let sa: HashSet<&str> = a.iter().map(|s| s.as_ref()).collect();
    let sb: HashSet<&str> = b.iter().map(|s| s.as_ref()).collect();
    jaccard(&sa, &sb)
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`; a secondary similarity
/// used in cluster-graph diagnostics.
pub fn overlap<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let inter = a.intersection(b).count();
    inter as f64 / a.len().min(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_basic() {
        let a = set(&["pepe", "frog", "smug"]);
        let b = set(&["pepe", "frog", "sad"]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_identical_and_disjoint() {
        let a = set(&["x", "y"]);
        assert_eq!(jaccard(&a, &a), 1.0);
        let b = set(&["z"]);
        assert_eq!(jaccard(&a, &b), 0.0);
    }

    #[test]
    fn jaccard_empty_conventions() {
        let e: HashSet<String> = HashSet::new();
        let a = set(&["x"]);
        assert_eq!(jaccard(&e, &e), 1.0);
        assert_eq!(jaccard(&e, &a), 0.0);
    }

    #[test]
    fn jaccard_str_collapses_duplicates() {
        let a = ["pepe", "pepe", "frog"];
        let b = ["frog", "pepe"];
        assert_eq!(jaccard_str(&a, &b), 1.0);
    }

    #[test]
    fn overlap_subset_is_one() {
        let a = set(&["x", "y", "z"]);
        let b = set(&["x", "y"]);
        assert_eq!(overlap(&a, &b), 1.0);
    }

    #[test]
    fn overlap_empty_conventions() {
        let e: HashSet<String> = HashSet::new();
        let a = set(&["x"]);
        assert_eq!(overlap(&e, &e), 1.0);
        assert_eq!(overlap(&e, &a), 0.0);
    }
}
