//! Empirical cumulative distribution functions.
//!
//! Every CDF plot in the paper (images per KYM entry, Fig. 4b; KYM entries
//! per cluster / clusters per entry, Fig. 5; post scores, Fig. 9;
//! false-positive fractions, Fig. 17) is regenerated through [`Ecdf`].

use serde::{Deserialize, Serialize};

/// An empirical CDF built from a finite sample.
///
/// Stores the sorted sample; evaluation is a binary search. NaN values are
/// rejected at construction so ordering is total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from a sample. Returns `None` if the sample is empty
    /// or contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Option<Self> {
        if sample.is_empty() || sample.iter().any(|x| x.is_nan()) {
            return None;
        }
        sample.sort_by(f64::total_cmp);
        Some(Self { sorted: sample })
    }

    /// Build from any iterator of values convertible to `f64`.
    pub fn from_counts<I: IntoIterator<Item = u64>>(counts: I) -> Option<Self> {
        Self::new(counts.into_iter().map(|c| c as f64).collect())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty (cannot happen for a constructed
    /// `Ecdf`, but required by convention alongside `len`).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluate `F(x) = P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile for `q` in `[0, 1]` (nearest-rank method).
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        // No q == 0.0 special case needed: ceil(0 * n) = 0, and the
        // saturating rank arithmetic below already lands on sorted[0].
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.saturating_sub(1).min(self.sorted.len() - 1)]
    }

    /// Median shortcut.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        // A constructed Ecdf is never empty; NaN is the inert fallback.
        self.sorted.first().copied().unwrap_or(f64::NAN)
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    /// The sorted underlying sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluate the ECDF on a fixed grid; used by the table binaries to
    /// print plottable (x, F(x)) series for the paper's CDF figures.
    pub fn series(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter().map(|&x| (x, self.eval(x))).collect()
    }

    /// A log-spaced grid covering the sample range, for the paper's
    /// log-x CDF plots (e.g. Fig. 4b). Returns `points` grid values.
    pub fn log_grid(&self, points: usize) -> Vec<f64> {
        let lo = self.min().max(1.0);
        let hi = self.max().max(lo + 1.0);
        let (l0, l1) = (lo.ln(), hi.ln());
        (0..points)
            .map(|i| (l0 + (l1 - l0) * i as f64 / (points.saturating_sub(1).max(1)) as f64).exp())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(vec![]).is_none());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_none());
    }

    #[test]
    fn step_function_values() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(1.5) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(2.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn handles_ties() {
        let e = Ecdf::new(vec![2.0, 2.0, 2.0, 5.0]).unwrap();
        assert_eq!(e.eval(1.9), 0.0);
        assert!((e.eval(2.0) - 0.75).abs() < 1e-12);
        assert_eq!(e.eval(5.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect()).unwrap();
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.median(), 50.0);
    }

    #[test]
    fn summary_stats() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.mean(), 2.5);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn series_on_grid() {
        let e = Ecdf::new(vec![1.0, 2.0]).unwrap();
        let s = e.series(&[0.0, 1.0, 2.0]);
        assert_eq!(s, vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]);
    }

    #[test]
    fn log_grid_spans_range() {
        let e = Ecdf::new(vec![1.0, 10.0, 1000.0]).unwrap();
        let g = e.log_grid(10);
        assert_eq!(g.len(), 10);
        assert!((g[0] - 1.0).abs() < 1e-9);
        assert!((g[9] - 1000.0).abs() < 1e-6);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn single_observation() {
        let e = Ecdf::new(vec![7.0]).unwrap();
        assert_eq!(e.eval(6.9), 0.0);
        assert_eq!(e.eval(7.0), 1.0);
        assert_eq!(e.median(), 7.0);
    }
}
