//! Property-based tests for the statistical substrate.

use meme_stats::agreement::{cohens_kappa, fleiss_kappa};
use meme_stats::dist::{
    Beta, Categorical, Dirichlet, Exponential, Gamma, LogNormal, Poisson, Zipf,
};
use meme_stats::ks::{kolmogorov_q, ks_two_sample};
use meme_stats::{seeded_rng, Ecdf};
use proptest::prelude::*;
use rand::distr::Distribution;

proptest! {
    #[test]
    fn exponential_samples_are_positive(lambda in 0.01f64..100.0, seed: u64) {
        let mut rng = seeded_rng(seed);
        let d = Exponential::new(lambda).unwrap();
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn gamma_samples_are_positive(shape in 0.05f64..20.0, scale in 0.01f64..10.0, seed: u64) {
        let mut rng = seeded_rng(seed);
        let d = Gamma::new(shape, scale).unwrap();
        for _ in 0..30 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn poisson_is_finite(mu in 0.0f64..500.0, seed: u64) {
        let mut rng = seeded_rng(seed);
        let d = Poisson::new(mu).unwrap();
        for _ in 0..20 {
            let x = d.sample(&mut rng);
            // Far tail cut: 500 + 10 sigma.
            prop_assert!(x < 500 + 10 * 23);
        }
    }

    #[test]
    fn zipf_stays_in_range(n in 1usize..500, s in 0.0f64..3.0, seed: u64) {
        let mut rng = seeded_rng(seed);
        let d = Zipf::new(n, s).unwrap();
        for _ in 0..30 {
            let r = d.sample(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
    }

    #[test]
    fn zipf_pmf_is_a_distribution(n in 1usize..200, s in 0.0f64..3.0) {
        let d = Zipf::new(n, s).unwrap();
        let total: f64 = (1..=n).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        // Monotone non-increasing over rank.
        for k in 1..n {
            prop_assert!(d.pmf(k) >= d.pmf(k + 1) - 1e-12);
        }
    }

    #[test]
    fn dirichlet_simplex(k in 2usize..12, alpha in 0.05f64..10.0, seed: u64) {
        let mut rng = seeded_rng(seed);
        let d = Dirichlet::symmetric(k, alpha).unwrap();
        let v = d.sample(&mut rng);
        prop_assert_eq!(v.len(), k);
        prop_assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(v.iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn lognormal_is_positive(mu in -3.0f64..3.0, sigma in 0.0f64..3.0, seed: u64) {
        let mut rng = seeded_rng(seed);
        let d = LogNormal::new(mu, sigma).unwrap();
        for _ in 0..20 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn categorical_respects_support(weights in prop::collection::vec(0.0f64..10.0, 1..20), seed: u64) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = seeded_rng(seed);
        let d = Categorical::new(&weights).unwrap();
        for _ in 0..50 {
            let i = d.sample(&mut rng);
            prop_assert!(i < weights.len());
            // Zero-weight categories are never drawn.
            prop_assert!(weights[i] > 0.0);
        }
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(mut xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::new(xs.clone()).unwrap();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in &xs {
            let f = e.eval(*x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
        prop_assert_eq!(e.eval(f64::INFINITY), 1.0);
    }

    #[test]
    fn ecdf_quantile_inverts(xs in prop::collection::vec(-1e3f64..1e3, 1..100), q in 0.0f64..1.0) {
        let e = Ecdf::new(xs).unwrap();
        let v = e.quantile(q);
        // At least a q-fraction of mass lies at or below the quantile.
        prop_assert!(e.eval(v) + 1e-12 >= q);
    }

    #[test]
    fn ks_statistic_bounds(a in prop::collection::vec(-100f64..100.0, 1..80),
                           b in prop::collection::vec(-100f64..100.0, 1..80)) {
        let r = ks_two_sample(&a, &b).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.statistic));
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        // Symmetry.
        let rev = ks_two_sample(&b, &a).unwrap();
        prop_assert!((r.statistic - rev.statistic).abs() < 1e-12);
    }

    #[test]
    fn kolmogorov_q_is_monotone(x in 0.0f64..5.0, dx in 0.0f64..1.0) {
        prop_assert!(kolmogorov_q(x) >= kolmogorov_q(x + dx) - 1e-12);
    }

    #[test]
    fn fleiss_kappa_bounded(rows in prop::collection::vec(0usize..4, 2..40), raters in 2usize..6) {
        // Perfectly-agreeing panels on arbitrary category assignments.
        let ratings: Vec<Vec<usize>> = rows
            .iter()
            .map(|&c| {
                let mut row = vec![0usize; 4];
                row[c] = raters;
                row
            })
            .collect();
        let k = fleiss_kappa(&ratings).unwrap();
        prop_assert!((k - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cohens_kappa_self_agreement(labels in prop::collection::vec(0usize..5, 1..100)) {
        prop_assert_eq!(cohens_kappa(&labels, &labels), Some(1.0));
    }

    // Fault-tolerance contract: constructors must return `Err` on bad
    // parameters and NEVER panic, for *any* f64 bit pattern (NaN, ±inf,
    // subnormals, negative zero…). The calls discard their results —
    // the property under test is "no panic", with Ok/Err both legal.
    #[test]
    fn dist_constructors_never_panic(a_bits: u64, b_bits: u64, n in 0usize..300) {
        let a = f64::from_bits(a_bits);
        let b = f64::from_bits(b_bits);
        let _ = Exponential::new(a);
        let _ = Poisson::new(a);
        let _ = Zipf::new(n, a);
        let _ = Gamma::new(a, b);
        let _ = Beta::new(a, b);
        let _ = LogNormal::new(a, b);
        let _ = Dirichlet::symmetric(n, a);
        let _ = Dirichlet::new(&[a, b]);
        let _ = Categorical::new(&[a, b]);
    }

    // …and parameters that are unambiguously invalid (non-finite) are
    // always rejected with a typed error.
    #[test]
    fn non_finite_params_are_typed_errors(sel in 0usize..3) {
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][sel];
        prop_assert!(Exponential::new(bad).is_err());
        prop_assert!(Poisson::new(bad).is_err());
        prop_assert!(Zipf::new(10, bad).is_err());
        prop_assert!(Gamma::new(bad, 1.0).is_err());
        prop_assert!(Gamma::new(1.0, bad).is_err());
        prop_assert!(Beta::new(bad, 1.0).is_err());
        prop_assert!(Beta::new(1.0, bad).is_err());
        prop_assert!(LogNormal::new(bad, 1.0).is_err());
        prop_assert!(LogNormal::new(0.0, bad).is_err());
        prop_assert!(Dirichlet::symmetric(3, bad).is_err());
        prop_assert!(Dirichlet::new(&[bad, 1.0]).is_err());
        prop_assert!(Categorical::new(&[bad, 1.0]).is_err());
    }
}
