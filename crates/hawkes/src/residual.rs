//! Goodness-of-fit diagnostics via the time-rescaling theorem.
//!
//! If a point process with compensator `Λ_k(t)` generated the data, the
//! rescaled inter-event gaps `Λ_k(t_{i+1}) − Λ_k(t_i)` on each process
//! are i.i.d. unit-rate exponentials. Large deviations (detected with a
//! one-sample KS test against `Exp(1)`) indicate model misfit. The
//! paper does not report this check; we add it because a reproduction
//! should demonstrate that the per-cluster fits are actually adequate.

use crate::model::{Event, HawkesError, HawkesModel};
use meme_stats::ks::kolmogorov_q;
use serde::{Deserialize, Serialize};

/// Result of a per-process residual analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidualReport {
    /// Rescaled inter-event gaps per process.
    pub residuals: Vec<Vec<f64>>,
    /// One-sample KS statistic against Exp(1) per process (`None` when a
    /// process has fewer than 2 events).
    pub ks_statistic: Vec<Option<f64>>,
    /// Asymptotic KS p-value per process.
    pub p_value: Vec<Option<f64>>,
}

impl ResidualReport {
    /// Whether every process with enough data passes at level `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value.iter().flatten().all(|p| *p >= alpha)
    }
}

/// Compute rescaled residuals of `events` under `model` and test them
/// against the unit-rate exponential.
pub fn residual_analysis(
    model: &HawkesModel,
    events: &[Event],
    horizon: f64,
) -> Result<ResidualReport, HawkesError> {
    model.validate_events(events, horizon)?;
    let k = model.k();
    // Compensator at each event time, incremental O(nK):
    // Λ_k(t) = μ_k t + Σ_{t_j < t} W[c_j][k] (1 − e^{−β (t − t_j)}).
    // Maintain s[c] = Σ_{j on c, t_j < t} e^{−β (t − t_j)} and
    // n_seen[c] = count, so Σ (1 − e^..) = n_seen[c] − s[c].
    let mut s = vec![0.0f64; k];
    let mut n_seen = vec![0.0f64; k];
    let mut last_t = 0.0f64;
    let mut last_compensator: Vec<Option<f64>> = vec![None; k];
    let mut residuals: Vec<Vec<f64>> = vec![Vec::new(); k];

    for e in events {
        let decay = (-model.beta * (e.t - last_t)).exp();
        for sc in &mut s {
            *sc *= decay;
        }
        last_t = e.t;
        // Compensator of the event's own process at this time.
        let dst = e.process;
        let mut comp = model.mu[dst] * e.t;
        for c in 0..k {
            comp += model.w[c][dst] * (n_seen[c] - s[c]);
        }
        if let Some(prev) = last_compensator[dst] {
            residuals[dst].push(comp - prev);
        }
        last_compensator[dst] = Some(comp);
        s[dst] += 1.0;
        n_seen[dst] += 1.0;
    }

    let mut ks_statistic = vec![None; k];
    let mut p_value = vec![None; k];
    for dst in 0..k {
        if residuals[dst].len() >= 2 {
            let (d, p) = ks_exp1(&residuals[dst]);
            ks_statistic[dst] = Some(d);
            p_value[dst] = Some(p);
        }
    }
    Ok(ResidualReport {
        residuals,
        ks_statistic,
        p_value,
    })
}

/// One-sample KS test of `sample` against the unit-rate exponential.
/// Returns `(statistic, asymptotic p-value)`.
pub fn ks_exp1(sample: &[f64]) -> (f64, f64) {
    let mut xs = sample.to_vec();
    xs.sort_by(f64::total_cmp);
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = 1.0 - (-x.max(0.0)).exp();
        let lo = i as f64 / n;
        let hi = (i as f64 + 1.0) / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    let en = n.sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * d;
    (d, kolmogorov_q(lambda))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate_branching, strip_lineage};
    use meme_stats::dist::Exponential;
    use meme_stats::seeded_rng;
    use rand::distr::Distribution;

    fn truth() -> HawkesModel {
        HawkesModel::new(vec![0.5, 0.2], vec![vec![0.3, 0.2], vec![0.1, 0.3]], 2.0).unwrap()
    }

    #[test]
    fn ks_exp1_accepts_exponential_sample() {
        let mut rng = seeded_rng(51);
        let d = Exponential::new(1.0).unwrap();
        let xs: Vec<f64> = (0..1000).map(|_| d.sample(&mut rng)).collect();
        let (_, p) = ks_exp1(&xs);
        assert!(p > 0.01, "p = {p}");
    }

    #[test]
    fn ks_exp1_rejects_wrong_rate() {
        let mut rng = seeded_rng(52);
        let d = Exponential::new(3.0).unwrap();
        let xs: Vec<f64> = (0..1000).map(|_| d.sample(&mut rng)).collect();
        let (_, p) = ks_exp1(&xs);
        assert!(p < 0.001, "p = {p}");
    }

    #[test]
    fn true_model_passes_residual_test() {
        let m = truth();
        let mut rng = seeded_rng(53);
        let events = strip_lineage(&simulate_branching(&m, 1500.0, &mut rng));
        let report = residual_analysis(&m, &events, 1500.0).unwrap();
        assert!(report.passes(0.005), "p-values: {:?}", report.p_value);
        // Residual means should be ~1.
        for r in &report.residuals {
            let mean: f64 = r.iter().sum::<f64>() / r.len() as f64;
            assert!((mean - 1.0).abs() < 0.1, "mean residual {mean}");
        }
    }

    #[test]
    fn wrong_model_fails_residual_test() {
        let m = truth();
        let mut rng = seeded_rng(54);
        let events = strip_lineage(&simulate_branching(&m, 1500.0, &mut rng));
        // A pure-Poisson model with wrong rates.
        let wrong = HawkesModel::new(vec![0.05, 0.05], vec![vec![0.0; 2]; 2], 2.0).unwrap();
        let report = residual_analysis(&wrong, &events, 1500.0).unwrap();
        assert!(!report.passes(0.01));
    }

    #[test]
    fn sparse_processes_are_skipped() {
        let m = truth();
        let events = vec![Event::new(1.0, 0)];
        let report = residual_analysis(&m, &events, 10.0).unwrap();
        assert_eq!(report.ks_statistic[0], None);
        assert_eq!(report.ks_statistic[1], None);
        assert!(report.passes(0.01)); // vacuously
    }
}
