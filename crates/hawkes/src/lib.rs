//! Multivariate Hawkes processes — Step 7 of the paper's pipeline.
//!
//! "To model the spread of memes on Web communities … we use five
//! processes, one for each of our seed Web communities (/pol/, Gab, and
//! The_Donald), as well as Twitter and Reddit, fitting a separate model
//! for each meme cluster" (§5.1). Events on one community raise the rate
//! of later events on all communities; the fitted weights plus a
//! **root-cause attribution** scheme quantify how much each community
//! drives meme spread — both in raw volume (Fig. 11) and normalized by
//! the source's own output, i.e. *efficiency* (Fig. 12).
//!
//! The crate implements the full model lifecycle:
//!
//! * [`model`] — the K-variate linear Hawkes model with exponential
//!   impulse kernels, intensities, log-likelihood, and stationarity
//!   checks;
//! * [`simulate`] — exact branching simulation (with ground-truth parent
//!   bookkeeping, which the ecosystem simulator relies on) and Ogata
//!   thinning as an independent cross-check;
//! * [`em`] — maximum-likelihood fitting via expectation–maximization;
//! * [`gibbs`] — Bayesian fitting via a latent-parent Gibbs sampler with
//!   conjugate Gamma updates, the approach of Linderman & Adams that the
//!   paper uses;
//! * [`attribution`] — parent probabilities and recursive root-cause
//!   propagation (the paper's §5.1 "improved method" over its earlier
//!   one-hop estimate);
//! * [`influence`] — aggregation into the influence matrices of
//!   Figs. 11–16, including per-category splits with KS significance;
//! * [`residual`] — time-rescaling goodness-of-fit diagnostics.

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // K x K matrix loops read clearer with explicit indices
#![warn(missing_docs)]

pub mod attribution;
pub mod em;
pub mod gibbs;
pub mod influence;
pub mod model;
pub mod residual;
pub mod simulate;

pub use attribution::{parent_probabilities, root_cause_matrix, root_causes};
pub use em::{fit_em, impulse_histogram, EmConfig, EmFit};
pub use gibbs::{fit_gibbs, GibbsConfig, GibbsFit};
pub use influence::{
    bootstrap_ci, BootstrapCi, ClusterFitStats, ClusterInfluence, Fitter, InfluenceEstimator,
    InfluenceMatrix, RobustInfluence, SkippedCluster, SplitInfluence,
};
pub use model::{Event, HawkesError, HawkesModel};
pub use residual::{residual_analysis, ResidualReport};
pub use simulate::{simulate_branching, simulate_thinning, strip_lineage, SimEvent};
