//! Bayesian fitting via a latent-parent Gibbs sampler.
//!
//! The paper: "We fit Hawkes models using Gibbs sampling as described in
//! \[62\]" (Linderman & Adams, *Scalable Bayesian Inference for
//! Excitatory Point Process Networks*). The tractability trick is the
//! same latent branching structure EM uses: conditioned on parent
//! assignments, the posterior factorizes into conjugate Gamma updates —
//!
//! * each event's parent is sampled in proportion to the background rate
//!   and the impulses alive at its time (exactly Fig. 10's narrative);
//! * `μ_k | z ~ Gamma(α_μ + #background events on k, rate β_μ + T)`;
//! * `W[c][k] | z ~ Gamma(α_w + #offspring on k with parent on c,
//!   rate β_w + Σ_{j on c} (1 − e^{−β(T−t_j)}))`.
//!
//! The kernel decay `β` is held fixed, as in the paper (the impulse
//! family is chosen a priori there as well).

use crate::model::{Event, HawkesError, HawkesModel};
use meme_stats::dist::{Categorical, Gamma};
use rand::distr::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gibbs sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GibbsConfig {
    /// Fixed kernel decay rate.
    pub beta: f64,
    /// Samples to draw after burn-in.
    pub samples: usize,
    /// Burn-in sweeps discarded before collecting.
    pub burn_in: usize,
    /// Gamma prior shape on background rates.
    pub mu_prior_shape: f64,
    /// Gamma prior rate on background rates.
    pub mu_prior_rate: f64,
    /// Gamma prior shape on weights. A shape below 1 concentrates prior
    /// mass near zero — a sparsity-encouraging choice for weak
    /// cross-community links.
    pub w_prior_shape: f64,
    /// Gamma prior rate on weights.
    pub w_prior_rate: f64,
}

impl Default for GibbsConfig {
    fn default() -> Self {
        Self {
            beta: 1.0,
            samples: 200,
            burn_in: 100,
            mu_prior_shape: 1.0,
            mu_prior_rate: 1.0,
            w_prior_shape: 0.5,
            w_prior_rate: 2.0,
        }
    }
}

/// Posterior summary from a Gibbs run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GibbsFit {
    /// Posterior-mean model (the point estimate used downstream).
    pub model: HawkesModel,
    /// Posterior standard deviation of each background rate.
    pub mu_std: Vec<f64>,
    /// Posterior standard deviation of each weight.
    pub w_std: Vec<Vec<f64>>,
    /// Number of collected samples.
    pub samples: usize,
}

/// Run the Gibbs sampler on a sorted event stream observed on
/// `[0, horizon]`.
pub fn fit_gibbs<R: Rng + ?Sized>(
    events: &[Event],
    k: usize,
    horizon: f64,
    config: &GibbsConfig,
    rng: &mut R,
) -> Result<GibbsFit, HawkesError> {
    if k == 0 {
        return Err(HawkesError::InvalidParameter(
            "need at least one process".into(),
        ));
    }
    if events.is_empty() {
        return Err(HawkesError::InvalidEvents(
            "cannot fit an empty event stream".into(),
        ));
    }
    if !(horizon.is_finite() && horizon > 0.0) {
        return Err(HawkesError::InvalidParameter(
            "horizon must be finite and positive".into(),
        ));
    }
    if !(config.beta.is_finite() && config.beta > 0.0) {
        return Err(HawkesError::InvalidParameter(
            "beta must be finite and positive".into(),
        ));
    }
    if config.samples == 0 {
        return Err(HawkesError::InvalidParameter(
            "need at least one posterior sample".into(),
        ));
    }

    let n = events.len();
    let beta = config.beta;
    let max_lag = 30.0 / beta;

    // Validate events once with a placeholder model.
    let probe = HawkesModel::new(vec![1.0; k], vec![vec![0.0; k]; k], beta)?;
    probe.validate_events(events, horizon)?;

    // Exposure per source community: Σ_{j on c} (1 - e^{-β(T - t_j)}).
    let mut exposure = vec![0.0f64; k];
    let mut n_per = vec![0usize; k];
    for e in events {
        exposure[e.process] += 1.0 - (-beta * (horizon - e.t)).exp();
        n_per[e.process] += 1;
    }

    // State.
    let mut mu: Vec<f64> = n_per
        .iter()
        .map(|&c| (0.5 * c as f64 / horizon).max(1e-6))
        .collect();
    let mut w = vec![vec![0.1f64; k]; k];
    // Parent assignment: usize::MAX = background.
    let mut z = vec![usize::MAX; n];

    let total_sweeps = config.burn_in + config.samples;
    let mut sum_mu = vec![0.0f64; k];
    let mut sum_mu2 = vec![0.0f64; k];
    let mut sum_w = vec![vec![0.0f64; k]; k];
    let mut sum_w2 = vec![vec![0.0f64; k]; k];
    let mut collected = 0usize;

    for sweep in 0..total_sweeps {
        // --- Sample parents.
        for i in 0..n {
            let ei = events[i];
            let mut cand_idx: Vec<usize> = vec![usize::MAX];
            let mut weights: Vec<f64> = vec![mu[ei.process]];
            for j in (0..i).rev() {
                let dt = ei.t - events[j].t;
                if dt > max_lag {
                    break;
                }
                let a = w[events[j].process][ei.process] * beta * (-beta * dt).exp();
                if a > 0.0 {
                    cand_idx.push(j);
                    weights.push(a);
                }
            }
            z[i] = match Categorical::new(&weights) {
                Ok(cat) if weights.len() > 1 => cand_idx[cat.sample(rng)],
                // A single candidate (background only) or degenerate
                // weights (all zero, or overflowed to non-finite): fall
                // back to a background attribution for this event
                // rather than aborting the whole sweep.
                _ => usize::MAX,
            };
        }

        // --- Count branching statistics.
        let mut bg_count = vec![0usize; k];
        let mut off_count = vec![vec![0usize; k]; k];
        for i in 0..n {
            if z[i] == usize::MAX {
                bg_count[events[i].process] += 1;
            } else {
                off_count[events[z[i]].process][events[i].process] += 1;
            }
        }

        // --- Conjugate updates.
        // The prior shapes/rates are validated positive, so these Gamma
        // constructions cannot fail for finite counts; on a degenerate
        // (overflowed) parameter the previous sweep's draw is retained
        // instead of aborting the run.
        for dst in 0..k {
            let shape = config.mu_prior_shape + bg_count[dst] as f64;
            let rate = config.mu_prior_rate + horizon;
            if let Ok(g) = Gamma::new(shape, 1.0 / rate) {
                mu[dst] = g.sample(rng).max(1e-12);
            }
        }
        for src in 0..k {
            for dst in 0..k {
                let shape = config.w_prior_shape + off_count[src][dst] as f64;
                let rate = config.w_prior_rate + exposure[src];
                if let Ok(g) = Gamma::new(shape, 1.0 / rate) {
                    w[src][dst] = g.sample(rng);
                }
            }
        }

        // --- Collect.
        if sweep >= config.burn_in {
            collected += 1;
            for dst in 0..k {
                sum_mu[dst] += mu[dst];
                sum_mu2[dst] += mu[dst] * mu[dst];
            }
            for src in 0..k {
                for dst in 0..k {
                    sum_w[src][dst] += w[src][dst];
                    sum_w2[src][dst] += w[src][dst] * w[src][dst];
                }
            }
        }
    }

    let c = collected as f64;
    let mean_mu: Vec<f64> = sum_mu.iter().map(|s| s / c).collect();
    let mu_std: Vec<f64> = sum_mu2
        .iter()
        .zip(&mean_mu)
        .map(|(s2, m)| (s2 / c - m * m).max(0.0).sqrt())
        .collect();
    let mean_w: Vec<Vec<f64>> = sum_w
        .iter()
        .map(|row| row.iter().map(|s| s / c).collect())
        .collect();
    let w_std: Vec<Vec<f64>> = sum_w2
        .iter()
        .zip(&mean_w)
        .map(|(row2, rowm)| {
            row2.iter()
                .zip(rowm)
                .map(|(s2, m)| (s2 / c - m * m).max(0.0).sqrt())
                .collect()
        })
        .collect();

    Ok(GibbsFit {
        model: HawkesModel::new(mean_mu, mean_w, beta)?,
        mu_std,
        w_std,
        samples: collected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate_branching, strip_lineage};
    use meme_stats::seeded_rng;

    fn ground_truth() -> HawkesModel {
        HawkesModel::new(
            vec![0.5, 0.15],
            vec![vec![0.35, 0.25], vec![0.05, 0.3]],
            2.0,
        )
        .unwrap()
    }

    #[test]
    fn rejects_invalid_input() {
        let cfg = GibbsConfig::default();
        let mut rng = seeded_rng(0);
        assert!(fit_gibbs(&[], 2, 10.0, &cfg, &mut rng).is_err());
        assert!(fit_gibbs(&[Event::new(1.0, 0)], 0, 10.0, &cfg, &mut rng).is_err());
        assert!(fit_gibbs(&[Event::new(1.0, 0)], 1, -1.0, &cfg, &mut rng).is_err());
        let zero_samples = GibbsConfig {
            samples: 0,
            ..GibbsConfig::default()
        };
        assert!(fit_gibbs(&[Event::new(1.0, 0)], 1, 10.0, &zero_samples, &mut rng).is_err());
    }

    #[test]
    fn recovers_ground_truth_posterior_mean() {
        let truth = ground_truth();
        let mut rng = seeded_rng(21);
        let events = strip_lineage(&simulate_branching(&truth, 5000.0, &mut rng));
        let cfg = GibbsConfig {
            beta: 2.0,
            samples: 150,
            burn_in: 75,
            ..GibbsConfig::default()
        };
        let fit = fit_gibbs(&events, 2, 5000.0, &cfg, &mut rng).unwrap();
        for kk in 0..2 {
            let rel = (fit.model.mu[kk] - truth.mu[kk]).abs() / truth.mu[kk];
            assert!(
                rel < 0.2,
                "mu[{kk}] {} vs {}",
                fit.model.mu[kk],
                truth.mu[kk]
            );
        }
        for s in 0..2 {
            for d in 0..2 {
                let err = (fit.model.w[s][d] - truth.w[s][d]).abs();
                assert!(
                    err < 0.1,
                    "w[{s}][{d}] {} vs {}",
                    fit.model.w[s][d],
                    truth.w[s][d]
                );
            }
        }
    }

    #[test]
    fn posterior_std_is_positive_and_modest() {
        let truth = ground_truth();
        let mut rng = seeded_rng(22);
        let events = strip_lineage(&simulate_branching(&truth, 1000.0, &mut rng));
        let cfg = GibbsConfig {
            beta: 2.0,
            samples: 100,
            burn_in: 50,
            ..GibbsConfig::default()
        };
        let fit = fit_gibbs(&events, 2, 1000.0, &cfg, &mut rng).unwrap();
        for s in &fit.mu_std {
            assert!(*s > 0.0 && *s < 0.5, "mu std {s}");
        }
        assert_eq!(fit.samples, 100);
    }

    #[test]
    fn agrees_with_em_on_same_data() {
        use crate::em::{fit_em, EmConfig};
        let truth = ground_truth();
        let mut rng = seeded_rng(23);
        let events = strip_lineage(&simulate_branching(&truth, 2000.0, &mut rng));
        let em = fit_em(
            &events,
            2,
            2000.0,
            &EmConfig {
                beta: 2.0,
                max_iters: 200,
                ..EmConfig::default()
            },
        )
        .unwrap();
        let gb = fit_gibbs(
            &events,
            2,
            2000.0,
            &GibbsConfig {
                beta: 2.0,
                samples: 120,
                burn_in: 60,
                ..GibbsConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        for s in 0..2 {
            for d in 0..2 {
                assert!(
                    (em.model.w[s][d] - gb.model.w[s][d]).abs() < 0.08,
                    "EM {} vs Gibbs {} at [{s}][{d}]",
                    em.model.w[s][d],
                    gb.model.w[s][d]
                );
            }
        }
    }

    #[test]
    fn prior_dominates_tiny_data() {
        // One event: posterior weight should stay near the prior mean
        // (shape/rate = 0.25 by default), not explode.
        let cfg = GibbsConfig::default();
        let mut rng = seeded_rng(24);
        let fit = fit_gibbs(&[Event::new(1.0, 0)], 1, 10.0, &cfg, &mut rng).unwrap();
        let prior_mean = cfg.w_prior_shape / cfg.w_prior_rate;
        assert!((fit.model.w[0][0] - prior_mean).abs() < 0.2);
    }
}
