//! Exact simulation of multivariate Hawkes processes.
//!
//! Two independent algorithms:
//!
//! * [`simulate_branching`] — the cluster (immigrant/offspring)
//!   representation. Immigrants arrive as Poisson processes at the
//!   background rates; every event spawns Poisson-many offspring on each
//!   destination with exponentially distributed delays. This records the
//!   **true parent of every event**, giving the ecosystem simulator
//!   ground-truth root causes to validate attribution against.
//! * [`simulate_thinning`] — Ogata's modified thinning algorithm, used
//!   by the test suite as an algorithmically independent cross-check of
//!   event rates.

use crate::model::{Event, HawkesModel};
use meme_stats::dist::{Exponential, Poisson};
use rand::distr::Distribution;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A simulated event with ground-truth lineage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Event time.
    pub t: f64,
    /// Process (community) the event occurred on.
    pub process: usize,
    /// Index (into the returned, time-sorted vector) of the parent
    /// event; `None` for immigrants (background events).
    pub parent: Option<usize>,
}

impl SimEvent {
    /// Drop lineage, keeping the observable part.
    pub fn to_event(self) -> Event {
        Event::new(self.t, self.process)
    }
}

/// Convert simulated events to plain observable events.
pub fn strip_lineage(events: &[SimEvent]) -> Vec<Event> {
    events.iter().map(|e| e.to_event()).collect()
}

/// Walk lineage up to the root and return the root's process — the
/// ground-truth "root cause community" of event `i`.
pub fn true_root_community(events: &[SimEvent], mut i: usize) -> usize {
    loop {
        match events[i].parent {
            None => return events[i].process,
            Some(p) => i = p,
        }
    }
}

/// Simulate on `[0, horizon)` by the branching representation.
///
/// Returns events sorted by time with `parent` indices referring to the
/// returned order.
///
/// # Panics
/// Panics when the model is non-stationary (spectral radius ≥ 1) —
/// cascades would explode — or `horizon <= 0`.
pub fn simulate_branching<R: Rng + ?Sized>(
    model: &HawkesModel,
    horizon: f64,
    rng: &mut R,
) -> Vec<SimEvent> {
    assert!(horizon > 0.0, "horizon must be positive");
    assert!(
        model.is_stationary(),
        "branching simulation requires spectral radius < 1"
    );
    let k = model.k();
    // Provisional arena with parent pointers into itself.
    struct Node {
        t: f64,
        process: usize,
        parent: Option<usize>,
    }
    let mut arena: Vec<Node> = Vec::new();

    // Immigrants: Poisson(mu_k * horizon) events, uniform on [0, horizon).
    for proc in 0..k {
        // Rates are validated non-negative, so an ordering compare is
        // the round-off-robust form of the "process absent" test.
        if model.mu[proc] <= 0.0 {
            continue;
        }
        // Validated rates make this constructible; a degenerate
        // (overflowed) rate contributes no immigrants instead of
        // aborting the simulation.
        let Ok(dist) = Poisson::new(model.mu[proc] * horizon) else {
            continue;
        };
        let n = dist.sample(rng);
        for _ in 0..n {
            arena.push(Node {
                t: rng.random::<f64>() * horizon,
                process: proc,
                parent: None,
            });
        }
    }

    // Offspring cascade (breadth via work queue over arena indices).
    // `HawkesModel` validation guarantees beta > 0 and finite, so the
    // delay distribution always constructs; defensively, an
    // unconstructible delay means no offspring can be placed.
    let delay = Exponential::new(model.beta).ok();
    let mut cursor = 0usize;
    while cursor < arena.len() {
        let Some(delay) = delay else { break };
        let (t0, src) = (arena[cursor].t, arena[cursor].process);
        for dst in 0..k {
            let w = model.w[src][dst];
            // Stationary weights are non-negative; see the mu guard.
            if w <= 0.0 {
                continue;
            }
            let Ok(branching) = Poisson::new(w) else {
                continue;
            };
            let n = branching.sample(rng);
            for _ in 0..n {
                let t = t0 + delay.sample(rng);
                if t < horizon {
                    arena.push(Node {
                        t,
                        process: dst,
                        parent: Some(cursor),
                    });
                }
            }
        }
        cursor += 1;
    }

    // Sort by time and remap parent indices.
    let mut order: Vec<usize> = (0..arena.len()).collect();
    order.sort_by(|&a, &b| arena[a].t.total_cmp(&arena[b].t));
    let mut rank = vec![0usize; arena.len()];
    for (new_idx, &old_idx) in order.iter().enumerate() {
        rank[old_idx] = new_idx;
    }
    order
        .iter()
        .map(|&old| SimEvent {
            t: arena[old].t,
            process: arena[old].process,
            parent: arena[old].parent.map(|p| rank[p]),
        })
        .collect()
}

/// Simulate on `[0, horizon)` by Ogata's modified thinning algorithm.
/// No lineage is produced (thinning does not expose it naturally); used
/// as an independent check on the branching implementation.
///
/// # Panics
/// Panics when `horizon <= 0`.
pub fn simulate_thinning<R: Rng + ?Sized>(
    model: &HawkesModel,
    horizon: f64,
    rng: &mut R,
) -> Vec<Event> {
    assert!(horizon > 0.0, "horizon must be positive");
    let k = model.k();
    let mut events: Vec<Event> = Vec::new();
    // r[c] tracks Σ exp(-beta (t - t_j)) for events on process c, at the
    // current time `t`.
    let mut r = vec![0.0f64; k];
    let mut t = 0.0f64;
    loop {
        // Upper bound on total intensity from now on: current value
        // (intensities only decay between events).
        let mut bound: f64 = 0.0;
        for dst in 0..k {
            let mut lam = model.mu[dst];
            for c in 0..k {
                lam += model.w[c][dst] * model.beta * r[c];
            }
            bound += lam;
        }
        if bound <= 0.0 {
            break;
        }
        // `bound > 0.0` is checked just above; a non-finite bound (an
        // exploding intensity) ends the simulation instead of panicking.
        let Ok(wait) = Exponential::new(bound) else {
            break;
        };
        let dt = wait.sample(rng);
        let t_new = t + dt;
        if t_new >= horizon {
            break;
        }
        // Decay state to the candidate time and compute true intensities.
        let decay = (-model.beta * dt).exp();
        for rc in &mut r {
            *rc *= decay;
        }
        t = t_new;
        let lambdas: Vec<f64> = (0..k)
            .map(|dst| {
                let mut lam = model.mu[dst];
                for c in 0..k {
                    lam += model.w[c][dst] * model.beta * r[c];
                }
                lam
            })
            .collect();
        let total: f64 = lambdas.iter().sum();
        if rng.random::<f64>() * bound <= total {
            // Accept; choose the process proportionally.
            let mut u = rng.random::<f64>() * total;
            let mut proc = k - 1;
            for (d, lam) in lambdas.iter().enumerate() {
                if u < *lam {
                    proc = d;
                    break;
                }
                u -= lam;
            }
            events.push(Event::new(t, proc));
            r[proc] += 1.0;
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_stats::seeded_rng;

    fn toy() -> HawkesModel {
        HawkesModel::new(vec![0.4, 0.1], vec![vec![0.3, 0.25], vec![0.05, 0.2]], 2.0).unwrap()
    }

    #[test]
    fn branching_output_is_sorted_and_in_range() {
        let m = toy();
        let mut rng = seeded_rng(1);
        let events = simulate_branching(&m, 200.0, &mut rng);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
        assert!(events.iter().all(|e| e.t >= 0.0 && e.t < 200.0));
        assert!(events.iter().all(|e| e.process < 2));
    }

    #[test]
    fn parents_precede_children() {
        let m = toy();
        let mut rng = seeded_rng(2);
        let events = simulate_branching(&m, 300.0, &mut rng);
        let mut has_offspring = false;
        for (i, e) in events.iter().enumerate() {
            if let Some(p) = e.parent {
                has_offspring = true;
                assert!(p < i, "parent must sort before child");
                assert!(events[p].t <= e.t);
            }
        }
        assert!(has_offspring, "with these weights offspring must occur");
    }

    #[test]
    fn root_walk_terminates_at_immigrant() {
        let m = toy();
        let mut rng = seeded_rng(3);
        let events = simulate_branching(&m, 300.0, &mut rng);
        for i in 0..events.len() {
            let root = true_root_community(&events, i);
            assert!(root < 2);
        }
    }

    #[test]
    fn branching_rate_matches_theory() {
        let m = toy();
        let expected = m.stationary_rates().unwrap();
        let horizon = 3000.0;
        let mut rng = seeded_rng(4);
        let events = simulate_branching(&m, horizon, &mut rng);
        let mut counts = [0usize; 2];
        for e in &events {
            counts[e.process] += 1;
        }
        for kk in 0..2 {
            let observed = counts[kk] as f64 / horizon;
            let rel = (observed - expected[kk]).abs() / expected[kk];
            assert!(
                rel < 0.1,
                "process {kk}: observed {observed}, expected {}",
                expected[kk]
            );
        }
    }

    #[test]
    fn thinning_rate_matches_branching() {
        let m = toy();
        let horizon = 2000.0;
        let mut rng = seeded_rng(5);
        let br = simulate_branching(&m, horizon, &mut rng);
        let th = simulate_thinning(&m, horizon, &mut rng);
        let r_br = br.len() as f64 / horizon;
        let r_th = th.len() as f64 / horizon;
        let rel = (r_br - r_th).abs() / r_br;
        assert!(rel < 0.1, "branching {r_br}, thinning {r_th}");
    }

    #[test]
    fn immigrant_share_matches_branching_theory() {
        // Fraction of immigrant events should be (Σ mu) / (Σ Λ).
        let m = toy();
        let horizon = 3000.0;
        let mut rng = seeded_rng(6);
        let events = simulate_branching(&m, horizon, &mut rng);
        let immigrants = events.iter().filter(|e| e.parent.is_none()).count();
        let expected_rate: f64 = m.stationary_rates().unwrap().iter().sum();
        let expected_share = m.mu.iter().sum::<f64>() / expected_rate;
        let observed_share = immigrants as f64 / events.len() as f64;
        assert!(
            (observed_share - expected_share).abs() < 0.05,
            "observed {observed_share}, expected {expected_share}"
        );
    }

    #[test]
    fn zero_background_produces_no_events() {
        let m = HawkesModel::new(vec![0.0], vec![vec![0.5]], 1.0).unwrap();
        let mut rng = seeded_rng(7);
        assert!(simulate_branching(&m, 100.0, &mut rng).is_empty());
        assert!(simulate_thinning(&m, 100.0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "spectral radius")]
    fn supercritical_model_panics() {
        let m = HawkesModel::new(vec![1.0], vec![vec![1.5]], 1.0).unwrap();
        let mut rng = seeded_rng(8);
        let _ = simulate_branching(&m, 10.0, &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = toy();
        let a = simulate_branching(&m, 100.0, &mut seeded_rng(9));
        let b = simulate_branching(&m, 100.0, &mut seeded_rng(9));
        assert_eq!(a, b);
    }
}
