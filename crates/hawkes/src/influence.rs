//! Community influence estimation — the machinery behind Figs. 11–16.
//!
//! "We fit Hawkes models … for the 12.6K annotated clusters" (§5.2): one
//! model per meme cluster, root-cause attribution per cluster, then
//! aggregation. Two views of the aggregate:
//!
//! * **percent of destination** (Fig. 11): of all meme events on
//!   community `dst`, what share was root-caused by `src`;
//! * **normalized by source** (Fig. 12): influence divided by the number
//!   of events the *source* posted — the source's per-meme *efficiency*.
//!
//! Figs. 13–16 split clusters into groups (racist vs non-racist,
//! political vs non-political) and mark cells where two-sample KS tests
//! find the per-cluster influence distributions significantly different
//! (p < 0.01).

use crate::attribution::root_cause_matrix;
use crate::em::{fit_em, EmConfig};
use crate::gibbs::{fit_gibbs, GibbsConfig};
use crate::model::{Event, HawkesError, HawkesModel};
use meme_stats::ks::ks_two_sample;
use meme_stats::{child_seed, seeded_rng};
use serde::{Deserialize, Serialize};

/// An influence count matrix: `counts[src][dst]` is the expected number
/// of events on `dst` whose root cause lies on `src`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfluenceMatrix {
    counts: Vec<Vec<f64>>,
}

impl InfluenceMatrix {
    /// A zero matrix over `k` communities.
    pub fn zeros(k: usize) -> Self {
        Self {
            counts: vec![vec![0.0; k]; k],
        }
    }

    /// Wrap raw counts.
    pub fn from_counts(counts: Vec<Vec<f64>>) -> Self {
        Self { counts }
    }

    /// Number of communities.
    pub fn k(&self) -> usize {
        self.counts.len()
    }

    /// Raw attributed mass for a cell.
    pub fn count(&self, src: usize, dst: usize) -> f64 {
        self.counts[src][dst]
    }

    /// Accumulate another matrix (summing across clusters).
    pub fn add(&mut self, other: &InfluenceMatrix) {
        assert_eq!(self.k(), other.k(), "matrix sizes must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Events observed per community (column sums — every event
    /// contributes exactly one unit of root-cause mass).
    pub fn events_per_community(&self) -> Vec<f64> {
        let k = self.k();
        (0..k)
            .map(|dst| (0..k).map(|src| self.counts[src][dst]).sum())
            .collect()
    }

    /// Fig. 11 view: `cell[src][dst]` = percent of `dst`'s events caused
    /// by `src`. Columns sum to 100 (when the destination has events).
    pub fn percent_of_destination(&self) -> Vec<Vec<f64>> {
        let totals = self.events_per_community();
        self.counts
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&totals)
                    .map(|(c, t)| if *t > 0.0 { 100.0 * c / t } else { 0.0 })
                    .collect()
            })
            .collect()
    }

    /// Fig. 12 view: `cell[src][dst]` = influence normalized by the
    /// number of events the source posted, as a percent. A cell above
    /// 100% means each source event causes more than one event on the
    /// destination in expectation.
    pub fn normalized_by_source(&self) -> Vec<Vec<f64>> {
        let totals = self.events_per_community();
        self.counts
            .iter()
            .enumerate()
            .map(|(src, row)| {
                let n_src = totals[src];
                row.iter()
                    .map(|c| if n_src > 0.0 { 100.0 * c / n_src } else { 0.0 })
                    .collect()
            })
            .collect()
    }

    /// Fig. 12's "Total" column: sum of a source's normalized influence
    /// over all destinations.
    pub fn total_normalized(&self) -> Vec<f64> {
        self.normalized_by_source()
            .iter()
            .map(|row| row.iter().sum())
            .collect()
    }

    /// Fig. 12's "Total Ext" column: normalized influence on all
    /// *other* communities (external influence — the paper's efficiency
    /// headline).
    pub fn total_external_normalized(&self) -> Vec<f64> {
        self.normalized_by_source()
            .iter()
            .enumerate()
            .map(|(src, row)| {
                row.iter()
                    .enumerate()
                    .filter(|(dst, _)| *dst != src)
                    .map(|(_, v)| v)
                    .sum()
            })
            .collect()
    }
}

/// Which fitter backs the estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fitter {
    /// Expectation–maximization (deterministic; the default).
    Em(EmConfig),
    /// Latent-parent Gibbs sampling (the paper's method); the seed keys
    /// per-cluster RNG substreams.
    Gibbs(GibbsConfig, u64),
}

/// Per-cluster fit + attribution + aggregation.
#[derive(Debug, Clone)]
pub struct InfluenceEstimator {
    k: usize,
    fitter: Fitter,
}

/// Output of [`InfluenceEstimator::estimate`].
#[derive(Debug, Clone)]
pub struct ClusterInfluence {
    /// One matrix per input cluster (empty clusters yield zero
    /// matrices).
    pub per_cluster: Vec<InfluenceMatrix>,
    /// Sum over all clusters.
    pub total: InfluenceMatrix,
}

/// One cluster the robust estimator gave up on.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedCluster {
    /// Index into the input cluster list.
    pub cluster: usize,
    /// Why the fit was abandoned.
    pub error: HawkesError,
}

/// Cost and quality diagnostics of one cluster's successful fit — the
/// observability record behind per-stage pipeline metrics (EM iteration
/// counts and final log-likelihoods in `BENCH_*.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterFitStats {
    /// Index into the input cluster list.
    pub cluster: usize,
    /// Events in the cluster's stream.
    pub events: usize,
    /// Optimizer sweeps: EM iterations, or collected samples for the
    /// Gibbs fitter.
    pub iterations: usize,
    /// Final log-likelihood of the fitted model on the stream.
    pub log_likelihood: f64,
    /// Whether the fitter reported convergence within budget (always
    /// `true` for Gibbs, which runs a fixed sampling schedule).
    pub converged: bool,
}

/// Output of [`InfluenceEstimator::estimate_robust`]: aggregates over
/// the clusters that fitted, plus a record of every cluster that did
/// not (those contribute zero matrices).
#[derive(Debug, Clone)]
pub struct RobustInfluence {
    /// The aggregate, identical in shape to [`ClusterInfluence`].
    pub influence: ClusterInfluence,
    /// Clusters whose fit failed or landed non-stationary, in ascending
    /// cluster order.
    pub skipped: Vec<SkippedCluster>,
    /// Fit diagnostics for every non-empty cluster that fitted, in
    /// ascending cluster order (empty streams have nothing to fit and
    /// produce neither stats nor a skip).
    pub fit_stats: Vec<ClusterFitStats>,
}

impl InfluenceEstimator {
    /// An EM-backed estimator over `k` communities with kernel decay
    /// `beta`.
    pub fn new(k: usize, beta: f64) -> Self {
        Self {
            k,
            fitter: Fitter::Em(EmConfig {
                beta,
                ..EmConfig::default()
            }),
        }
    }

    /// Use a specific fitter.
    pub fn with_fitter(k: usize, fitter: Fitter) -> Self {
        Self { k, fitter }
    }

    /// Fit a model per cluster, attribute root causes, and aggregate.
    /// Clusters are processed in parallel across `threads` workers
    /// (0 = all cores); results are deterministic regardless of thread
    /// count.
    pub fn estimate(
        &self,
        clusters: &[Vec<Event>],
        horizon: f64,
        threads: usize,
    ) -> Result<ClusterInfluence, HawkesError> {
        let k = self.k;
        let n = clusters.len();
        // No clusters means no work: skip straight to the zero result.
        // `chunks_mut(0)` below would otherwise abort on the
        // `chunk_len = 0.div_ceil(threads) = 0` chunk size.
        if n == 0 {
            return Ok(ClusterInfluence {
                per_cluster: Vec::new(),
                total: InfluenceMatrix::zeros(k),
            });
        }
        let mut per_cluster: Vec<InfluenceMatrix> = vec![InfluenceMatrix::zeros(k); n];
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        let threads = if threads == 0 { hw } else { threads }.clamp(1, n);
        let chunk_len = n.div_ceil(threads);

        let fitter = &self.fitter;
        let errors: Vec<Option<HawkesError>> = crossbeam::thread::scope(|s| {
            let mut handles = Vec::new();
            for (chunk_id, (slot_chunk, data_chunk)) in per_cluster
                .chunks_mut(chunk_len)
                .zip(clusters.chunks(chunk_len))
                .enumerate()
            {
                handles.push(s.spawn(move |_| {
                    for (off, (slot, events)) in slot_chunk.iter_mut().zip(data_chunk).enumerate() {
                        let cluster_idx = chunk_id * chunk_len + off;
                        match fit_one(fitter, events, k, horizon, cluster_idx) {
                            Ok(m) => *slot = m,
                            Err(e) => return Some(e),
                        }
                    }
                    None
                }));
            }
            handles
                .into_iter()
                // lint:allow(panic-in-pipeline): a worker panic is deliberately re-raised on the caller thread
                .map(|h| h.join().expect("no panic"))
                .collect()
        })
        // lint:allow(panic-in-pipeline): scope() is Err only when a worker panicked; re-raise, don't swallow
        .expect("worker thread panicked");
        if let Some(e) = errors.into_iter().flatten().next() {
            return Err(e);
        }

        let mut total = InfluenceMatrix::zeros(k);
        for m in &per_cluster {
            total.add(m);
        }
        Ok(ClusterInfluence { per_cluster, total })
    }

    /// Like [`InfluenceEstimator::estimate`], but a cluster whose fit
    /// fails — invalid events, a diverged optimizer, or a fitted model
    /// at/past the critical branching ratio — is *skipped* (it
    /// contributes a zero matrix) and recorded, instead of aborting the
    /// whole estimate. Deterministic regardless of thread count.
    pub fn estimate_robust(
        &self,
        clusters: &[Vec<Event>],
        horizon: f64,
        threads: usize,
    ) -> RobustInfluence {
        let k = self.k;
        let n = clusters.len();
        // Same empty-input guard as `estimate`: with `n = 0` the chunk
        // size underflows to zero and `chunks_mut(0)` aborts.
        if n == 0 {
            return RobustInfluence {
                influence: ClusterInfluence {
                    per_cluster: Vec::new(),
                    total: InfluenceMatrix::zeros(k),
                },
                skipped: Vec::new(),
                fit_stats: Vec::new(),
            };
        }
        let mut per_cluster: Vec<InfluenceMatrix> = vec![InfluenceMatrix::zeros(k); n];
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        let threads = if threads == 0 { hw } else { threads }.clamp(1, n);
        let chunk_len = n.div_ceil(threads);

        let fitter = &self.fitter;
        let (skipped, fit_stats): (Vec<SkippedCluster>, Vec<ClusterFitStats>) =
            crossbeam::thread::scope(|s| {
                let mut handles = Vec::new();
                for (chunk_id, (slot_chunk, data_chunk)) in per_cluster
                    .chunks_mut(chunk_len)
                    .zip(clusters.chunks(chunk_len))
                    .enumerate()
                {
                    handles.push(s.spawn(move |_| {
                        let mut skips = Vec::new();
                        let mut stats = Vec::new();
                        for (off, (slot, events)) in
                            slot_chunk.iter_mut().zip(data_chunk).enumerate()
                        {
                            let cluster = chunk_id * chunk_len + off;
                            match fit_one_checked(fitter, events, k, horizon, cluster) {
                                Ok((m, st)) => {
                                    *slot = m;
                                    stats.extend(st);
                                }
                                Err(error) => skips.push(SkippedCluster { cluster, error }),
                            }
                        }
                        (skips, stats)
                    }));
                }
                // Chunks are in cluster order, so concatenating the
                // per-chunk lists keeps both outputs sorted by cluster.
                let mut skipped = Vec::new();
                let mut fit_stats = Vec::new();
                for h in handles {
                    // lint:allow(panic-in-pipeline): a worker panic is deliberately re-raised on the caller thread
                    let (sk, st) = h.join().expect("no panic");
                    skipped.extend(sk);
                    fit_stats.extend(st);
                }
                (skipped, fit_stats)
            })
            // lint:allow(panic-in-pipeline): scope() is Err only when a worker panicked; re-raise, don't swallow
            .expect("worker thread panicked");

        let mut total = InfluenceMatrix::zeros(k);
        for m in &per_cluster {
            total.add(m);
        }
        RobustInfluence {
            influence: ClusterInfluence { per_cluster, total },
            skipped,
            fit_stats,
        }
    }
}

/// Fit one cluster's model; `Ok(None)` for an empty stream (no events,
/// nothing to attribute).
fn fit_model(
    fitter: &Fitter,
    events: &[Event],
    k: usize,
    horizon: f64,
    cluster_idx: usize,
) -> Result<Option<(HawkesModel, ClusterFitStats)>, HawkesError> {
    if events.is_empty() {
        return Ok(None);
    }
    let (model, iterations, log_likelihood, converged) = match fitter {
        Fitter::Em(cfg) => {
            let fit = fit_em(events, k, horizon, cfg)?;
            (fit.model, fit.iterations, fit.log_likelihood, fit.converged)
        }
        Fitter::Gibbs(cfg, seed) => {
            let mut rng = seeded_rng(child_seed(*seed, cluster_idx as u64));
            let fit = fit_gibbs(events, k, horizon, cfg, &mut rng)?;
            let ll = fit
                .model
                .log_likelihood(events, horizon)
                .unwrap_or(f64::NAN);
            (fit.model, fit.samples, ll, true)
        }
    };
    let stats = ClusterFitStats {
        cluster: cluster_idx,
        events: events.len(),
        iterations,
        log_likelihood,
        converged,
    };
    Ok(Some((model, stats)))
}

fn fit_one(
    fitter: &Fitter,
    events: &[Event],
    k: usize,
    horizon: f64,
    cluster_idx: usize,
) -> Result<InfluenceMatrix, HawkesError> {
    match fit_model(fitter, events, k, horizon, cluster_idx)? {
        None => Ok(InfluenceMatrix::zeros(k)),
        Some((model, _)) => Ok(InfluenceMatrix::from_counts(root_cause_matrix(
            &model, events,
        ))),
    }
}

/// The robust path: additionally rejects fits at or past the critical
/// branching ratio, where root-cause attribution is meaningless.
fn fit_one_checked(
    fitter: &Fitter,
    events: &[Event],
    k: usize,
    horizon: f64,
    cluster_idx: usize,
) -> Result<(InfluenceMatrix, Option<ClusterFitStats>), HawkesError> {
    match fit_model(fitter, events, k, horizon, cluster_idx)? {
        None => Ok((InfluenceMatrix::zeros(k), None)),
        Some((model, stats)) => {
            let rho = model.spectral_radius();
            if rho >= 1.0 {
                return Err(HawkesError::NonStationary {
                    spectral_radius: rho,
                });
            }
            let matrix = InfluenceMatrix::from_counts(root_cause_matrix(&model, events));
            Ok((matrix, Some(stats)))
        }
    }
}

/// Cluster-bootstrap confidence intervals for an influence matrix.
///
/// The paper reports point estimates; since influence is aggregated
/// over thousands of independently-fitted clusters, resampling clusters
/// with replacement gives honest uncertainty bands for every cell of
/// the percent-of-destination matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// Lower bound per cell (percent of destination).
    pub lo: Vec<Vec<f64>>,
    /// Upper bound per cell.
    pub hi: Vec<Vec<f64>>,
    /// Confidence level used.
    pub level: f64,
    /// Resamples drawn.
    pub resamples: usize,
}

/// Percentile-bootstrap CI over per-cluster influence matrices.
///
/// Returns `None` when there are no clusters or `resamples == 0`.
pub fn bootstrap_ci(
    per_cluster: &[InfluenceMatrix],
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<BootstrapCi> {
    use rand::RngExt;
    if per_cluster.is_empty() || resamples == 0 || !(0.0..1.0).contains(&level) {
        return None;
    }
    let k = per_cluster.first()?.k();
    let n = per_cluster.len();
    let mut rng = seeded_rng(seed);
    // samples[cell] = resampled percent values.
    let mut samples = vec![vec![Vec::with_capacity(resamples); k]; k];
    for _ in 0..resamples {
        let mut total = InfluenceMatrix::zeros(k);
        for _ in 0..n {
            total.add(&per_cluster[rng.random_range(0..n)]);
        }
        let pct = total.percent_of_destination();
        for src in 0..k {
            for dst in 0..k {
                samples[src][dst].push(pct[src][dst]);
            }
        }
    }
    let alpha = (1.0 - level) / 2.0;
    let quantile = |xs: &mut Vec<f64>, q: f64| -> f64 {
        xs.sort_by(f64::total_cmp);
        let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
        xs[rank - 1]
    };
    let mut lo = vec![vec![0.0; k]; k];
    let mut hi = vec![vec![0.0; k]; k];
    for src in 0..k {
        for dst in 0..k {
            lo[src][dst] = quantile(&mut samples[src][dst], alpha);
            hi[src][dst] = quantile(&mut samples[src][dst], 1.0 - alpha);
        }
    }
    Some(BootstrapCi {
        lo,
        hi,
        level,
        resamples,
    })
}

/// Comparison of two cluster groups (e.g. racist vs non-racist memes)
/// with per-cell KS significance, the Figs. 13–16 layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitInfluence {
    /// Aggregate percent-of-destination matrix for group A.
    pub a_percent: Vec<Vec<f64>>,
    /// Aggregate percent-of-destination matrix for group B.
    pub b_percent: Vec<Vec<f64>>,
    /// Aggregate source-normalized matrix for group A (Figs. 15–16).
    pub a_normalized: Vec<Vec<f64>>,
    /// Aggregate source-normalized matrix for group B.
    pub b_normalized: Vec<Vec<f64>>,
    /// Two-sample KS p-value per cell over the per-cluster
    /// percent-of-destination distributions; `1.0` where either group
    /// has no usable samples.
    pub p_values: Vec<Vec<f64>>,
}

impl SplitInfluence {
    /// Build the comparison from per-cluster matrices of the two groups.
    pub fn compare(group_a: &[InfluenceMatrix], group_b: &[InfluenceMatrix]) -> Self {
        let k = group_a
            .first()
            .or_else(|| group_b.first())
            .map(|m| m.k())
            .unwrap_or(0);
        let mut total_a = InfluenceMatrix::zeros(k);
        for m in group_a {
            total_a.add(m);
        }
        let mut total_b = InfluenceMatrix::zeros(k);
        for m in group_b {
            total_b.add(m);
        }

        // Per-cluster percent samples per cell.
        let samples = |group: &[InfluenceMatrix], src: usize, dst: usize| -> Vec<f64> {
            group
                .iter()
                .filter(|m| m.events_per_community()[dst] > 0.0)
                .map(|m| m.percent_of_destination()[src][dst])
                .collect()
        };

        let mut p_values = vec![vec![1.0f64; k]; k];
        for src in 0..k {
            for dst in 0..k {
                let a = samples(group_a, src, dst);
                let b = samples(group_b, src, dst);
                if let Some(r) = ks_two_sample(&a, &b) {
                    p_values[src][dst] = r.p_value;
                }
            }
        }
        Self {
            a_percent: total_a.percent_of_destination(),
            b_percent: total_b.percent_of_destination(),
            a_normalized: total_a.normalized_by_source(),
            b_normalized: total_b.normalized_by_source(),
            p_values,
        }
    }

    /// Whether a cell's group difference is significant at `alpha`
    /// (the paper stars cells at `p < 0.01`).
    pub fn significant(&self, src: usize, dst: usize, alpha: f64) -> bool {
        self.p_values[src][dst] < alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::HawkesModel;
    use crate::simulate::{simulate_branching, strip_lineage, true_root_community};

    /// 3 communities; community 0 is a prolific instigator.
    fn truth() -> HawkesModel {
        HawkesModel::new(
            vec![0.6, 0.2, 0.1],
            vec![
                vec![0.3, 0.25, 0.2],
                vec![0.05, 0.2, 0.05],
                vec![0.02, 0.05, 0.1],
            ],
            2.0,
        )
        .unwrap()
    }

    fn make_clusters(n: usize, horizon: f64, seed: u64) -> Vec<Vec<Event>> {
        let m = truth();
        (0..n)
            .map(|i| {
                let mut rng = seeded_rng(child_seed(seed, i as u64));
                strip_lineage(&simulate_branching(&m, horizon, &mut rng))
            })
            .collect()
    }

    #[test]
    fn matrix_views_are_consistent() {
        let m = InfluenceMatrix::from_counts(vec![
            vec![8.0, 2.0, 0.0],
            vec![1.0, 6.0, 1.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let events = m.events_per_community();
        assert_eq!(events, vec![10.0, 10.0, 5.0]);
        let pod = m.percent_of_destination();
        // Columns sum to 100.
        for dst in 0..3 {
            let col: f64 = (0..3).map(|src| pod[src][dst]).sum();
            assert!((col - 100.0).abs() < 1e-9);
        }
        assert!((pod[0][0] - 80.0).abs() < 1e-9);
        let norm = m.normalized_by_source();
        // Row src=0: counts (8,2,0) over N_0=10 -> (80,20,0)%.
        assert!((norm[0][0] - 80.0).abs() < 1e-9);
        assert!((norm[0][1] - 20.0).abs() < 1e-9);
        let tot = m.total_normalized();
        assert!((tot[0] - 100.0).abs() < 1e-9);
        let ext = m.total_external_normalized();
        assert!((ext[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_destination_yields_zero_percent() {
        let m = InfluenceMatrix::zeros(2);
        assert_eq!(m.percent_of_destination(), vec![vec![0.0; 2]; 2]);
        assert_eq!(m.normalized_by_source(), vec![vec![0.0; 2]; 2]);
    }

    #[test]
    fn estimator_recovers_ground_truth_influence() {
        let clusters = make_clusters(12, 300.0, 31);
        let est = InfluenceEstimator::new(3, 2.0);
        let out = est.estimate(&clusters, 300.0, 2).unwrap();

        // Ground truth from lineage.
        let m = truth();
        let mut true_counts = vec![vec![0.0f64; 3]; 3];
        for (i, _) in clusters.iter().enumerate() {
            let mut rng = seeded_rng(child_seed(31, i as u64));
            let sim = simulate_branching(&m, 300.0, &mut rng);
            for j in 0..sim.len() {
                true_counts[true_root_community(&sim, j)][sim[j].process] += 1.0;
            }
        }
        let truth_mat = InfluenceMatrix::from_counts(true_counts);
        let est_pct = out.total.percent_of_destination();
        let true_pct = truth_mat.percent_of_destination();
        for src in 0..3 {
            for dst in 0..3 {
                assert!(
                    (est_pct[src][dst] - true_pct[src][dst]).abs() < 8.0,
                    "cell [{src}][{dst}]: est {:.1}% vs truth {:.1}%",
                    est_pct[src][dst],
                    true_pct[src][dst]
                );
            }
        }
        // The instigator community dominates external influence.
        let ext = out.total.total_external_normalized();
        assert!(ext[0] > ext[2], "ext {ext:?}");
    }

    #[test]
    fn estimate_deterministic_across_threads() {
        let clusters = make_clusters(6, 150.0, 32);
        let est = InfluenceEstimator::new(3, 2.0);
        let a = est.estimate(&clusters, 150.0, 1).unwrap();
        let b = est.estimate(&clusters, 150.0, 4).unwrap();
        assert_eq!(a.total, b.total);
        assert_eq!(a.per_cluster, b.per_cluster);
    }

    #[test]
    fn empty_cluster_contributes_zero() {
        let mut clusters = make_clusters(2, 100.0, 33);
        clusters.push(Vec::new());
        let est = InfluenceEstimator::new(3, 2.0);
        let out = est.estimate(&clusters, 100.0, 1).unwrap();
        assert_eq!(out.per_cluster[2], InfluenceMatrix::zeros(3));
    }

    #[test]
    fn robust_estimate_matches_plain_on_clean_clusters() {
        let clusters = make_clusters(6, 150.0, 36);
        let est = InfluenceEstimator::new(3, 2.0);
        let plain = est.estimate(&clusters, 150.0, 2).unwrap();
        let robust = est.estimate_robust(&clusters, 150.0, 2);
        assert!(robust.skipped.is_empty(), "skips: {:?}", robust.skipped);
        assert_eq!(robust.influence.total, plain.total);
        assert_eq!(robust.influence.per_cluster, plain.per_cluster);
    }

    #[test]
    fn robust_estimate_skips_poisoned_clusters() {
        let mut clusters = make_clusters(4, 150.0, 37);
        // Cluster 1: a NaN event time; cluster 3: out-of-range process.
        clusters[1].push(Event::new(f64::NAN, 0));
        clusters[3] = vec![Event::new(1.0, 7)];
        let est = InfluenceEstimator::new(3, 2.0);
        // The strict path refuses the whole batch…
        assert!(est.estimate(&clusters, 150.0, 2).is_err());
        // …the robust path completes and records the two bad clusters.
        let robust = est.estimate_robust(&clusters, 150.0, 2);
        let skipped_ids: Vec<usize> = robust.skipped.iter().map(|s| s.cluster).collect();
        assert_eq!(skipped_ids, vec![1, 3]);
        assert_eq!(robust.influence.per_cluster[1], InfluenceMatrix::zeros(3));
        assert_eq!(robust.influence.per_cluster[3], InfluenceMatrix::zeros(3));
        // The clean clusters still contribute their full event mass.
        let events: f64 = robust.influence.total.events_per_community().iter().sum();
        let clean: f64 = clusters[0].len() as f64 + clusters[2].len() as f64;
        assert!((events - clean).abs() < 1e-6);
    }

    #[test]
    fn robust_estimate_deterministic_across_threads() {
        let mut clusters = make_clusters(5, 150.0, 38);
        clusters[2].push(Event::new(f64::NAN, 0));
        let est = InfluenceEstimator::new(3, 2.0);
        let a = est.estimate_robust(&clusters, 150.0, 1);
        let b = est.estimate_robust(&clusters, 150.0, 4);
        assert_eq!(a.influence.total, b.influence.total);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.fit_stats, b.fit_stats);
    }

    #[test]
    fn fit_stats_cover_fitted_clusters_in_order() {
        let mut clusters = make_clusters(4, 150.0, 39);
        clusters.push(Vec::new()); // empty: neither stats nor skip
        clusters[1].push(Event::new(f64::NAN, 0)); // skipped
        let est = InfluenceEstimator::new(3, 2.0);
        let out = est.estimate_robust(&clusters, 150.0, 2);
        let fitted: Vec<usize> = out.fit_stats.iter().map(|s| s.cluster).collect();
        assert_eq!(fitted, vec![0, 2, 3]);
        for st in &out.fit_stats {
            assert!(st.iterations > 0, "cluster {} did no work", st.cluster);
            assert!(st.events > 0);
            assert!(
                st.log_likelihood.is_finite(),
                "cluster {} LL {}",
                st.cluster,
                st.log_likelihood
            );
            assert_eq!(st.events, clusters[st.cluster].len());
        }
    }

    #[test]
    fn gibbs_fit_stats_report_sample_budget() {
        let clusters = make_clusters(2, 120.0, 40);
        let cfg = GibbsConfig {
            beta: 2.0,
            samples: 30,
            burn_in: 10,
            ..GibbsConfig::default()
        };
        let est = InfluenceEstimator::with_fitter(3, Fitter::Gibbs(cfg, 5));
        let out = est.estimate_robust(&clusters, 120.0, 1);
        assert_eq!(out.fit_stats.len(), 2);
        for st in &out.fit_stats {
            assert_eq!(st.iterations, 30);
            assert!(st.converged);
        }
    }

    #[test]
    fn gibbs_fitter_runs() {
        let clusters = make_clusters(3, 120.0, 34);
        let est = InfluenceEstimator::with_fitter(
            3,
            Fitter::Gibbs(
                GibbsConfig {
                    beta: 2.0,
                    samples: 40,
                    burn_in: 20,
                    ..GibbsConfig::default()
                },
                99,
            ),
        );
        let out = est.estimate(&clusters, 120.0, 2).unwrap();
        let totals = out.total.events_per_community();
        let expected: f64 = clusters.iter().map(|c| c.len() as f64).sum();
        assert!((totals.iter().sum::<f64>() - expected).abs() < 1e-6);
    }

    #[test]
    fn split_detects_group_difference() {
        // Group A: community 0 excites community 1 strongly.
        // Group B: pure background.
        let ma = HawkesModel::new(
            vec![0.6, 0.1, 0.1],
            vec![
                vec![0.2, 0.5, 0.1],
                vec![0.0, 0.1, 0.0],
                vec![0.0, 0.0, 0.1],
            ],
            2.0,
        )
        .unwrap();
        let mb = HawkesModel::new(vec![0.6, 0.4, 0.1], vec![vec![0.0; 3]; 3], 2.0).unwrap();
        let est = InfluenceEstimator::new(3, 2.0);
        let sim = |m: &HawkesModel, seed: u64| -> Vec<Vec<Event>> {
            (0..15)
                .map(|i| {
                    let mut rng = seeded_rng(child_seed(seed, i));
                    strip_lineage(&simulate_branching(m, 200.0, &mut rng))
                })
                .collect()
        };
        let a = est.estimate(&sim(&ma, 41), 200.0, 2).unwrap();
        let b = est.estimate(&sim(&mb, 42), 200.0, 2).unwrap();
        let split = SplitInfluence::compare(&a.per_cluster, &b.per_cluster);
        // Cell (0 -> 1) differs strongly between groups.
        assert!(
            split.a_percent[0][1] > split.b_percent[0][1] + 10.0,
            "A {} vs B {}",
            split.a_percent[0][1],
            split.b_percent[0][1]
        );
        assert!(
            split.significant(0, 1, 0.01),
            "p = {}",
            split.p_values[0][1]
        );
    }

    #[test]
    fn bootstrap_ci_brackets_point_estimate() {
        let clusters = make_clusters(20, 200.0, 55);
        let est = InfluenceEstimator::new(3, 2.0);
        let out = est.estimate(&clusters, 200.0, 2).unwrap();
        let ci = bootstrap_ci(&out.per_cluster, 200, 0.9, 7).unwrap();
        let point = out.total.percent_of_destination();
        let mut inside = 0usize;
        let mut cells = 0usize;
        for src in 0..3 {
            for dst in 0..3 {
                assert!(ci.lo[src][dst] <= ci.hi[src][dst] + 1e-9);
                cells += 1;
                if point[src][dst] >= ci.lo[src][dst] - 1e-9
                    && point[src][dst] <= ci.hi[src][dst] + 1e-9
                {
                    inside += 1;
                }
            }
        }
        // The point estimate should sit inside nearly all intervals.
        assert!(inside >= cells - 1, "{inside}/{cells} inside");
        assert_eq!(ci.resamples, 200);
    }

    #[test]
    fn bootstrap_ci_rejects_degenerate_input() {
        assert!(bootstrap_ci(&[], 100, 0.9, 1).is_none());
        let m = vec![InfluenceMatrix::zeros(2)];
        assert!(bootstrap_ci(&m, 0, 0.9, 1).is_none());
        assert!(bootstrap_ci(&m, 10, 1.5, 1).is_none());
    }

    #[test]
    fn split_with_empty_groups_is_neutral() {
        let split = SplitInfluence::compare(&[], &[]);
        assert!(split.p_values.is_empty());
    }

    #[test]
    fn empty_cluster_list_yields_zero_influence_not_a_panic() {
        // Regression: `estimate` / `estimate_robust` on zero clusters
        // used to reach `chunks_mut(0)` and abort the process. A run
        // with no annotated clusters is a legal (if sad) outcome and
        // must produce the zero result.
        for threads in [1, 2, 8] {
            let est = InfluenceEstimator::new(3, 2.0);
            let out = est.estimate(&[], 100.0, threads).unwrap();
            assert!(out.per_cluster.is_empty());
            assert_eq!(out.total.k(), 3);
            for src in 0..3 {
                for dst in 0..3 {
                    assert_eq!(out.total.count(src, dst), 0.0);
                }
            }

            let robust = est.estimate_robust(&[], 100.0, threads);
            assert!(robust.influence.per_cluster.is_empty());
            assert_eq!(robust.influence.total.k(), 3);
            assert!(robust.skipped.is_empty());
            assert!(robust.fit_stats.is_empty());
        }
    }
}
