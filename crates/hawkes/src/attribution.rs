//! Root-cause attribution.
//!
//! §5.1: "we assign the probability of being the root cause in
//! proportion to the magnitudes of the impulses (including the
//! background rate) present at the time of the event … Because event 2
//! is attributed both to communities B and C, event 3 is partly
//! attributed to community B through both event 1 and event 2."
//!
//! Concretely: for each event compute parent probabilities (background
//! vs each earlier event), then propagate *recursively* so that every
//! event carries a full probability distribution over root-cause
//! communities. This is the paper's improvement over the one-hop
//! estimate of their earlier work (\[86\]).

use crate::model::{Event, HawkesModel};

/// Parent probabilities for one event.
#[derive(Debug, Clone, PartialEq)]
pub struct ParentDist {
    /// Probability the event came from the background rate.
    pub background: f64,
    /// `(parent event index, probability)` pairs for earlier events with
    /// non-negligible impulse at this event's time.
    pub parents: Vec<(usize, f64)>,
}

/// Compute each event's parent distribution under `model`.
///
/// Candidate parents farther in the past than `30 / beta` are skipped
/// (their impulse is below 1e-13 of its peak).
///
/// # Panics
/// Panics when an event's process id is out of range or events are
/// unsorted (programmer error at this layer — the pipeline validates
/// earlier).
pub fn parent_probabilities(model: &HawkesModel, events: &[Event]) -> Vec<ParentDist> {
    let beta = model.beta;
    let max_lag = 30.0 / beta;
    let mut out = Vec::with_capacity(events.len());
    for (i, ei) in events.iter().enumerate() {
        assert!(ei.process < model.k(), "process id out of range");
        if i > 0 {
            assert!(events[i - 1].t <= ei.t, "events must be sorted");
        }
        let mut parents = Vec::new();
        let mut total = model.mu[ei.process];
        for j in (0..i).rev() {
            let dt = ei.t - events[j].t;
            if dt > max_lag {
                break;
            }
            let a = model.w[events[j].process][ei.process] * beta * (-beta * dt).exp();
            if a > 0.0 {
                parents.push((j, a));
                total += a;
            }
        }
        if total <= 0.0 {
            // No background and no parents: degenerate; treat as pure
            // background so probabilities still sum to one.
            out.push(ParentDist {
                background: 1.0,
                parents: Vec::new(),
            });
            continue;
        }
        for (_, a) in &mut parents {
            *a /= total;
        }
        out.push(ParentDist {
            background: model.mu[ei.process] / total,
            parents,
        });
    }
    out
}

/// Root-cause distributions: `result[i][c]` is the probability that the
/// root cause of event `i` is community `c`. Each row sums to 1.
///
/// Computed forward in time: a background event is its own root; an
/// event caused by parent `j` inherits `j`'s root distribution.
pub fn root_causes(model: &HawkesModel, events: &[Event]) -> Vec<Vec<f64>> {
    let k = model.k();
    // lint:allow(panic-reachable): inherits parent_probabilities' contract (sorted events, in-range process ids); every caller feeds pipeline-validated streams
    let dists = parent_probabilities(model, events);
    let mut roots: Vec<Vec<f64>> = Vec::with_capacity(events.len());
    for (i, pd) in dists.iter().enumerate() {
        let mut r = vec![0.0f64; k];
        r[events[i].process] += pd.background;
        for &(j, p) in &pd.parents {
            for c in 0..k {
                r[c] += p * roots[j][c];
            }
        }
        roots.push(r);
    }
    roots
}

/// Aggregate root causes into an influence count matrix:
/// `counts[src][dst] = Σ_{events i on dst} P(root cause of i is src)`.
///
/// Row/column semantics match Figs. 11–16: `src` is the causing
/// community, `dst` the community the event happened on. Column sums
/// equal the per-community event counts.
pub fn root_cause_matrix(model: &HawkesModel, events: &[Event]) -> Vec<Vec<f64>> {
    let k = model.k();
    let roots = root_causes(model, events);
    let mut counts = vec![vec![0.0f64; k]; k];
    for (e, r) in events.iter().zip(&roots) {
        for src in 0..k {
            counts[src][e.process] += r[src];
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate_branching, strip_lineage, true_root_community};
    use meme_stats::seeded_rng;

    fn toy() -> HawkesModel {
        HawkesModel::new(vec![0.4, 0.1], vec![vec![0.3, 0.3], vec![0.05, 0.2]], 2.0).unwrap()
    }

    #[test]
    fn first_event_is_pure_background() {
        let m = toy();
        let events = vec![Event::new(1.0, 0), Event::new(1.1, 1)];
        let dists = parent_probabilities(&m, &events);
        assert_eq!(dists[0].background, 1.0);
        assert!(dists[0].parents.is_empty());
        // Second event splits between background and event 0.
        assert!(dists[1].background < 1.0);
        assert_eq!(dists[1].parents.len(), 1);
        let total: f64 = dists[1].background + dists[1].parents.iter().map(|(_, p)| p).sum::<f64>();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closer_parents_get_more_mass() {
        let m = toy();
        let events = vec![Event::new(0.0, 0), Event::new(2.0, 0), Event::new(2.1, 1)];
        let dists = parent_probabilities(&m, &events);
        let p_recent = dists[2]
            .parents
            .iter()
            .find(|(j, _)| *j == 1)
            .map(|(_, p)| *p)
            .unwrap();
        let p_old = dists[2]
            .parents
            .iter()
            .find(|(j, _)| *j == 0)
            .map(|(_, p)| *p)
            .unwrap();
        assert!(p_recent > p_old);
    }

    #[test]
    fn root_rows_sum_to_one() {
        let m = toy();
        let mut rng = seeded_rng(11);
        let events = strip_lineage(&simulate_branching(&m, 300.0, &mut rng));
        let roots = root_causes(&m, &events);
        for r in &roots {
            let s: f64 = r.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row sum {s}");
        }
    }

    #[test]
    fn matrix_columns_sum_to_event_counts() {
        let m = toy();
        let mut rng = seeded_rng(12);
        let events = strip_lineage(&simulate_branching(&m, 300.0, &mut rng));
        let counts = root_cause_matrix(&m, &events);
        let mut per_dst = [0usize; 2];
        for e in &events {
            per_dst[e.process] += 1;
        }
        for dst in 0..2 {
            let col: f64 = (0..2).map(|src| counts[src][dst]).sum();
            assert!(
                (col - per_dst[dst] as f64).abs() < 1e-6,
                "column {dst}: {col} vs {}",
                per_dst[dst]
            );
        }
    }

    #[test]
    fn attribution_recovers_true_roots_under_true_model() {
        // With the generating model, expected root-cause mass per source
        // should track the ground-truth root counts from the simulator's
        // lineage within a few percent.
        let m = toy();
        let mut rng = seeded_rng(13);
        let sim = simulate_branching(&m, 2000.0, &mut rng);
        let events = strip_lineage(&sim);
        let counts = root_cause_matrix(&m, &events);
        let mut true_counts = vec![vec![0.0f64; 2]; 2];
        for i in 0..sim.len() {
            let root = true_root_community(&sim, i);
            true_counts[root][sim[i].process] += 1.0;
        }
        for src in 0..2 {
            for dst in 0..2 {
                let est = counts[src][dst];
                let truth = true_counts[src][dst];
                let scale = truth.max(50.0);
                assert!(
                    (est - truth).abs() / scale < 0.25,
                    "cell [{src}][{dst}]: est {est:.1} vs truth {truth:.1}"
                );
            }
        }
    }

    #[test]
    fn pure_background_model_attributes_everything_to_self() {
        let m = HawkesModel::new(vec![1.0, 1.0], vec![vec![0.0; 2]; 2], 1.0).unwrap();
        let events = vec![Event::new(0.5, 0), Event::new(0.6, 1), Event::new(0.7, 0)];
        let counts = root_cause_matrix(&m, &events);
        assert_eq!(counts[0][0], 2.0);
        assert_eq!(counts[1][1], 1.0);
        assert_eq!(counts[0][1], 0.0);
        assert_eq!(counts[1][0], 0.0);
    }

    #[test]
    fn empty_stream_gives_zero_matrix() {
        let m = toy();
        let counts = root_cause_matrix(&m, &[]);
        assert!(counts.iter().flatten().all(|&x| x == 0.0));
    }
}
